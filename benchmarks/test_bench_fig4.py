"""Figure 4 reproduction: Pareto fronts on data set 2 (1000 tasks).

The synthetic 30-machine / 30-task-type system, 1000 tasks over 15
minutes, checkpoints scaled from the paper's 1e3 / 1e4 / 1e5 / 1e6
iterations.
"""

from repro.sim.evaluator import ScheduleEvaluator

from conftest import BENCH_SEED, FIG4_POP, write_output
from shape_checks import (
    assert_efficient_region_with_diminishing_returns,
    assert_fronts_improve_over_checkpoints,
    assert_min_energy_population_owns_low_energy_end,
    assert_min_min_beats_random_on_utility_early,
)


def test_figure4_batch_evaluation_cost(benchmark, ds2):
    """Batch evaluation of a full population at figure-4 scale
    (the per-generation hot path: 60 chromosomes x 1000 tasks)."""
    import numpy as np

    from repro.core.operators import FeasibleMachines
    from repro.core.population import Population

    evaluator = ScheduleEvaluator(ds2.system, ds2.trace, check_feasibility=False)
    feas = FeasibleMachines.from_system_trace(ds2.system, ds2.trace)
    pop = Population.random(feas, FIG4_POP, np.random.default_rng(BENCH_SEED))

    benchmark(evaluator.evaluate_batch, pop.assignments, pop.orders)


def test_figure4_reproduction(benchmark, fig4_result):
    fig = fig4_result
    text = benchmark.pedantic(
        lambda: fig.render(plot=True), rounds=1, iterations=1
    )

    assert_fronts_improve_over_checkpoints(fig)
    assert_min_energy_population_owns_low_energy_end(fig)
    assert_min_min_beats_random_on_utility_early(fig)
    assert_efficient_region_with_diminishing_returns(fig)

    # Paper: "the 'min energy' population typically finds solutions
    # that perform better with respect to energy consumption, while
    # the 'min-min completion time' population typically finds
    # solutions that perform better with respect to utility earned."
    early = fig.checkpoints[0]
    e_front = fig.result.front("min-energy", early)
    m_front = fig.result.front("min-min-completion-time", early)
    assert e_front.energy_range[0] < m_front.energy_range[0]
    assert m_front.utility_range[1] > e_front.utility_range[1]

    write_output("figure4.txt", text)


def test_figure4_seed_objectives(benchmark, fig4_result):
    """The recorded heuristic seed objectives match their roles:
    min-energy has the least energy, min-min the most utility."""
    seeds = fig4_result.result.seed_objectives

    def extract():
        return {k: v for k, v in seeds.items()}

    values = benchmark(extract)
    energies = {k: v[0] for k, v in values.items()}
    utilities = {k: v[1] for k, v in values.items()}
    assert min(energies, key=energies.get) == "min-energy"
    assert utilities["min-min-completion-time"] >= utilities["min-energy"]
