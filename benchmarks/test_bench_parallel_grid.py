"""Parallel experiment-grid benchmark with a regression-tracked report.

Times a repetition grid (R independent NSGA-II runs on data set 1)
executed serially and through the zero-copy shared-memory engine, and
measures the two properties the engine exists for:

* **Bit-identity** — the parallel fronts equal the serial fronts
  exactly, every repetition, so the speedup is free (asserted in both
  smoke and full runs).
* **O(1) submission payload** — the pickled
  :class:`~repro.parallel.descriptors.SharedDatasetHandle` carries
  system metadata only: going from 250 tasks (data set 1) to 4000
  (data set 3) grows the shared arrays ~50× but the handle only ~4×
  (the larger system definition), keeping it under 2% of the segment
  it stands in for.  The handle ships once per worker; per-cell
  submissions carry just a repetition index.

Results are written to ``BENCH_parallel_grid.json`` at the repo root
(``.smoke.json`` under ``REPRO_BENCH_SMOKE=1``, which shrinks R /
generations / population but keeps every correctness assertion).

The absolute wall-clock gate — parallel must beat serial by
``MIN_SPEEDUP`` with 4 workers — only runs on machines that can
express it (``os.cpu_count() >= 4`` and not smoke); CI containers with
one core still check identity, payload scaling, and write the report.

The report also carries the Min-Min stage-1 cache counters on the
4000-task data set (see ``tests/test_min_min_scaling.py`` for the
hard ceiling): seeding cost rides along with every paper-scale grid,
so its scaling is tracked in the same artifact.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SEED
from repro.experiments.repetitions import run_repetitions
from repro.heuristics.min_min import MinMinCompletionTime
from repro.parallel import descriptors, shm

REPO_ROOT = Path(__file__).parent.parent
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
OBS_BENCH = os.environ.get("REPRO_BENCH_OBS", "") not in ("", "0")

REPETITIONS = 4 if SMOKE else 8
GENERATIONS = 6 if SMOKE else 40
POPULATION = 16 if SMOKE else 60
WORKERS = 2 if SMOKE else 4
REPORT = REPO_ROOT / (
    "BENCH_parallel_grid.smoke.json" if SMOKE else "BENCH_parallel_grid.json"
)

#: Minimum serial/parallel wall-clock ratio with 4 workers (full runs
#: on >= 4 cores only; the grid is embarrassingly parallel, so the
#: remaining gap is publish + attach + result pickling overhead).
MIN_SPEEDUP = 2.0

#: Ceiling on the pickled handle size — O(system metadata: machine
#: definitions and TUF parameters), not O(trace length).  Data set 3's
#: expanded 30-machine system serializes to ~17 KB of metadata while
#: its 4000-task arrays occupy megabytes of segment.
MAX_HANDLE_BYTES = 32_768

#: Worker-telemetry overhead budget on the parallel path: turning the
#: per-worker sinks on may cost at most 3% of the dark grid's wall
#: clock, plus a flat allowance for run-to-run pool-startup noise
#: (both runs fork a fresh pool; on loaded CI machines that alone
#: jitters by hundreds of milliseconds).
OBS_OVERHEAD_BUDGET = 0.03
OBS_OVERHEAD_FLOOR_S = 0.75


def _grid(ds, *, workers):
    t0 = time.perf_counter()
    result = run_repetitions(
        ds, repetitions=REPETITIONS, generations=GENERATIONS,
        population_size=POPULATION, base_seed=BENCH_SEED, workers=workers,
    )
    return result, time.perf_counter() - t0


@pytest.fixture(scope="module")
def grid_report(ds1, ds3):
    serial, serial_s = _grid(ds1, workers=0)
    parallel, parallel_s = _grid(ds1, workers=WORKERS)

    payload = {}
    for name, ds in (("dataset1", ds1), ("dataset3", ds3)):
        with descriptors.publish_dataset(ds) as published:
            payload[name] = {
                "handle_bytes": len(pickle.dumps(published.handle)),
                "segment_bytes": published.nbytes,
                "transport": published.transport,
            }

    minmin = MinMinCompletionTime()
    t0 = time.perf_counter()
    minmin.build(ds3.system, ds3.trace)
    minmin_s = time.perf_counter() - t0

    if SMOKE:
        gate_status = "skipped-smoke"
    elif (os.cpu_count() or 1) < 4:
        gate_status = "skipped-single-core"
    else:
        gate_status = "enforced"

    report = {
        "description": (
            f"{REPETITIONS}-repetition NSGA-II grid on dataset1, serial vs "
            f"{WORKERS} shared-memory pool workers"
        ),
        "protocol": {
            "repetitions": REPETITIONS,
            "generations": GENERATIONS,
            "population": POPULATION,
            "workers": WORKERS,
            "seed": BENCH_SEED,
            "smoke": SMOKE,
        },
        "environment": {
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "wallclock": {
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 4),
        },
        "payload": payload,
        #: Whether the absolute-speedup gate actually ran.  A grid
        #: benchmark whose headline gate silently stops running (e.g. a
        #: CI image change drops the visible core count) would keep
        #: producing green reports that verify nothing — the status
        #: field makes the skip auditable, and ``test_parallel_speedup``
        #: fails loudly if the skip reason does not hold on this runner.
        "gate": {
            "min_speedup": MIN_SPEEDUP,
            "status": gate_status,
        },
        "minmin_dataset3": {
            "build_s": round(minmin_s, 4),
            **minmin.last_stats,
        },
    }
    REPORT.write_text(json.dumps(report, indent=2) + "\n")
    return report, serial, parallel


def test_parallel_fronts_bit_identical(grid_report):
    """The speedup must be free: every repetition's front matches the
    serial run exactly, whatever the completion order."""
    _, serial, parallel = grid_report
    assert len(parallel.fronts) == REPETITIONS
    for s, p in zip(serial.fronts, parallel.fronts):
        np.testing.assert_array_equal(s, p)
    assert serial.hypervolume == parallel.hypervolume


def test_no_segments_leaked(grid_report):
    assert shm.owned_segments() == ()
    assert shm.leaked_segments() == ()


def test_submission_payload_is_o1_in_dataset_size(grid_report):
    """The handle is O(metadata): it barely grows from 250 to 4000
    tasks while the shared arrays grow ~10x."""
    report, _, _ = grid_report
    small = report["payload"]["dataset1"]
    large = report["payload"]["dataset3"]
    assert small["handle_bytes"] <= MAX_HANDLE_BYTES
    assert large["handle_bytes"] <= MAX_HANDLE_BYTES
    if small["transport"] == "shm" and large["transport"] == "shm":
        # Arrays blow up ~50x (250 -> 4000 tasks on a 2x-wider system);
        # the handle only tracks the system metadata (~4x) and stays a
        # rounding error next to the segment it stands in for.
        array_growth = large["segment_bytes"] / small["segment_bytes"]
        handle_growth = large["handle_bytes"] / small["handle_bytes"]
        assert array_growth > 5 * handle_growth
        assert large["handle_bytes"] < 0.02 * large["segment_bytes"]


def test_minmin_cache_work_tracked(grid_report):
    report, _, _ = grid_report
    stats = report["minmin_dataset3"]
    naive_rows = stats["tasks"] * (stats["tasks"] - 1) // 2
    assert stats["recomputed_rows"] < naive_rows / 5


def test_parallel_speedup(grid_report):
    """Absolute speedup gate — enforced wherever the runner can
    express it, and LOUD about any skip that should not happen.

    The report records the gate status; a skip is only legitimate in
    smoke mode or on a machine with fewer than 4 visible cores.  If
    the status claims a skip while this runner is a full-scale
    multi-core machine, something upstream broke the gate wiring and
    the test fails instead of silently passing.
    """
    report, _, _ = grid_report
    status = report["gate"]["status"]
    multi_core = (os.cpu_count() or 1) >= 4
    if status != "enforced":
        if multi_core and not SMOKE:
            pytest.fail(
                f"speedup gate marked {status!r} but this is a "
                f"{os.cpu_count()}-core full-scale runner — the gate "
                "was skipped silently"
            )
        pytest.skip(f"speedup gate {status}")
    assert multi_core and not SMOKE  # status computation stays honest
    assert report["wallclock"]["speedup"] >= MIN_SPEEDUP


def test_report_written(grid_report):
    report, _, _ = grid_report
    on_disk = json.loads(REPORT.read_text())
    assert on_disk["wallclock"] == report["wallclock"]
    assert set(on_disk["payload"]) == {"dataset1", "dataset3"}
    assert on_disk["gate"]["status"] in (
        "enforced", "skipped-single-core", "skipped-smoke"
    )


@pytest.mark.skipif(not OBS_BENCH, reason="set REPRO_BENCH_OBS=1 to gate "
                    "worker-telemetry overhead")
def test_worker_telemetry_overhead_within_budget(grid_report, ds1, tmp_path):
    """Worker-side telemetry must cost <= 3% of the dark parallel grid
    (plus a flat noise floor) — and must not change the fronts.

    The dark baseline is the ``grid_report`` fixture's parallel run
    (same R / generations / workers, telemetry off); this run adds an
    enabled RunContext with an ``obs_dir``, so every worker opens a
    sink, records a ``cell.run`` span + metrics per cell, and
    checkpoints its files after each cell.
    """
    from repro.obs import RunContext, validate_run_dir

    report, _, parallel = grid_report
    dark_s = report["wallclock"]["parallel_s"]

    obs = RunContext.create(obs_dir=tmp_path / "obs", run_id="bench-obs")
    t0 = time.perf_counter()
    lit = run_repetitions(
        ds1, repetitions=REPETITIONS, generations=GENERATIONS,
        population_size=POPULATION, base_seed=BENCH_SEED, workers=WORKERS,
        obs=obs,
    )
    lit_s = time.perf_counter() - t0
    obs.flush()

    # The telemetry must be real: per-worker sinks exist and the merged
    # trace is schema-valid with one cell span per repetition.
    merged = tmp_path / "obs" / "merged"
    assert merged.is_dir(), "flush did not merge the worker sinks"
    assert validate_run_dir(merged) == []
    spans = [
        json.loads(line)
        for line in (merged / "trace.jsonl").read_text().splitlines()
    ]
    assert sum(s["name"] == "cell.run" for s in spans) == REPETITIONS

    # Bit-identity: telemetry on vs off.
    for dark_front, lit_front in zip(parallel.fronts, lit.fronts):
        np.testing.assert_array_equal(dark_front, lit_front)

    allowed = dark_s * (1.0 + OBS_OVERHEAD_BUDGET) + OBS_OVERHEAD_FLOOR_S
    assert lit_s <= allowed, (
        f"worker telemetry pushed the parallel grid over budget: "
        f"{lit_s:.3f} s vs {dark_s:.3f} s dark "
        f"(allowed {allowed:.3f} s = dark * {1 + OBS_OVERHEAD_BUDGET} "
        f"+ {OBS_OVERHEAD_FLOOR_S} s noise floor)"
    )
