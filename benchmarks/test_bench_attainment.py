"""Ablation A8: run-to-run variability via attainment surfaces.

The paper draws one NSGA-II run per population; this bench quantifies
how much a single run can mislead: R repetitions of the random
population on data set 1, summarized as best / median / worst
empirical attainment surfaces and hypervolume spread.
"""

from repro.analysis.report import format_table
from repro.experiments.datasets import DatasetBundle
from repro.experiments.repetitions import run_repetitions

from conftest import BENCH_SEED, write_output

REPETITIONS = 5
GENERATIONS = 50
POP = 30


def test_attainment_spread(benchmark, ds1):
    result = benchmark.pedantic(
        lambda: run_repetitions(
            ds1,
            repetitions=REPETITIONS,
            generations=GENERATIONS,
            population_size=POP,
            seed_label="random",
            base_seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name in ("best", "median", "worst"):
        surface = result.attainment[name]
        e_lo, e_hi = surface.energy_range
        u_lo, u_hi = surface.utility_range
        rows.append(
            [
                name,
                surface.size,
                f"{e_lo / 1e6:.3f}-{e_hi / 1e6:.3f}",
                f"{u_lo:.1f}-{u_hi:.1f}",
            ]
        )
    hv = result.hypervolume
    rows.append(
        ["hypervolume", "-", f"mean {hv.mean:.4g} +- {hv.std:.2g}",
         f"range {hv.minimum:.4g}..{hv.maximum:.4g}"]
    )
    write_output(
        "ablation_a8_attainment.txt",
        format_table(
            ["surface", "points", "energy MJ", "utility"],
            rows,
            title=f"A8: attainment over {REPETITIONS} repetitions "
            f"(random population, dataset1, {GENERATIONS} gens)",
        ),
    )

    # Structural checks: best never dominated by median, median never
    # by worst.
    best, median, worst = (
        result.attainment["best"],
        result.attainment["median"],
        result.attainment["worst"],
    )
    assert best.fraction_dominated_by(median) == 0.0
    assert median.fraction_dominated_by(worst) == 0.0
    assert hv.minimum <= hv.mean <= hv.maximum
