"""Ablation A5: the all-four-seeds population.

The paper: "We also considered an initial population that contained all
four of the seeding heuristics, but we found that this population
performed similarly to the min-energy seeded population, and thus did
not include it in our results."

This bench regenerates that dropped comparison: an all-seeds population
vs the min-energy population at the same (scaled) checkpoints.  The
relevant similarity: both hold the provably minimum-energy point from
generation zero, so their low-energy front ends coincide exactly.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_seeded_populations

from conftest import BENCH_SEED, write_output

CFG = ExperimentConfig(
    population_size=50,
    generations=80,
    checkpoints=(10, 80),
    base_seed=BENCH_SEED,
)


def test_all_seeds_similar_to_min_energy(benchmark, ds1):
    result = benchmark.pedantic(
        lambda: run_seeded_populations(
            ds1, CFG, labels=["min-energy", "all-seeds", "random"]
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for gen in CFG.checkpoints:
        for label in ("min-energy", "all-seeds", "random"):
            front = result.front(label, gen)
            rows.append(
                [
                    gen,
                    label,
                    f"{front.energy_range[0] / 1e6:.4f}",
                    f"{front.utility_range[1]:.1f}",
                ]
            )
    write_output(
        "ablation_a5_allseeds.txt",
        format_table(
            ["generation", "population", "min energy (MJ)", "max utility"],
            rows,
            title="A5: all-four-seeds vs min-energy population (dataset1)",
        ),
    )

    # Both seeded populations pin the same (globally optimal) minimum
    # energy at every checkpoint; the random one does not reach it.
    for gen in CFG.checkpoints:
        e_me = result.front("min-energy", gen).energy_range[0]
        e_all = result.front("all-seeds", gen).energy_range[0]
        e_rand = result.front("random", gen).energy_range[0]
        assert e_all == e_me
        assert e_rand > e_me
