"""Online dispatch service benchmark with a regression-tracked report.

Runs the warm-started windowed re-optimization service
(:mod:`repro.service`) over a synthetic Poisson stream on the data set
1 system and measures what ISSUE/PR 10 promises:

* **Warm vs cold window cost at matched front quality.**  Alongside
  the warm service run, every busy window is *probed* by a
  cold-restart GA on the identical committed-ledger state: a fresh
  random population with 3x the generations and no adopted kernel
  state — the "just rerun the GA each window" strawman an online
  deployment would otherwise use.  Because both optimizers see the
  exact same horizon, their fronts are directly comparable; the gates
  require the warm front's hypervolume to stay within 1% of the cold
  probe's while the warm window costs at least 2x less wall clock.
  Gates apply to *steady-state* windows (after ``WARMUP_WINDOWS``):
  the first windows necessarily run without mature carryover and are
  reported, not gated.
* **Sustained throughput and dispatch latency.**  Tasks/second over
  the whole run, p50/p99 per-window dispatch wall seconds, and the
  real-time bound: p99 must stay under the window length, else the
  service cannot keep up with its own stream.
* **Greedy online baselines.**  The same arrivals replayed through
  :class:`~repro.extensions.online.OnlineDispatcher` (max-utility and
  utility-per-energy policies) anchor the quality axis: near-zero
  dispatch cost, no Pareto choice.  The report records their
  objectives next to the service's.
* **Cross-window evaluator reuse.**  The mean kernel reuse rate over
  warm windows must be nonzero — the content-fingerprint caches are
  the mechanism behind the cost gate, so losing them silently would
  show up here first.

Results are written to ``BENCH_online_service.json`` at the repo root
(``.smoke.json`` under ``REPRO_BENCH_SMOKE=1``, which the CI
online-service job uploads); smoke runs keep every correctness
assertion but skip the absolute cost/latency gates.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SEED
from repro.analysis.indicators import hypervolume
from repro.core.algorithm import AlgorithmConfig
from repro.core.registry import make_algorithm
from repro.experiments.datasets import dataset1
from repro.extensions.online import (
    MaxUtilityPolicy,
    OnlineDispatcher,
    UtilityPerEnergyPolicy,
)
from repro.rng import derive_seed
from repro.service import ArrivalStream, DispatchService, ServiceConfig
from repro.service.window import WindowEvaluator
from repro.workload.generator import TaskTypeMix
from repro.workload.trace import Trace

REPO_ROOT = Path(__file__).parent.parent
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
REPORT = REPO_ROOT / (
    "BENCH_online_service.smoke.json" if SMOKE else "BENCH_online_service.json"
)

WINDOW_SECONDS = 60.0
ARRIVAL_RATE = 0.35
NUM_WINDOWS = 4 if SMOKE else 10
POPULATION = 16 if SMOKE else 32
WARM_GENERATIONS = 3 if SMOKE else 6
#: The cold probe gets 3x the warm generations: the point of the
#: comparison is cost at *matched* quality, so the strawman is allowed
#: to spend until it is at least as good.
COLD_GENERATIONS = 3 * WARM_GENERATIONS
#: The first windows run without mature carryover (window 0 is fully
#: cold); quality/cost gates apply from this window index on.
WARMUP_WINDOWS = 1 if SMOKE else 3

#: Full-scale gates (see module docstring).
MIN_HV_RATIO = 0.99
MAX_WARM_COST_RATIO = 0.5
MAX_P99_SECONDS = WINDOW_SECONDS


def service_config() -> ServiceConfig:
    return ServiceConfig(
        population_size=POPULATION,
        generations=WARM_GENERATIONS,
        carryover=POPULATION // 2,
        compact_every=0,  # identical horizons for clean probe comparison
        seed=BENCH_SEED,
    )


def cold_probe(system, ledger, batch):
    """Cold-restart GA on the window's exact ledger state.

    Timed with the same scope as the service's ``dispatch_seconds``:
    evaluator construction, optimization, and full evaluation of the
    chosen point.  No carryover seeds, no adopted kernel state.
    """
    t0 = time.perf_counter()
    evaluator = WindowEvaluator(system, ledger, batch)
    algorithm = make_algorithm(
        "nsga2",
        evaluator,
        AlgorithmConfig(population_size=POPULATION),
        rng=derive_seed(BENCH_SEED, "cold-probe", batch.index),
    )
    algorithm.run(COLD_GENERATIONS)
    points, rows = algorithm.current_front()
    chosen = int(rows[int(np.argmax(points[:, 1]))])
    evaluator.evaluate_full(
        algorithm.population.assignments[chosen],
        algorithm.population.orders[chosen],
    )
    return points, time.perf_counter() - t0


def window_hv_ratio(warm_points, cold_points):
    """Hypervolume ratio with a span-relative reference.

    Both fronts are service-cumulative over the identical horizon, so
    the shared committed-prefix offset is large; a reference placed
    just past the union's worst corner keeps the ratio sensitive to
    the actual spread between the fronts.
    """
    union = np.vstack([warm_points, cold_points])
    span_e = union[:, 0].max() - union[:, 0].min() + 1.0
    span_u = union[:, 1].max() - union[:, 1].min() + 1.0
    reference = (
        union[:, 0].max() + 0.05 * span_e,
        union[:, 1].min() - 0.05 * span_u,
    )
    return hypervolume(warm_points, reference) / hypervolume(
        cold_points, reference
    )


@pytest.fixture(scope="module")
def ds_system():
    return dataset1(seed=BENCH_SEED).system


@pytest.fixture(scope="module")
def bench(ds_system):
    """One warm service run with per-window cold probes, plus greedy."""
    stream = ArrivalStream(
        mix=TaskTypeMix.uniform(ds_system.num_task_types),
        window=WINDOW_SECONDS,
        rate=ARRIVAL_RATE,
        seed=BENCH_SEED,
    )
    batches = list(stream.windows(NUM_WINDOWS))

    service = DispatchService(ds_system, service_config())
    probes = []
    t0 = time.perf_counter()
    for batch in batches:
        if batch.count == 0:
            service.process_window(batch)
            continue
        # Probe BEFORE the service commits this window, so both
        # optimizers see the identical ledger state.
        cold_points, cold_seconds = cold_probe(
            ds_system, service.ledger, batch
        )
        report = service.process_window(batch)
        probes.append({
            "window": batch.index,
            "hv_ratio": window_hv_ratio(report.front_points, cold_points),
            "warm_seconds": report.dispatch_seconds,
            "cold_seconds": cold_seconds,
            "cost_ratio": report.dispatch_seconds / cold_seconds,
        })
    wall = time.perf_counter() - t0
    result = service.result()

    # Greedy baselines replay the identical arrivals as one trace.
    trace = Trace(
        task_types=np.concatenate([b.task_types for b in batches]),
        arrival_times=np.concatenate([b.arrival_times for b in batches]),
        window=NUM_WINDOWS * WINDOW_SECONDS,
    )
    dispatcher = OnlineDispatcher(ds_system, trace)
    greedy = {}
    for name, policy in (
        ("greedy_max_utility", MaxUtilityPolicy()),
        ("greedy_utility_per_energy", UtilityPerEnergyPolicy()),
    ):
        t0 = time.perf_counter()
        outcome = dispatcher.run(policy)
        greedy[name] = {"outcome": outcome, "wall": time.perf_counter() - t0}

    return {
        "batches": batches,
        "result": result,
        "wall": wall,
        "probes": probes,
        "greedy": greedy,
    }


@pytest.fixture(scope="module")
def report(bench):
    result = bench["result"]
    probes = bench["probes"]
    steady = [p for p in probes if p["window"] >= WARMUP_WINDOWS]
    busy = [r for r in result.reports if not r.idle]

    payload = {
        "description": "Warm-started online dispatch service vs "
        "per-window cold-restart probes and greedy online policies",
        "protocol": {
            "system": "dataset1",
            "window_seconds": WINDOW_SECONDS,
            "arrival_rate_per_second": ARRIVAL_RATE,
            "num_windows": NUM_WINDOWS,
            "population": POPULATION,
            "warm_generations": WARM_GENERATIONS,
            "cold_generations": COLD_GENERATIONS,
            "warmup_windows": WARMUP_WINDOWS,
            "seed": BENCH_SEED,
            "smoke": SMOKE,
        },
        "environment": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "service": {
            "tasks_dispatched": result.tasks_dispatched,
            "total_energy": result.total_energy,
            "total_utility": result.total_utility,
            "mean_flow_time_s": result.mean_flow_time,
            "wall_seconds": bench["wall"],
            "tasks_per_second": result.tasks_per_second,
            "dispatch_latency_p50_s": result.dispatch_latency(50),
            "dispatch_latency_p99_s": result.dispatch_latency(99),
            "mean_window_cost_s": float(
                np.mean([r.dispatch_seconds for r in busy])
            ),
            "evaluations_per_window": int(
                np.mean([r.evaluations for r in busy])
            ),
            "archive_size": int(result.archive_points.shape[0]),
            "archive_min_energy": float(result.archive_points[:, 0].min()),
        },
        "greedy": {
            name: {
                "energy": entry["outcome"].energy,
                "utility": entry["outcome"].utility,
                "wall_seconds": entry["wall"],
            }
            for name, entry in bench["greedy"].items()
        },
        "per_window": probes,
        "comparison": {
            "steady_state_windows": len(steady),
            "steady_state_hypervolume_ratio": float(
                np.mean([p["hv_ratio"] for p in steady])
            ),
            "steady_state_cost_ratio": float(
                np.mean([p["cost_ratio"] for p in steady])
            ),
            "warmup_hypervolume_ratios": [
                p["hv_ratio"] for p in probes if p["window"] < WARMUP_WINDOWS
            ],
            "mean_warm_reuse_rate": float(
                np.mean([r.reuse_rate for r in busy])
            ),
            "warm_windows_adopting_kernel": int(
                sum(r.kernel_adopted for r in busy)
            ),
        },
        "gates": {
            "min_hypervolume_ratio": MIN_HV_RATIO,
            "max_warm_cost_ratio": MAX_WARM_COST_RATIO,
            "max_p99_dispatch_seconds": MAX_P99_SECONDS,
            "status": "smoke-assertions-only" if SMOKE else "enforced",
        },
    }
    REPORT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_probes_cover_busy_windows(bench):
    """Every non-idle window got a matched cold-restart probe."""
    busy = [r.index for r in bench["result"].reports if not r.idle]
    assert [p["window"] for p in bench["probes"]] == busy
    assert len(busy) >= WARMUP_WINDOWS + 1


def test_warm_service_reuses_evaluator_state(report):
    """The cross-window caches actually fire (mechanism gate)."""
    comparison = report["comparison"]
    assert comparison["mean_warm_reuse_rate"] > 0.0
    assert comparison["warm_windows_adopting_kernel"] >= NUM_WINDOWS - 2


def test_front_quality_matched(report):
    """Steady-state warm fronts match the 3x-generation cold probes."""
    ratio = report["comparison"]["steady_state_hypervolume_ratio"]
    assert ratio >= MIN_HV_RATIO


def test_warm_window_cost(report):
    """Steady-state warm windows cost at least 2x less than cold."""
    if SMOKE:
        pytest.skip("smoke run: absolute cost gate skipped")
    assert report["comparison"]["steady_state_cost_ratio"] <= MAX_WARM_COST_RATIO


def test_dispatch_latency_bounded(report):
    """p99 window dispatch time stays within the window (keeps up)."""
    if SMOKE:
        pytest.skip("smoke run: absolute latency gate skipped")
    assert report["service"]["dispatch_latency_p99_s"] <= MAX_P99_SECONDS
    assert report["service"]["tasks_per_second"] > 0


def test_service_offers_cheaper_points_than_greedy(report):
    """The value of keeping a Pareto archive: it always offers a lower
    energy operating point than the energy-blind greedy policy, so a
    budget can actually bind."""
    greedy_energy = report["greedy"]["greedy_max_utility"]["energy"]
    assert report["service"]["archive_min_energy"] < greedy_energy
    assert report["comparison"]["steady_state_hypervolume_ratio"] > 0


def test_report_written(report):
    assert REPORT.exists()
    on_disk = json.loads(REPORT.read_text())
    assert on_disk["protocol"]["num_windows"] == NUM_WINDOWS
