"""Figure 6 reproduction: Pareto fronts on data set 3 (4000 tasks / 1 h).

The largest experiment.  The paper's key observation here: because the
problem is larger, fronts converge more slowly, making the seeding
benefit visible — "In all cases, our seeded populations are finding
solutions that dominate those found by the random population."
"""

from repro.sim.evaluator import ScheduleEvaluator

from conftest import BENCH_SEED, FIG6_POP, write_output
from shape_checks import (
    assert_efficient_region_with_diminishing_returns,
    assert_fronts_improve_over_checkpoints,
    assert_min_energy_population_owns_low_energy_end,
    assert_seeded_dominate_random_early,
)


def test_figure6_single_evaluation_cost(benchmark, ds3):
    """One chromosome evaluation at 4000-task scale."""
    from repro.heuristics import MinEnergy

    evaluator = ScheduleEvaluator(ds3.system, ds3.trace, check_feasibility=False)
    alloc = MinEnergy().build(ds3.system, ds3.trace)
    benchmark(evaluator.evaluate, alloc)


def test_figure6_reproduction(benchmark, fig6_result):
    fig = fig6_result
    text = benchmark.pedantic(
        lambda: fig.render(plot=True), rounds=1, iterations=1
    )

    assert_fronts_improve_over_checkpoints(fig)
    assert_min_energy_population_owns_low_energy_end(fig)
    assert_efficient_region_with_diminishing_returns(fig)
    # The headline Figure 6 claim.
    assert_seeded_dominate_random_early(fig, min_fraction=0.5)

    write_output("figure6.txt", text)


def test_figure6_seeding_advantage_persists(benchmark, fig6_result):
    """On the large problem the seeded advantage persists through the
    final (scaled) checkpoint: the random population's front still does
    not dominate any of the best seeded points."""
    fig = fig6_result

    def fractions():
        rand = fig.result.front("random")
        out = {}
        for label in ("min-energy", "min-min-completion-time"):
            out[label] = fig.result.front(label).fraction_dominated_by(rand)
        return out

    vals = benchmark.pedantic(fractions, rounds=1, iterations=1)
    # The random front cannot dominate the min-energy seed point (it is
    # globally optimal in energy), and on this scale it should dominate
    # almost nothing of the seeded fronts.
    assert vals["min-energy"] < 1.0
    assert vals["min-min-completion-time"] < 0.5
