"""Ablation A9: the makespan-energy predecessor as a baseline.

The paper's approach differs from its predecessor (Friese et al. 2012,
reference [3]) by optimizing *utility* instead of *makespan* and by
modeling a trace (arrivals + ordering) instead of a bag of tasks.  This
bench quantifies why that matters: the makespan-optimal allocation is a
mediocre utility earner, and vice versa.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.heuristics import MinMinCompletionTime
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.makespan import MakespanEnergyEvaluator
from repro.sim.schedule import ResourceAllocation

from conftest import BENCH_SEED, write_output

GENERATIONS = 80
POP = 40


def run_both(ds1):
    util_ev = ScheduleEvaluator(ds1.system, ds1.trace, check_feasibility=False)
    mk_ev = MakespanEnergyEvaluator(ds1.system, ds1.trace, bag_of_tasks=False)
    seeds = [MinMinCompletionTime().build(ds1.system, ds1.trace)]

    util_hist = NSGA2(util_ev, NSGA2Config(population_size=POP),
                      seeds=seeds, rng=BENCH_SEED, label="utility").run(GENERATIONS)
    mk_hist = NSGA2(mk_ev, NSGA2Config(population_size=POP),
                    seeds=seeds, rng=BENCH_SEED, label="makespan").run(GENERATIONS)

    # Champion of each run, cross-evaluated under the other's metric.
    u_final = util_hist.final
    u_champ_row = int(np.argmax(u_final.front_points[:, 1]))
    u_champ = ResourceAllocation(
        u_final.front_assignments[u_champ_row], u_final.front_orders[u_champ_row]
    )
    m_final = mk_hist.final
    m_report = MakespanEnergyEvaluator.to_report_points(m_final.front_points)
    m_champ_row = int(np.argmin(m_report[:, 1]))
    m_champ = ResourceAllocation(
        m_final.front_assignments[m_champ_row], m_final.front_orders[m_champ_row]
    )
    return {
        "utility-champion": {
            "utility": util_ev.evaluate(u_champ).utility,
            "makespan": mk_ev.makespan(u_champ),
        },
        "makespan-champion": {
            "utility": util_ev.evaluate(m_champ).utility,
            "makespan": mk_ev.makespan(m_champ),
        },
    }


def test_makespan_vs_utility_objectives(benchmark, ds1):
    results = benchmark.pedantic(lambda: run_both(ds1), rounds=1, iterations=1)

    rows = [
        [name, f"{vals['utility']:.1f}", f"{vals['makespan']:.1f}"]
        for name, vals in results.items()
    ]
    write_output(
        "ablation_a9_makespan.txt",
        format_table(
            ["champion allocation", "utility earned", "makespan (s)"],
            rows,
            title="A9: utility-objective vs makespan-objective (dataset1, "
            f"{GENERATIONS} gens)",
        ),
    )
    # The utility run's champion earns at least as much utility as the
    # makespan run's; the makespan run's champion finishes no later.
    assert (
        results["utility-champion"]["utility"]
        >= results["makespan-champion"]["utility"] - 1e-9
    )
    assert (
        results["makespan-champion"]["makespan"]
        <= results["utility-champion"]["makespan"] + 1e-9
    )
