"""Shared paper-shape assertions for the figure benches.

The predicates themselves live in the library
(:mod:`repro.experiments.claims` — usable on any run, not just the
bench defaults); this module adapts them into pytest-style assertions
with the claim's diagnostic detail as the failure message.
"""

from __future__ import annotations

from repro.experiments.claims import verify_paper_claims
from repro.experiments.figures import FigureResult


def _check(fig: FigureResult, claim: str, **kwargs) -> None:
    results = {r.claim: r for r in verify_paper_claims(fig, **kwargs)}
    result = results[claim]
    assert result.passed, f"{result.claim}: {result.detail}"


def assert_fronts_improve_over_checkpoints(fig: FigureResult) -> None:
    """Hypervolume is non-decreasing along each population's checkpoints."""
    _check(fig, "fronts-improve")


def assert_min_energy_population_owns_low_energy_end(fig: FigureResult) -> None:
    """No population reaches lower energy than the min-energy-seeded one."""
    _check(fig, "min-energy-owns-low-end")


def assert_min_min_beats_random_on_utility_early(fig: FigureResult) -> None:
    """Min-min's best utility exceeds random's at the first checkpoint."""
    _check(fig, "min-min-best-utility-early")


def assert_seeded_dominate_random_early(fig: FigureResult,
                                        min_fraction: float = 0.5) -> None:
    """The combined seeded front dominates most of the random front early."""
    _check(fig, "seeded-dominate-random-early",
           dominate_fraction=min_fraction)


def assert_efficient_region_with_diminishing_returns(fig: FigureResult) -> None:
    """Every final front has an interior max-U/E region."""
    _check(fig, "efficient-region-exists")
