"""Hot-loop performance benchmark with a regression-tracked report.

Times the NSGA-II generation step at paper scale (population 100 on
data set 1 — the Figure 3 configuration) in three engine
configurations:

* **fast** — the production default: O(N log N) sweep sorting, shared
  per-generation ranks, evaluation cache, exact composite-key kernel;
* **batch** — the population-at-once kernel with per-machine
  queue-state reuse (``kernel_method="batch"``, docs/performance.md
  §4), measured at cache steady state (its reuse rate climbs over the
  first ~30 generations, so it gets a longer warmup — the other
  kernels are generation-independent and unaffected by warmup length);
* **reference** — the cross-checked O(N²) dominance-matrix path with
  caching off and the pre-optimization lexsort/offset kernel.

The fast engine's fronts are asserted bit-identical to the reference
machinery, and the batch engine's to its scalar oracle
(``kernel_method="batch-reference"``) — every speedup must be free.  Results are written to
``BENCH_ga_hotloop.json`` at the repo root next to a *frozen* pre-PR
baseline (measured at commit bb55ed6, before the fast path existed)
so the speedup is tracked against where the code started, not against
a moving target.

Regression gate: per-stage mean times must stay under ``2 × max(stage
baseline, 20% of the baseline step)`` — tight enough to catch a lost
optimization, loose enough to absorb machine-to-machine variance
(documented in ``docs/performance.md``).  Set ``REPRO_BENCH_SMOKE=1``
(the CI benchmark-smoke job does) for a reduced-step run that keeps
the same population scale and all correctness/regression assertions
but skips the absolute-speedup gate.

Set ``REPRO_BENCH_OBS=1`` (the CI observability job does) to also run
the fast engine with an **enabled** in-memory
:class:`~repro.obs.context.RunContext` and hold it to the *same* 2×
stage budget — the zero-overhead-by-default contract of
``docs/observability.md``, measured rather than asserted.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SEED, FIG3_POP
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.sim.evaluator import DEFAULT_CACHE_SIZE, ScheduleEvaluator

REPO_ROOT = Path(__file__).parent.parent
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
OBS_BENCH = os.environ.get("REPRO_BENCH_OBS", "") not in ("", "0")

WARMUP = 2 if SMOKE else 5
STEPS = 5 if SMOKE else 30
BLOCKS = 2 if SMOKE else 3
#: The batch kernel's queue-state tables reach steady-state reuse
#: (~60-75% of elements) after roughly 30 generations; timing it cold
#: would measure table warming, not the kernel.  The frozen baseline
#: and fast kernels do the same work every generation, so their
#: shorter warmup is not a protocol advantage.
BATCH_WARMUP = 4 if SMOKE else 35
REPORT = REPO_ROOT / (
    "BENCH_ga_hotloop.smoke.json" if SMOKE else "BENCH_ga_hotloop.json"
)

#: Pre-PR generation-step timings, frozen at the commit before the fast
#: path landed (same machine, same seed/population/warmup/steps protocol
#: as this file).  Never re-measured: the acceptance criterion is a
#: speedup over where the code *was*.
FROZEN_BASELINE = {
    "commit": "bb55ed6",
    "step_ms": 10.3414,
    "stages_ms": {
        "variation": 0.3429,
        "evaluate": 7.1791,
        "nondominated_sort": 2.6288,
        "environmental_selection": 2.8365,
    },
    "population": 100,
    "warmup": 5,
    "steps": 30,
    "seed": 2013,
    "machine": "x86_64",
    "python": "3.11.7",
    "numpy": "2.4.6",
}

#: Minimum acceptable speedup of the fast configuration over the frozen
#: baseline (full-scale runs only).
MIN_SPEEDUP = 2.0

#: Minimum acceptable steady-state speedup of the batch kernel over
#: the frozen baseline, and its maximum acceptable step-time ratio
#: versus the fast engine timed in the same process (full-scale runs
#: only).  Measured headroom: ~3.2x vs frozen / ~0.72 vs fast on the
#: reference machine; the gates leave margin for noisier hosts.
MIN_SPEEDUP_BATCH = 2.3
MAX_BATCH_VS_FAST = 0.92


def build_engine(bundle, *, fast, kernel=None, obs=None):
    """The production configuration (*fast*) or the pre-PR-shaped one.

    The slow configuration can run either kernel: ``"reference"`` (the
    verbatim pre-PR kernel — what the timing comparison wants) or
    ``"fast"`` (same exact kernel as production — what the bit-identity
    assertion wants, since the retired kernel's offset trick rounds
    differently by design).  ``kernel="batch"`` /
    ``kernel="batch-reference"`` run the population-at-once kernel and
    its scalar oracle on the fast engine machinery.  *obs* threads an
    observability context into both the evaluator and the engine (the
    REPRO_BENCH_OBS gate).
    """
    if kernel is None:
        kernel = "fast" if fast else "reference"
    batchy = kernel in ("batch", "batch-reference")
    evaluator = ScheduleEvaluator(
        bundle.system, bundle.trace, check_feasibility=False,
        cache_size=0 if (not fast and not batchy) else (
            DEFAULT_CACHE_SIZE if batchy else 100_000
        ),
        kernel_method=kernel,
        obs=obs,
    )
    config = NSGA2Config(population_size=FIG3_POP, fast_path=fast)
    label = f"hotloop-{kernel}" if batchy else (
        "hotloop-fast" if fast else "hotloop-reference"
    )
    return NSGA2(evaluator, config, rng=BENCH_SEED, label=label, obs=obs)


def timed_steps(engine, steps):
    """Mean wall-clock per generation step over *steps* generations."""
    t0 = time.perf_counter()
    for _ in range(steps):
        engine.step()
    return (time.perf_counter() - t0) / steps * 1000.0


def measure(engine, warmup=WARMUP):
    """Best-of-``BLOCKS`` mean step time plus per-stage means.

    Taking the best block (not the grand mean) filters one-sided
    interference from other processes — the standard noise model for
    wall-clock microbenchmarks: slowdowns are external, speedups are
    not possible.
    """
    timed_steps(engine, warmup)
    engine.stage_timings.reset()
    step_ms = min(timed_steps(engine, STEPS) for _ in range(BLOCKS))
    stages = {
        stage: engine.stage_timings.mean_ms(stage)
        for stage in ("selection", "variation", "evaluate", "environmental")
    }
    return step_ms, stages


@pytest.fixture(scope="module")
def hotloop_report(ds1):
    fast_engine = build_engine(ds1, fast=True)
    batch_engine = build_engine(ds1, fast=True, kernel="batch")
    ref_engine = build_engine(ds1, fast=False)
    fast_ms, fast_stages = measure(fast_engine)
    batch_ms, batch_stages = measure(batch_engine, warmup=BATCH_WARMUP)
    ref_ms, ref_stages = measure(ref_engine)
    batch_cache = batch_engine.evaluator.cache_stats
    report = {
        "description": (
            "NSGA-II generation-step timings, population "
            f"{FIG3_POP} on dataset1 (Figure 3 scale)"
        ),
        "protocol": {
            "population": FIG3_POP,
            "warmup": WARMUP,
            "batch_warmup": BATCH_WARMUP,
            "steps": STEPS,
            "blocks": BLOCKS,
            "seed": BENCH_SEED,
            "smoke": SMOKE,
        },
        "environment": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "baseline": FROZEN_BASELINE,
        "current": {
            "kernel": "fast",
            "step_ms": round(fast_ms, 4),
            "stages_ms": {k: round(v, 4) for k, v in fast_stages.items()},
            "cache": fast_engine.evaluator.cache_stats,
        },
        "batch": {
            "kernel": "batch",
            "step_ms": round(batch_ms, 4),
            "stages_ms": {k: round(v, 4) for k, v in batch_stages.items()},
            "cache": {
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in batch_cache.items()
            },
            "reuse_rate": round(batch_cache["reuse_rate"], 4),
        },
        "reference": {
            "kernel": "reference",
            "step_ms": round(ref_ms, 4),
            "stages_ms": {k: round(v, 4) for k, v in ref_stages.items()},
        },
        "speedup_vs_baseline": round(FROZEN_BASELINE["step_ms"] / fast_ms, 4),
        "speedup_vs_reference": round(ref_ms / fast_ms, 4),
        "speedup_batch_vs_baseline": round(
            FROZEN_BASELINE["step_ms"] / batch_ms, 4
        ),
        "batch_vs_current_ratio": round(batch_ms / fast_ms, 4),
    }
    REPORT.write_text(json.dumps(report, indent=2) + "\n")
    return report, fast_engine, ref_engine, batch_engine


def test_fast_and_reference_fronts_bit_identical(hotloop_report, ds1):
    """The entire point of the fast path: same seed, same population and
    front, to the bit, after every warmup + timed generation — checked
    against the O(N²) machinery with caching off (same exact kernel;
    the retired offset kernel rounds differently by design and is only
    compared for speed)."""
    _, fast_engine, _, _ = hotloop_report
    check = build_engine(ds1, fast=False, kernel="fast")
    for _ in range(fast_engine.generation):
        check.step()
    np.testing.assert_array_equal(
        fast_engine.population.objectives, check.population.objectives
    )
    fast_front, _ = fast_engine.current_front()
    check_front, _ = check.current_front()
    np.testing.assert_array_equal(fast_front, check_front)


def test_report_written(hotloop_report):
    report, _, _, _ = hotloop_report
    on_disk = json.loads(REPORT.read_text())
    assert on_disk["baseline"]["commit"] == "bb55ed6"
    assert on_disk["speedup_vs_baseline"] == report["speedup_vs_baseline"]
    for section in ("current", "batch", "reference"):
        assert set(on_disk[section]["stages_ms"]) == {
            "selection", "variation", "evaluate", "environmental"
        }
    assert on_disk["current"]["kernel"] == "fast"
    assert on_disk["batch"]["kernel"] == "batch"
    assert 0.0 <= on_disk["batch"]["reuse_rate"] <= 1.0
    assert on_disk["batch_vs_current_ratio"] == report["batch_vs_current_ratio"]


def test_batch_front_bit_identical_to_oracle(hotloop_report, ds1):
    """The batch kernel's contract: same seed, same fronts, to the bit,
    as its scalar oracle (``batch-reference`` — plain Python left folds
    per queue) after every warmup + timed generation.  The fast kernel
    is *not* the comparison point: its summation association differs
    in the low bits by design."""
    _, _, _, batch_engine = hotloop_report
    check = build_engine(ds1, fast=True, kernel="batch-reference")
    for _ in range(batch_engine.generation):
        check.step()
    np.testing.assert_array_equal(
        batch_engine.population.objectives, check.population.objectives
    )
    batch_front, _ = batch_engine.current_front()
    check_front, _ = check.current_front()
    np.testing.assert_array_equal(batch_front, check_front)


def test_batch_reuse_is_earning_its_keep(hotloop_report):
    """Queue-state reuse is the batch kernel's whole premise: after the
    steady-state warmup a solid fraction of queue elements must be
    served from the tables (smoke runs warm for only a few
    generations, so its floor only asserts reuse is happening)."""
    report, _, _, _ = hotloop_report
    cache = report["batch"]["cache"]
    assert cache["hits"] > 0
    assert cache["elements_reused"] > 0
    floor = 0.02 if SMOKE else 0.35
    assert report["batch"]["reuse_rate"] >= floor, (
        f"batch reuse rate {report['batch']['reuse_rate']:.2%} fell below "
        f"the {floor:.0%} floor"
    )


@pytest.mark.skipif(SMOKE, reason="absolute speedup is gated at full scale")
def test_batch_speedup_vs_frozen_baseline(hotloop_report):
    report, _, _, _ = hotloop_report
    assert report["speedup_batch_vs_baseline"] >= MIN_SPEEDUP_BATCH, (
        f"batch kernel is only {report['speedup_batch_vs_baseline']:.2f}x "
        f"the frozen baseline; the floor is {MIN_SPEEDUP_BATCH}x"
    )


@pytest.mark.skipif(SMOKE, reason="relative kernel timing is gated at "
                    "full scale")
def test_batch_beats_fast_kernel(hotloop_report):
    """At steady state the batch kernel must beat the fast kernel on
    the same machine in the same process — the in-run ratio is immune
    to machine-to-machine variance."""
    report, _, _, _ = hotloop_report
    ratio = report["batch_vs_current_ratio"]
    assert ratio <= MAX_BATCH_VS_FAST, (
        f"batch/fast step ratio {ratio:.3f} exceeds {MAX_BATCH_VS_FAST} "
        f"(batch {report['batch']['step_ms']:.3f} ms vs fast "
        f"{report['current']['step_ms']:.3f} ms)"
    )


def test_stage_regression_gate(hotloop_report):
    """Each fast-path stage must stay under 2× its frozen-baseline
    budget (with a 20%-of-step floor so sub-millisecond stages do not
    gate on scheduler noise)."""
    report, _, _, _ = hotloop_report
    base_step = FROZEN_BASELINE["step_ms"]
    base = FROZEN_BASELINE["stages_ms"]
    budgets = {
        "selection": 0.0,  # folded into sorting pre-PR
        "variation": base["variation"],
        "evaluate": base["evaluate"],
        # Pre-PR sorting + environmental selection are one stage pair.
        "environmental": base["nondominated_sort"]
        + base["environmental_selection"],
    }
    for stage, measured in report["current"]["stages_ms"].items():
        allowed = 2.0 * max(budgets[stage], 0.2 * base_step)
        assert measured <= allowed, (
            f"stage {stage!r} regressed: {measured:.3f} ms > "
            f"{allowed:.3f} ms allowed"
        )
    assert report["current"]["step_ms"] <= 2.0 * base_step


@pytest.mark.skipif(SMOKE, reason="absolute speedup is gated at full scale")
def test_speedup_vs_frozen_baseline(hotloop_report):
    report, _, _, _ = hotloop_report
    assert report["speedup_vs_baseline"] >= MIN_SPEEDUP, (
        f"fast path is only {report['speedup_vs_baseline']:.2f}x the frozen "
        f"baseline; the acceptance floor is {MIN_SPEEDUP}x"
    )


@pytest.mark.skipif(not OBS_BENCH, reason="set REPRO_BENCH_OBS=1 to gate "
                    "observability overhead")
def test_observability_overhead_within_budget(hotloop_report, ds1):
    """An enabled (info-level, in-memory) RunContext must keep every
    stage inside the same 2× frozen-baseline budget the dark engine is
    held to — and must not change the optimization results."""
    from repro.obs import RunContext

    obs = RunContext.create(level="info")
    engine = build_engine(ds1, fast=True, obs=obs)
    step_ms, stages = measure(engine)

    base_step = FROZEN_BASELINE["step_ms"]
    base = FROZEN_BASELINE["stages_ms"]
    budgets = {
        "selection": 0.0,
        "variation": base["variation"],
        "evaluate": base["evaluate"],
        "environmental": base["nondominated_sort"]
        + base["environmental_selection"],
    }
    for stage, measured in stages.items():
        allowed = 2.0 * max(budgets[stage], 0.2 * base_step)
        assert measured <= allowed, (
            f"observability pushed stage {stage!r} over budget: "
            f"{measured:.3f} ms > {allowed:.3f} ms allowed"
        )
    assert step_ms <= 2.0 * base_step
    assert len(obs.tracer) > 0  # it really was recording

    # Same seed, same generations, bit-identical objectives.
    dark = build_engine(ds1, fast=True)
    for _ in range(engine.generation):
        dark.step()
    np.testing.assert_array_equal(
        engine.population.objectives, dark.population.objectives
    )


def test_cache_is_earning_its_keep(hotloop_report):
    """At GA access patterns duplicate chromosomes recur (elitism keeps
    parents verbatim); the cache must be observing real hits."""
    report, _, _, _ = hotloop_report
    cache = report["current"]["cache"]
    assert cache["misses"] > 0
    assert cache["hits"] > 0
