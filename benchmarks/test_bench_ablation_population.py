"""Ablation A2: population size.

For a fixed evaluation budget (population x generations = constant),
sweeps the NSGA-II population size.  Larger populations carry more
front diversity per generation; smaller ones iterate more — the sweep
shows where the balance lands on data set 1, and that front *size*
grows with N (the front can hold at most N points).
"""

import numpy as np

from repro.analysis.indicators import hypervolume
from repro.analysis.report import format_table
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.sim.evaluator import ScheduleEvaluator

from conftest import BENCH_SEED, write_output

#: (population, generations) pairs at a constant ~4800-evaluation budget.
BUDGET_POINTS = ((20, 240), (40, 120), (80, 60), (160, 30))


def run_sweep(ds1):
    evaluator = ScheduleEvaluator(ds1.system, ds1.trace, check_feasibility=False)
    outcomes = {}
    for pop, gens in BUDGET_POINTS:
        ga = NSGA2(evaluator, NSGA2Config(population_size=pop), rng=BENCH_SEED)
        hist = ga.run(gens)
        outcomes[(pop, gens)] = hist.final.front_points
    all_pts = np.vstack(list(outcomes.values()))
    ref = (float(all_pts[:, 0].max() * 1.01), 0.0)
    return {
        key: (hypervolume(pts, ref), pts.shape[0])
        for key, pts in outcomes.items()
    }


def test_population_size_sweep(benchmark, ds1):
    results = benchmark.pedantic(lambda: run_sweep(ds1), rounds=1, iterations=1)

    rows = [
        [pop, gens, f"{hv:.4g}", size]
        for (pop, gens), (hv, size) in results.items()
    ]
    write_output(
        "ablation_a2_population.txt",
        format_table(
            ["population", "generations", "hypervolume", "front size"],
            rows,
            title="A2: population size at constant evaluation budget (dataset1)",
        ),
    )
    sizes = [size for (_, size) in results.values()]
    pops = [pop for pop, _ in results]
    # Front size is capped by population and grows with it.
    for (pop, _), (_, size) in results.items():
        assert size <= pop
    assert sizes[-1] >= sizes[0]
