"""Shared fixtures for the benchmark/reproduction harness.

Every file in ``benchmarks/`` regenerates one paper table/figure (or an
ablation) and times its core computation with pytest-benchmark.  Since
figure runs are expensive, the seeded-population results are built once
per session and shared (Figure 5 reuses the Figure 4 run exactly as the
paper derives it from the same data).

Rendered reproduction data is written to ``benchmarks/output/*.txt`` so
the regenerated "figures" survive pytest's stdout capture; pass ``-s``
to also see them inline.

Scaling: checkpoint generation counts are scaled-down versions of the
paper's (DESIGN.md substitution table); set ``REPRO_SCALE=1`` and
remove the explicit checkpoints below for paper-scale runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.datasets import dataset1, dataset2, dataset3
from repro.experiments.figures import figure3, figure4, figure6

#: Where rendered reproduction artifacts are written.
OUTPUT_DIR = Path(__file__).parent / "output"

#: Master seed for all benchmark runs.
BENCH_SEED = 2013

#: Scaled checkpoint schedules (paper: see PAPER_CHECKPOINTS).
FIG3_CHECKPOINTS = (2, 20, 60, 200)
FIG4_CHECKPOINTS = (2, 12, 40, 120)
FIG6_CHECKPOINTS = (1, 5, 20, 60)

FIG3_POP = 100
FIG4_POP = 60
FIG6_POP = 40


def write_output(name: str, text: str) -> Path:
    """Persist a rendered reproduction block and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written: {path}]")
    return path


@pytest.fixture(scope="session")
def ds1():
    """Data set 1 (real data, 250 tasks / 15 min)."""
    return dataset1(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def ds2():
    """Data set 2 (synthetic system, 1000 tasks / 15 min)."""
    return dataset2(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def ds3():
    """Data set 3 (synthetic system, 4000 tasks / 1 hour)."""
    return dataset3(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def fig3_result(ds1):
    """The Figure 3 seeded-population run (shared)."""
    return figure3(
        checkpoints=FIG3_CHECKPOINTS,
        population_size=FIG3_POP,
        base_seed=BENCH_SEED,
        dataset=ds1,
    )


@pytest.fixture(scope="session")
def fig4_result(ds2):
    """The Figure 4 seeded-population run (shared with Figure 5)."""
    return figure4(
        checkpoints=FIG4_CHECKPOINTS,
        population_size=FIG4_POP,
        base_seed=BENCH_SEED,
        dataset=ds2,
    )


@pytest.fixture(scope="session")
def fig6_result(ds3):
    """The Figure 6 seeded-population run."""
    return figure6(
        checkpoints=FIG6_CHECKPOINTS,
        population_size=FIG6_POP,
        base_seed=BENCH_SEED,
        dataset=ds3,
    )
