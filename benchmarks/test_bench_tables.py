"""Tables I, II, III reproduction (paper Section III-D1 / V-A).

The tables are static definitions; the benchmark times their rendering
(trivially fast) while the assertions pin the reproduced content to the
paper's rows.
"""

from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    table1,
    table2,
    table3,
)

from conftest import write_output


def test_table1_machines(benchmark):
    text = benchmark(render_table1)
    machines = table1()
    assert len(machines) == 9
    # Spot rows from the paper's Table I.
    assert machines[0] == "AMD A8-3870K"
    assert machines[-1] == "Intel Core i7 3770K @ 4.3 GHz"
    assert "Intel Core i5 2500K" in machines
    write_output("table1.txt", text)


def test_table2_programs(benchmark):
    text = benchmark(render_table2)
    programs = table2()
    assert programs == (
        "C-Ray",
        "7-Zip Compression",
        "Warsow",
        "Unigine Heaven",
        "Timed Linux Kernel Compilation",
    )
    write_output("table2.txt", text)


def test_table3_breakup(benchmark):
    text = benchmark(render_table3)
    counts = dict(table3())
    # Paper Table III rows.
    assert counts["Special-purpose machine A"] == 1
    assert counts["AMD A8-3870K"] == 2
    assert counts["Intel Core i3 2120"] == 3
    assert counts["Intel Core i7 3960X"] == 4
    assert counts["Intel Core i7 3770K"] == 5
    assert sum(counts.values()) == 30
    assert len(counts) == 13
    write_output("table3.txt", text)
