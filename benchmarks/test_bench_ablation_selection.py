"""Ablation A7: parent selection — the paper's uniform-random draw vs
Deb's crowded binary tournament.

The paper's adapted NSGA-II "select[s] two chromosomes uniformly at
random from the population" for crossover, whereas canonical NSGA-II
uses a crowded binary tournament.  This ablation quantifies the gap on
data set 1 at equal budgets.
"""

import numpy as np

from repro.analysis.indicators import hypervolume
from repro.analysis.report import format_table
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.operators import OperatorConfig
from repro.sim.evaluator import ScheduleEvaluator

from conftest import BENCH_SEED, write_output

GENERATIONS = 80
POP = 40
REPETITIONS = 3


def run_strategy(ds1, selection: str) -> list[np.ndarray]:
    evaluator = ScheduleEvaluator(ds1.system, ds1.trace, check_feasibility=False)
    fronts = []
    for r in range(REPETITIONS):
        ga = NSGA2(
            evaluator,
            NSGA2Config(
                population_size=POP,
                operators=OperatorConfig(parent_selection=selection),
            ),
            rng=BENCH_SEED + r,
        )
        fronts.append(ga.run(GENERATIONS).final.front_points)
    return fronts


def test_selection_strategy_comparison(benchmark, ds1):
    results = benchmark.pedantic(
        lambda: {
            "uniform": run_strategy(ds1, "uniform"),
            "tournament": run_strategy(ds1, "tournament"),
        },
        rounds=1,
        iterations=1,
    )
    all_pts = np.vstack([f for fronts in results.values() for f in fronts])
    ref = (float(all_pts[:, 0].max() * 1.01), 0.0)
    mean_hv = {
        name: float(np.mean([hypervolume(f, ref) for f in fronts]))
        for name, fronts in results.items()
    }

    rows = [[name, f"{hv:.4g}"] for name, hv in mean_hv.items()]
    write_output(
        "ablation_a7_selection.txt",
        format_table(
            ["parent selection", "mean final hypervolume (3 reps)"],
            rows,
            title=f"A7: uniform (paper) vs crowded tournament "
            f"(dataset1, {GENERATIONS} gens, pop {POP})",
        ),
    )
    # Both strategies must produce non-trivial fronts; the comparison
    # itself is the deliverable (direction varies with the problem).
    assert all(hv > 0 for hv in mean_hv.values())
