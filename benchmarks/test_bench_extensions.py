"""Ablation A6: the paper's future-work extensions.

* Task dropping: evaluating Figure-3-style allocations under the
  dropping policy strictly saves energy at zero utility cost for
  negligible-utility thresholds.
* DVFS: the bi-objective frontier extends below the plain system's
  provable minimum energy once P-states join the gene space.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.extensions.dropping import DroppingPolicy, apply_dropping
from repro.extensions.dvfs import DVFS_PRESETS, make_dvfs_evaluator
from repro.heuristics import MinEnergy, MinMinCompletionTime
from repro.sim.evaluator import ScheduleEvaluator

from conftest import BENCH_SEED, write_output


def test_dropping_saves_energy(benchmark, ds1):
    evaluator = ScheduleEvaluator(ds1.system, ds1.trace, check_feasibility=False)
    alloc = MinMinCompletionTime().build(ds1.system, ds1.trace)

    result = benchmark(
        apply_dropping, evaluator, alloc, DroppingPolicy(utility_threshold=0.05)
    )

    assert result.energy <= result.baseline.energy
    assert result.utility >= result.baseline.utility - 0.05 * result.num_dropped

    rows = [
        ["baseline energy (MJ)", f"{result.baseline.energy / 1e6:.4f}"],
        ["dropped-policy energy (MJ)", f"{result.energy / 1e6:.4f}"],
        ["energy saved (MJ)", f"{result.energy_saved / 1e6:.4f}"],
        ["baseline utility", f"{result.baseline.utility:.1f}"],
        ["dropped-policy utility", f"{result.utility:.1f}"],
        ["tasks dropped", result.num_dropped],
        ["fixed-point rounds", result.rounds],
    ]
    write_output(
        "ablation_a6_dropping.txt",
        format_table(["quantity", "value"], rows,
                     title="A6a: task dropping on dataset1 (min-min allocation)"),
    )


def test_dvfs_extends_frontier(benchmark, ds1):
    plain = ScheduleEvaluator(ds1.system, ds1.trace, check_feasibility=False)
    e_floor = plain.evaluate(MinEnergy().build(ds1.system, ds1.trace)).energy

    def optimize():
        dvfs_ev = make_dvfs_evaluator(ds1.system, ds1.trace, DVFS_PRESETS)
        seed = MinEnergy().build(dvfs_ev.system, ds1.trace)
        ga = NSGA2(dvfs_ev, NSGA2Config(population_size=40), seeds=[seed],
                   rng=BENCH_SEED)
        return ga.run(40)

    hist = benchmark.pedantic(optimize, rounds=1, iterations=1)
    e_dvfs = float(hist.final.front_points[:, 0].min())
    assert e_dvfs < e_floor

    rows = [
        ["plain minimum energy (MJ)", f"{e_floor / 1e6:.4f}"],
        ["DVFS frontier minimum (MJ)", f"{e_dvfs / 1e6:.4f}"],
        ["reduction", f"{(1 - e_dvfs / e_floor) * 100:.1f}%"],
        ["P-states", ", ".join(p.name for p in DVFS_PRESETS)],
    ]
    write_output(
        "ablation_a6_dvfs.txt",
        format_table(["quantity", "value"], rows,
                     title="A6b: DVFS frontier extension on dataset1"),
    )
