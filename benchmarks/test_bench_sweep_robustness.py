"""Ablations A10 and A11: load regimes and front fragility.

* **A10 (oversubscription sweep):** the paper studies three fixed
  (task count, window) points; sweeping the load shows *why* those
  points are interesting — below saturation the trade-off is flat
  (everything earns near-full utility), past it the front stretches
  and the achievable utility fraction collapses.
* **A11 (front robustness):** ETC values are estimates; Monte-Carlo
  runtime noise (±20%) shows how much utility each front point keeps,
  quantifying the fragility of the tightly packed max-utility end.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.extensions.robustness import (
    NoiseModel,
    RobustnessAnalyzer,
    front_robustness,
)
from repro.experiments.sweep import oversubscription_sweep
from repro.heuristics import MinMinCompletionTime
from repro.sim.evaluator import ScheduleEvaluator

from conftest import BENCH_SEED, write_output

SWEEP_COUNTS = (50, 150, 250, 400)


def test_a10_oversubscription_sweep(benchmark, ds1):
    points = benchmark.pedantic(
        lambda: oversubscription_sweep(
            ds1.system,
            window=900.0,
            task_counts=list(SWEEP_COUNTS),
            generations=40,
            population_size=30,
            base_seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            p.num_tasks,
            f"{p.offered_load:.2f}",
            f"{p.utility_fraction * 100:.1f}%",
            f"{p.energy_per_task_at_peak / 1e3:.2f} kJ",
            p.front.size,
        ]
        for p in points
    ]
    write_output(
        "ablation_a10_oversubscription.txt",
        format_table(
            ["tasks", "offered load", "best utility fraction",
             "energy/task @ peak U/E", "front size"],
            rows,
            title="A10: oversubscription sweep on the dataset1 system "
            "(15-min window)",
        ),
    )
    # Achievable utility fraction is monotone non-increasing in load.
    fractions = [p.utility_fraction for p in points]
    assert all(b <= a + 0.02 for a, b in zip(fractions, fractions[1:]))
    # Load ordering sanity.
    loads = [p.offered_load for p in points]
    assert loads == sorted(loads)


def test_a11_front_robustness(benchmark, ds1):
    evaluator = ScheduleEvaluator(ds1.system, ds1.trace, check_feasibility=False)
    seed_alloc = MinMinCompletionTime().build(ds1.system, ds1.trace)
    ga = NSGA2(evaluator, NSGA2Config(population_size=40), seeds=[seed_alloc],
               rng=BENCH_SEED)
    hist = ga.run(60)
    analyzer = RobustnessAnalyzer(
        ds1.system, ds1.trace, noise=NoiseModel(sigma=0.2),
        samples=100, tolerance=0.1, seed=BENCH_SEED,
    )

    reports = benchmark.pedantic(
        lambda: front_robustness(analyzer, hist.final), rounds=1, iterations=1
    )

    rows = []
    step = max(1, len(reports) // 8)
    for i in range(0, len(reports), step):
        r = reports[i]
        rows.append(
            [
                i,
                f"{r.nominal_energy / 1e6:.3f}",
                f"{r.nominal_utility:.1f}",
                f"{r.mean_utility:.1f}",
                f"{r.utility_degradation * 100:.1f}%",
                f"{r.prob_within_tolerance * 100:.0f}%",
            ]
        )
    write_output(
        "ablation_a11_robustness.txt",
        format_table(
            ["front idx", "energy (MJ)", "nominal U", "mean U under noise",
             "degradation", "P(U >= 90% nominal)"],
            rows,
            title="A11: front robustness under +-20% runtime noise "
            "(dataset1, min-min-seeded front)",
        ),
    )
    # Energy is nearly noise-proof in the mean (mean-1 factors scale
    # each task's energy linearly), utility is not.
    for r in reports:
        assert abs(r.mean_energy - r.nominal_energy) / r.nominal_energy < 0.05
    assert any(r.utility_degradation > 0 for r in reports)
