"""Ablation A4: heterogeneity preservation of the synthetic-data method.

Regenerates the Section III-D2 comparison: mvsk of the real row
averages vs those of Gram-Charlier-generated task types, side by side
with the classic CVB generator as a baseline that targets only
mean/CV (not skewness/kurtosis).
"""

import numpy as np

from repro.analysis.report import format_table
from repro.data.cvb import CVBParameters, generate_cvb_etc
from repro.data.heterogeneity import compare_stats, mvsk
from repro.data.historical import HISTORICAL_EPC, HISTORICAL_ETC
from repro.data.synthetic import expand_matrix_pair

from conftest import write_output

NUM_NEW = 400  # large sample so the sample moments are stable


def test_gram_charlier_preserves_mvsk(benchmark):
    etc_exp, epc_exp = benchmark.pedantic(
        lambda: expand_matrix_pair(HISTORICAL_ETC, HISTORICAL_EPC, NUM_NEW, seed=4),
        rounds=1,
        iterations=1,
    )

    rows = []
    ok = {}
    for label, exp in (("ETC", etc_exp), ("EPC", epc_exp)):
        real = exp.row_average_stats
        synth = mvsk(exp.new_rows().mean(axis=1))
        ok[label] = compare_stats(real, synth)
        for tag, s in (("real", real), ("synthetic", synth)):
            rows.append(
                [f"{label} {tag}", f"{s.mean:.2f}", f"{s.cov:.3f}",
                 f"{s.skewness:.3f}", f"{s.kurtosis:.3f}"]
            )
    assert ok["ETC"] and ok["EPC"]
    write_output(
        "ablation_a4_synthetic.txt",
        format_table(
            ["row averages", "mean", "CV", "skewness", "kurtosis"],
            rows,
            title=f"A4: heterogeneity preservation, {NUM_NEW} synthetic task types",
        ),
    )


def test_expansion_throughput(benchmark):
    """Generation cost at dataset-2 scale (25 new task types)."""
    result = benchmark(
        lambda: expand_matrix_pair(HISTORICAL_ETC, HISTORICAL_EPC, 25, seed=5)
    )
    assert result[0].values.shape == (30, 9)


def test_cvb_matches_mean_cv_not_shape(benchmark):
    """CVB tracks the real mean and CV but cannot target the real
    skewness — the Gram-Charlier method's raison d'etre."""
    real_rows = mvsk(HISTORICAL_ETC.mean(axis=1))
    params = CVBParameters(
        mean_task=real_rows.mean,
        v_task=real_rows.cov,
        v_machine=0.35,
    )
    etc = benchmark(generate_cvb_etc, 2000, 9, params, 6)
    synth = mvsk(etc.mean(axis=1))
    np.testing.assert_allclose(synth.mean, real_rows.mean, rtol=0.1)
    assert abs(synth.cov - real_rows.cov) < 0.15
    # Gamma skewness is 2*CV — fixed by the distribution family, not by
    # the data (the real sample's skewness is an input CVB cannot take).
    gamma_skew = 2.0 * real_rows.cov
    assert abs(synth.skewness - gamma_skew) < 0.5
