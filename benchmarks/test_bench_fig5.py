"""Figure 5 reproduction: locating the max utility-per-energy region.

Exactly as in the paper, the analysis runs on the final Pareto front of
the max-utility-per-energy-seeded population from the Figure 4
experiment: subplot A is the front, subplot B the U/E-vs-utility curve,
subplot C the U/E-vs-energy curve; the peaks of B and C mark the
region's utility and energy coordinates.
"""

import numpy as np

from repro.analysis.efficiency import max_utility_per_energy_region
from repro.experiments.figures import figure5

from conftest import write_output


def test_figure5_region_location(benchmark, fig4_result):
    fig5 = benchmark.pedantic(
        lambda: figure5(figure4_result=fig4_result), rounds=1, iterations=1
    )
    front = fig5.front
    region = fig5.region

    # The peak of subplot B (U/E vs utility) and subplot C (U/E vs
    # energy) is the same front point by construction of the method.
    b = fig5.curve_vs_utility
    c = fig5.curve_vs_energy
    assert b[region.peak_index, 1] == region.peak_ratio
    assert c[region.peak_index, 0] == region.peak_energy
    assert b[region.peak_index, 0] == region.peak_utility

    # Translating the two peak coordinates back onto the front recovers
    # a front point (the paper's solid/dashed guide-line construction).
    i = np.flatnonzero(front.energies == region.peak_energy)
    assert front.utilities[i[0]] == region.peak_utility

    # The region is a contiguous stretch of the front containing the peak.
    assert region.region_indices[0] <= region.peak_index <= region.region_indices[-1]
    np.testing.assert_array_equal(
        np.diff(region.region_indices), 1
    ) if region.region_size > 1 else None

    write_output("figure5.txt", fig5.render())


def test_figure5_curve_peak_consistency(benchmark, fig4_result):
    """argmax over both marginal curves agrees (one shared peak)."""
    front = fig4_result.result.front("max-utility-per-energy")

    region = benchmark(max_utility_per_energy_region, front)

    ratios = front.utilities / front.energies
    assert region.peak_index == int(np.argmax(ratios))
    assert region.peak_ratio == ratios.max()
