"""Figure 2 reproduction: solution dominance.

Asserts the paper's A/B/C relationships and benchmarks nondominated
filtering — the operation Figure 2 illustrates and the NSGA-II performs
every generation.
"""

import numpy as np

from repro.core.dominance import dominates, nondominated_mask
from repro.core.sorting import fast_nondominated_sort

from conftest import write_output

# The paper's Figure 2 layout: energy on x, utility on y.
A = (5.0, 10.0)
B = (7.0, 8.0)
C = (3.0, 6.0)


def test_figure2_dominance_relations(benchmark):
    result = benchmark(dominates, A, B)
    assert result  # "Solution A dominates solution B"
    assert not dominates(B, A)
    # "Neither solution A nor C dominate each other"
    assert not dominates(A, C) and not dominates(C, A)
    pts = np.array([A, B, C])
    mask = nondominated_mask(pts)
    np.testing.assert_array_equal(mask, [True, False, True])
    write_output(
        "figure2.txt",
        "figure2: dominance of A=(5 J, 10 U), B=(7 J, 8 U), C=(3 J, 6 U)\n"
        f"  A dominates B: {dominates(A, B)}\n"
        f"  B dominates A: {dominates(B, A)}\n"
        f"  A ~ C incomparable: {not dominates(A, C) and not dominates(C, A)}\n"
        f"  Pareto set: {{A, C}} (mask {mask.tolist()})",
    )


def test_nondominated_mask_throughput(benchmark):
    """Filtering a 10k-point cloud (archive-scale input)."""
    rng = np.random.default_rng(1)
    pts = rng.uniform(0.0, 1.0, size=(10_000, 2))
    mask = benchmark(nondominated_mask, pts)
    assert mask.any()


def test_nondominated_sort_population_scale(benchmark):
    """Sorting a 200-chromosome meta-population (the per-generation
    cost inside Algorithm 1)."""
    rng = np.random.default_rng(2)
    pts = rng.uniform(0.0, 1.0, size=(200, 2))
    ranks = benchmark(fast_nondominated_sort, pts)
    assert ranks.min() == 1
