"""Ablation A1: mutation probability.

The paper selects the mutation probability "by experimentation"; this
ablation regenerates that experiment — final-front hypervolume on data
set 1 as the probability sweeps 0 .. 1 — showing the classic inverted-U
(no mutation stalls exploration; mutation-on-every-offspring disrupts
convergence less than no mutation here because the order swap is mild).
"""

import numpy as np

from repro.analysis.indicators import hypervolume
from repro.analysis.report import format_table
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.operators import OperatorConfig
from repro.sim.evaluator import ScheduleEvaluator

from conftest import BENCH_SEED, write_output

PROBABILITIES = (0.0, 0.1, 0.25, 0.5, 1.0)
GENERATIONS = 60
POP = 40


def run_sweep(ds1):
    evaluator = ScheduleEvaluator(ds1.system, ds1.trace, check_feasibility=False)
    all_pts = []
    finals = {}
    for p in PROBABILITIES:
        ga = NSGA2(
            evaluator,
            NSGA2Config(
                population_size=POP,
                operators=OperatorConfig(mutation_probability=p),
            ),
            rng=BENCH_SEED,
        )
        hist = ga.run(GENERATIONS)
        finals[p] = hist.final.front_points
        all_pts.append(hist.final.front_points)
    ref = (float(np.vstack(all_pts)[:, 0].max() * 1.01), 0.0)
    return {p: hypervolume(pts, ref) for p, pts in finals.items()}


def test_mutation_probability_sweep(benchmark, ds1):
    hv = benchmark.pedantic(lambda: run_sweep(ds1), rounds=1, iterations=1)

    rows = [[f"{p:.2f}", f"{hv[p]:.4g}"] for p in PROBABILITIES]
    write_output(
        "ablation_a1_mutation.txt",
        format_table(
            ["mutation probability", "final hypervolume"],
            rows,
            title=f"A1: mutation probability sweep (dataset1, {GENERATIONS} "
            f"generations, pop {POP})",
        ),
    )
    # Some mutation beats none (crossover alone cannot introduce new
    # machine choices into a converged gene pool).
    best_with_mutation = max(hv[p] for p in PROBABILITIES if p > 0)
    assert best_with_mutation >= hv[0.0]
