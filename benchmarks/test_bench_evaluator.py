"""Ablation A3: vectorized evaluator vs the sequential reference.

Quantifies why the closed-form segmented-scan evaluation exists: the
NSGA-II evaluates ~N chromosomes per generation, and the paper's
figures run up to a million generations — the vectorized path is the
difference between seconds and days.
"""

import numpy as np
import pytest

from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.events import simulate_reference
from repro.heuristics import MinEnergy

from conftest import write_output


@pytest.fixture(scope="module")
def scenario(request):
    from repro.experiments.datasets import dataset1

    ds = dataset1(seed=1)
    evaluator = ScheduleEvaluator(ds.system, ds.trace, check_feasibility=False)
    alloc = MinEnergy().build(ds.system, ds.trace)
    return ds, evaluator, alloc


def test_vectorized_single_evaluation(benchmark, scenario):
    ds, evaluator, alloc = scenario
    res = benchmark(evaluator.evaluate, alloc)
    assert res.energy > 0


def test_reference_single_evaluation(benchmark, scenario):
    ds, evaluator, alloc = scenario
    ref = benchmark(simulate_reference, ds.system, ds.trace, alloc)
    fast = evaluator.evaluate(alloc)
    assert fast.energy == pytest.approx(ref.energy)
    assert fast.utility == pytest.approx(ref.utility)


def test_batch_vs_loop(benchmark, scenario):
    """One fused batch call vs N single calls (the same 64 chromosomes)."""
    ds, evaluator, _ = scenario
    rng = np.random.default_rng(0)
    T = ds.trace.num_tasks
    N = 64
    assignments = rng.integers(0, ds.system.num_machines, size=(N, T))
    orders = np.stack([rng.permutation(T) for _ in range(N)])

    energies, utilities = benchmark(
        evaluator.evaluate_batch, assignments, orders
    )

    # Correctness of the fused path against the single path.
    for i in (0, N // 2, N - 1):
        from repro.sim.schedule import ResourceAllocation

        res = evaluator.evaluate(ResourceAllocation(assignments[i], orders[i]))
        assert energies[i] == pytest.approx(res.energy)
        assert utilities[i] == pytest.approx(res.utility)

    # Measure the three paths directly so the artifact carries numbers.
    import time

    def timed(fn, *args, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - t0)
        return best

    t_single = timed(
        lambda: evaluator.evaluate(
            __import__("repro.sim.schedule", fromlist=["ResourceAllocation"])
            .ResourceAllocation(assignments[0], orders[0])
        )
    )
    t_ref = timed(lambda: simulate_reference(
        ds.system, ds.trace,
        __import__("repro.sim.schedule", fromlist=["ResourceAllocation"])
        .ResourceAllocation(assignments[0], orders[0]),
    ))
    t_batch = timed(lambda: evaluator.evaluate_batch(assignments, orders))
    write_output(
        "ablation_a3_evaluator.txt",
        "A3: evaluator paths on dataset1 (250 tasks; best of 5)\n"
        f"  sequential reference:     {t_ref * 1e3:8.3f} ms / chromosome\n"
        f"  vectorized single:        {t_single * 1e3:8.3f} ms / chromosome "
        f"({t_ref / t_single:.0f}x faster)\n"
        f"  fused batch of {N}:        {t_batch / N * 1e3:8.3f} ms / chromosome "
        f"({t_ref / (t_batch / N):.0f}x faster)",
    )


@pytest.mark.parametrize("num_tasks", [500, 2000, 8000])
def test_evaluation_scaling(benchmark, num_tasks):
    """Single-chromosome evaluation cost vs trace size (the O(T log T)
    claim of docs/architecture.md, measured)."""
    import numpy as np

    from repro.experiments.datasets import build_expanded_system
    from repro.sim.schedule import ResourceAllocation
    from repro.workload.generator import WorkloadGenerator

    system = build_expanded_system(seed=9, horizon_seconds=3600.0)
    trace = WorkloadGenerator.uniform_for(system.num_task_types).generate(
        num_tasks, 3600.0, seed=10
    )
    evaluator = ScheduleEvaluator(system, trace, check_feasibility=False)
    rng = np.random.default_rng(11)
    feasible = system.feasible_task_machine[trace.task_types]
    assignment = np.array([
        rng.choice(np.flatnonzero(feasible[t])) for t in range(num_tasks)
    ])
    alloc = ResourceAllocation(assignment, rng.permutation(num_tasks))

    result = benchmark(evaluator.evaluate, alloc)
    assert result.energy > 0
