"""Figure 3 reproduction: Pareto fronts on the real data set (data set 1).

Five seeded NSGA-II populations (min-energy / min-min / max-utility /
max-U/E / random) on 250 tasks over 15 minutes, snapshotted at scaled
versions of the paper's 100 / 1e3 / 1e4 / 1e5 iteration checkpoints.

The benchmark times one NSGA-II generation at figure-3 scale; the
session-level figure run supplies the reproduced data, which is checked
against the paper's qualitative claims and written to
``benchmarks/output/figure3.txt``.
"""

from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.sim.evaluator import ScheduleEvaluator

from conftest import BENCH_SEED, FIG3_POP, write_output
from shape_checks import (
    assert_efficient_region_with_diminishing_returns,
    assert_fronts_improve_over_checkpoints,
    assert_min_energy_population_owns_low_energy_end,
    assert_min_min_beats_random_on_utility_early,
)


def test_figure3_generation_cost(benchmark, ds1):
    """One generation (crossover + mutation + batch evaluation +
    environmental selection) at figure-3 scale."""
    evaluator = ScheduleEvaluator(ds1.system, ds1.trace, check_feasibility=False)
    ga = NSGA2(evaluator, NSGA2Config(population_size=FIG3_POP), rng=BENCH_SEED)
    benchmark(ga.step)


def test_figure3_reproduction(benchmark, fig3_result):
    """The full figure: shape assertions + rendered output."""
    fig = fig3_result

    def summarize():
        return fig.render(plot=True)

    text = benchmark.pedantic(summarize, rounds=1, iterations=1)

    assert set(fig.result.histories) == {
        "min-energy",
        "min-min-completion-time",
        "max-utility",
        "max-utility-per-energy",
        "random",
    }
    assert_fronts_improve_over_checkpoints(fig)
    assert_min_energy_population_owns_low_energy_end(fig)
    assert_min_min_beats_random_on_utility_early(fig)
    assert_efficient_region_with_diminishing_returns(fig)

    # "the presence of the seed starts to become irrelevant [with more
    # iterations] because all the populations ... start converging":
    # the random population's utility deficit versus min-min shrinks
    # from the first to the last checkpoint.
    first, last = fig.checkpoints[0], fig.checkpoints[-1]

    def deficit(gen: int) -> float:
        u_mm = fig.result.front("min-min-completion-time", gen).utility_range[1]
        u_rd = fig.result.front("random", gen).utility_range[1]
        return u_mm - u_rd

    assert deficit(last) <= deficit(first)
    write_output("figure3.txt", text)
