"""Figure 1 reproduction: the sample task time-utility function.

Asserts the paper's two spot reads (complete at 20 -> 12 utility;
complete at 47 -> 7 utility) and benchmarks batched TUF evaluation —
the inner loop of every chromosome evaluation.
"""

import numpy as np

from repro.utility.tuf import TimeUtilityFunction
from repro.utility.presets import default_catalog
from repro.utility.vectorized import TUFTable

from conftest import write_output


def test_figure1_spot_values(benchmark):
    tuf = TimeUtilityFunction.figure1_example()
    times = np.linspace(0.0, 80.0, 161)

    values = benchmark(tuf, times)

    assert tuf(20.0) == 12.0
    assert tuf(47.0) == 7.0
    assert np.all(np.diff(values) <= 1e-9)  # monotonically decreasing

    rows = "\n".join(
        f"  t={t:5.1f}  utility={v:6.2f}" for t, v in zip(times[::20], values[::20])
    )
    write_output(
        "figure1.txt",
        "figure1: task time-utility function (paper spot checks: "
        f"U(20)={tuf(20.0):.0f}, U(47)={tuf(47.0):.0f})\n" + rows,
    )


def test_tuf_table_batch_throughput(benchmark):
    """Batched evaluation across the whole preset catalogue."""
    cat = default_catalog(900.0)
    table = TUFTable.from_functions(list(cat.functions))
    rng = np.random.default_rng(0)
    types = rng.integers(0, table.num_types, size=100_000)
    elapsed = rng.uniform(0.0, 2000.0, size=100_000)

    values = benchmark(table.evaluate, types, elapsed)

    assert values.shape == (100_000,)
    assert np.all(values >= 0.0)
