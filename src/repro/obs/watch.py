"""The live grid dashboard behind ``repro-analyze grid watch``.

One frame of the dashboard is a pure join of three durable sources —
no running coordinator is consulted, so watching works from any shell
(and after a coordinator crash):

* the **grid manifest journal** (``manifest.jsonl``) — per-state cell
  counts, retry/quarantine feeds, per-cell ``done`` timestamps for
  throughput and ETA, and worker ``running`` heartbeats;
* the **worker telemetry sinks** (``<obs_dir>/workers/*/metrics.json``)
  — per-worker cell counters and the queue-wait / run-time histograms,
  each file atomically replaced by the worker at every checkpoint so a
  live read never sees a torn snapshot;
* the **coordinator/merged metrics** when present (best effort).

The module is layered for testing: :func:`grid_snapshot` builds a plain
data dict, :func:`render_watch` formats it for a terminal,
:func:`snapshot_to_prometheus` re-expresses it as a Prometheus textfile
(node-exporter textfile-collector convention: written via temp +
``os.replace``), and :func:`watch_grid` is the refresh loop the CLI
drives (``--once`` renders a single frame).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs.collect import _fold_snapshot, worker_dirs
from repro.obs.metrics import MetricsRegistry
from repro.parallel.manifest import (
    CELL_STATES,
    DEFAULT_LEASE_TTL,
    GridManifest,
    _pid_alive,
)

__all__ = [
    "grid_snapshot",
    "render_watch",
    "snapshot_to_prometheus",
    "write_prometheus_textfile",
    "watch_grid",
]

#: Histogram metric names surfaced as dashboard distributions.
_WATCH_HISTOGRAMS = (
    ("worker_queue_wait_seconds", "queue wait"),
    ("worker_cell_seconds", "cell run time"),
)


def _read_json(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (FileNotFoundError, ValueError, OSError):
        return {}
    return doc if isinstance(doc, dict) else {}


def _worker_rows(obs_dir: Optional[Path], heartbeats: dict, now: float) -> list:
    """Per-worker rows joining manifest heartbeats with telemetry sinks.

    A worker appears if either source knows it; rows are keyed by pid
    (telemetry dirs embed the pid in ``fields.worker``).
    """
    rows: dict[int, dict] = {}
    for pid, beat in heartbeats.items():
        try:
            pid = int(pid)
        except (TypeError, ValueError):
            continue
        rows[pid] = {
            "pid": pid,
            "alive": _pid_alive(pid),
            "last_beat_age_s": (
                max(0.0, now - float(beat["t"]))
                if isinstance(beat.get("t"), (int, float)) else None
            ),
            "cell": beat.get("cell"),
            "attempt": beat.get("attempt"),
            "cells_done": 0.0,
            "errors": 0.0,
            "heartbeat_drops": 0.0,
            "mean_cell_s": None,
        }
    if obs_dir is not None:
        for worker_dir in worker_dirs(obs_dir):
            meta = _read_json(worker_dir / "meta.json")
            pid = meta.get("fields", {}).get("worker")
            if not isinstance(pid, int):
                continue
            row = rows.setdefault(
                pid,
                {
                    "pid": pid, "alive": _pid_alive(pid),
                    "last_beat_age_s": None, "cell": None, "attempt": None,
                    "cells_done": 0.0, "errors": 0.0,
                    "heartbeat_drops": 0.0, "mean_cell_s": None,
                },
            )
            metrics = _read_json(worker_dir / "metrics.json")
            # Pool rebuilds leave several sink dirs per pid; sum them.
            row["cells_done"] += float(
                metrics.get("worker_cells_total", {}).get("value", 0.0)
            )
            row["errors"] += float(
                metrics.get("worker_cell_errors_total", {}).get("value", 0.0)
            )
            row["heartbeat_drops"] += float(
                metrics.get("worker_heartbeat_dropped_total", {})
                .get("value", 0.0)
            )
            hist = metrics.get("worker_cell_seconds", {})
            if hist.get("count"):
                total_s = float(hist.get("sum", 0.0))
                count = int(hist["count"])
                prior = row["mean_cell_s"]
                if prior is None:
                    row["mean_cell_s"] = total_s / count
                else:
                    row["mean_cell_s"] = (
                        (prior * row["_mean_n"] + total_s)
                        / (row["_mean_n"] + count)
                    )
                row["_mean_n"] = row.get("_mean_n", 0) + count
    for row in rows.values():
        row.pop("_mean_n", None)
    return [rows[pid] for pid in sorted(rows)]


def _aggregate_worker_metrics(obs_dir: Optional[Path]) -> dict:
    """Sum every ``worker_*`` series across the live worker sinks."""
    if obs_dir is None:
        return {}
    registry = MetricsRegistry()
    for worker_dir in worker_dirs(obs_dir):
        metrics = _read_json(worker_dir / "metrics.json")
        _fold_snapshot(
            registry,
            {
                key: snap for key, snap in metrics.items()
                if key.split("{", 1)[0].startswith("worker_")
            },
        )
    return registry.as_dict()


def _throughput(manifest: GridManifest, now: float) -> dict:
    """Done-cell rate and ETA from the journal's ``done`` timestamps."""
    done_at = sorted(
        c.done_at for c in manifest.cells.values()
        if c.state == "done" and isinstance(c.done_at, (int, float))
    )
    counts = manifest.status_counts()
    remaining = sum(
        counts.get(s, 0) for s in ("pending", "leased", "running", "failed")
    )
    out = {
        "done": counts.get("done", 0),
        "remaining": remaining,
        "cells_per_s": None,
        "eta_s": None,
    }
    if len(done_at) >= 2:
        window = max(now - done_at[0], done_at[-1] - done_at[0], 1e-9)
        rate = (len(done_at) - 1) / window if window > 0 else None
        out["cells_per_s"] = rate
        if rate and remaining:
            out["eta_s"] = remaining / rate
    return out


def grid_snapshot(
    grid_dir: Union[str, Path],
    obs_dir: Optional[Union[str, Path]] = None,
    now: Optional[float] = None,
) -> dict:
    """One dashboard frame as plain data (render/export separately).

    *obs_dir* defaults to ``<grid_dir>/obs`` when that exists; pass it
    explicitly when the run wrote telemetry elsewhere.
    """
    grid_dir = Path(grid_dir)
    now = time.time() if now is None else now
    manifest = GridManifest.load(grid_dir)
    if obs_dir is None and (grid_dir / "obs").is_dir():
        obs_dir = grid_dir / "obs"
    obs_dir = None if obs_dir is None else Path(obs_dir)

    counts = manifest.status_counts()
    failures: dict[str, int] = {}
    retried = 0
    for cell in manifest.cells.values():
        if cell.failures:
            retried += 1
        for failure in cell.failures:
            kind = str(failure.get("kind", "cell-exception"))
            failures[kind] = failures.get(kind, 0) + 1
    quarantined = [
        c.key for c in manifest.cells.values() if c.state == "quarantined"
    ]
    workers = _worker_rows(obs_dir, manifest.worker_heartbeats, now)
    stale = [
        w["pid"] for w in workers
        if w["last_beat_age_s"] is not None
        and w["last_beat_age_s"] > DEFAULT_LEASE_TTL
    ]
    return {
        "at": now,
        "grid_id": manifest.grid_id,
        "grid_dir": str(grid_dir),
        "obs_dir": None if obs_dir is None else str(obs_dir),
        "counts": counts,
        "total": len(manifest.cells),
        "failure_kinds": dict(sorted(failures.items())),
        "cells_retried": retried,
        "quarantined": quarantined,
        "workers": workers,
        "stale_workers": stale,
        "throughput": _throughput(manifest, now),
        "worker_metrics": _aggregate_worker_metrics(obs_dir),
        "damaged_records": manifest.damaged_records,
        "torn_tail": manifest.torn_tail,
    }


# -- rendering ----------------------------------------------------------------


def _bar(fraction: float, width: int) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


def _render_histogram(snap: dict, title: str, width: int = 30) -> list:
    """Text bars for one cumulative-bucket histogram snapshot."""
    buckets = snap.get("buckets") or []
    count = int(snap.get("count", 0))
    if not count:
        return []
    lines = [
        f"  {title}: n={count} mean="
        f"{float(snap.get('sum', 0.0)) / count:.3f}s"
    ]
    previous = 0
    rows = []
    for bucket in buckets:
        cumulative = int(bucket.get("count", 0))
        rows.append((float(bucket.get("le", 0.0)), cumulative - previous))
        previous = cumulative
    overflow = count - previous
    peak = max([n for _, n in rows] + [overflow, 1])
    # Show only the populated band (first..last non-empty bucket).
    populated = [i for i, (_, n) in enumerate(rows) if n]
    if populated:
        for bound, n in rows[populated[0]:populated[-1] + 1]:
            lines.append(
                f"    <= {bound:>8.3f}s {_bar(n / peak, width)} {n}"
            )
    if overflow:
        lines.append(f"    >  last     {_bar(overflow / peak, width)} {overflow}")
    return lines


def render_watch(snapshot: dict, width: int = 40) -> str:
    """Format one :func:`grid_snapshot` frame for a terminal."""
    counts = snapshot["counts"]
    total = snapshot["total"] or 1
    through = snapshot["throughput"]
    lines = [
        f"grid {snapshot['grid_id']}  ({snapshot['grid_dir']})",
        f"cells: {counts.get('done', 0)}/{snapshot['total']} done  "
        f"[{_bar(counts.get('done', 0) / total, width)}]",
    ]
    state_bits = [
        f"{state}={counts[state]}"
        for state in CELL_STATES if counts.get(state)
    ]
    lines.append("  " + ("  ".join(state_bits) if state_bits else "(empty grid)"))
    rate = through["cells_per_s"]
    lines.append(
        "  throughput: "
        + (f"{rate * 60:.1f} cells/min" if rate else "--")
        + f"  eta: {_fmt_duration(through['eta_s'])}"
    )
    if snapshot["cells_retried"] or snapshot["failure_kinds"]:
        kinds = ", ".join(
            f"{kind}={n}" for kind, n in snapshot["failure_kinds"].items()
        )
        lines.append(
            f"  retries: {snapshot['cells_retried']} cells ({kinds})"
        )
    if snapshot["quarantined"]:
        keys = ", ".join(str(k) for k in snapshot["quarantined"][:8])
        more = len(snapshot["quarantined"]) - 8
        lines.append(
            "  quarantined: " + keys + (f" (+{more} more)" if more > 0 else "")
        )
    if snapshot["torn_tail"] or snapshot["damaged_records"]:
        lines.append(
            f"  journal damage: torn_tail={snapshot['torn_tail']} "
            f"damaged_records={snapshot['damaged_records']}"
        )

    workers = snapshot["workers"]
    lines.append(f"workers: {len(workers)}"
                 + (f"  ({len(snapshot['stale_workers'])} stale)"
                    if snapshot["stale_workers"] else ""))
    for row in workers:
        status = "alive" if row["alive"] else "dead"
        if row["pid"] in snapshot["stale_workers"]:
            status = "stale"
        beat = (
            f"beat {_fmt_duration(row['last_beat_age_s'])} ago"
            if row["last_beat_age_s"] is not None else "no heartbeat"
        )
        mean = (
            f"mean {row['mean_cell_s']:.2f}s"
            if row["mean_cell_s"] is not None else "mean --"
        )
        extra = ""
        if row["errors"]:
            extra += f"  errors={row['errors']:.0f}"
        if row["heartbeat_drops"]:
            extra += f"  hb-drops={row['heartbeat_drops']:.0f}"
        lines.append(
            f"  pid {row['pid']:>7d} [{status:^5s}]  "
            f"cells={row['cells_done']:.0f}  {mean}  {beat}{extra}"
        )

    metrics = snapshot["worker_metrics"]
    for name, title in _WATCH_HISTOGRAMS:
        snap = metrics.get(name)
        if isinstance(snap, dict):
            lines.extend(_render_histogram(snap, title))
    return "\n".join(lines) + "\n"


# -- Prometheus textfile export ----------------------------------------------


def snapshot_to_prometheus(snapshot: dict) -> str:
    """The frame as Prometheus text (gauges; textfile-collector ready)."""
    registry = MetricsRegistry()
    for state in CELL_STATES:
        registry.gauge(
            "grid_cells",
            help="grid cells per manifest state",
            labels={"state": state},
        ).set(float(snapshot["counts"].get(state, 0)))
    registry.gauge(
        "grid_cells_enumerated", help="cells enumerated in the manifest"
    ).set(float(snapshot["total"]))
    registry.gauge(
        "grid_workers", help="workers known to the grid (heartbeat or sink)"
    ).set(float(len(snapshot["workers"])))
    registry.gauge(
        "grid_workers_stale",
        help="workers whose last heartbeat exceeded the lease TTL",
    ).set(float(len(snapshot["stale_workers"])))
    rate = snapshot["throughput"]["cells_per_s"]
    if rate is not None:
        registry.gauge(
            "grid_cells_per_second", help="observed done-cell completion rate"
        ).set(rate)
    eta = snapshot["throughput"]["eta_s"]
    if eta is not None:
        registry.gauge(
            "grid_eta_seconds", help="estimated seconds to grid completion",
            unit="seconds",
        ).set(eta)
    for kind, n in snapshot["failure_kinds"].items():
        registry.gauge(
            "grid_cell_failures",
            help="journaled failed attempts by taxonomy kind",
            labels={"kind": kind},
        ).set(float(n))
    _fold_snapshot(registry, snapshot["worker_metrics"])
    return registry.to_prometheus_text()


def write_prometheus_textfile(snapshot: dict, path: Union[str, Path]) -> Path:
    """Atomically write the frame's Prometheus text to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(snapshot_to_prometheus(snapshot))
    os.replace(tmp, path)
    return path


# -- the refresh loop ---------------------------------------------------------


def watch_grid(
    grid_dir: Union[str, Path],
    *,
    obs_dir: Optional[Union[str, Path]] = None,
    once: bool = False,
    interval: float = 2.0,
    prom_path: Optional[Union[str, Path]] = None,
    frames: Optional[int] = None,
    stream=None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
) -> dict:
    """Render the dashboard until done/interrupt; returns the last frame.

    ``once=True`` (or ``frames=1``) renders exactly one frame without
    clearing the screen.  In live mode each refresh clears the terminal
    (ANSI home+clear), re-renders, optionally rewrites the Prometheus
    textfile, and stops on its own when the grid has no non-terminal
    cells left.  *frames* bounds the number of refreshes (testing).
    """
    stream = sys.stdout if stream is None else stream
    rendered = 0
    snapshot: dict = {}
    while True:
        snapshot = grid_snapshot(grid_dir, obs_dir=obs_dir, now=clock())
        text = render_watch(snapshot)
        if not once and rendered:
            stream.write("\x1b[H\x1b[2J")
        stream.write(text)
        stream.flush()
        if prom_path is not None:
            write_prometheus_textfile(snapshot, prom_path)
        rendered += 1
        counts = snapshot["counts"]
        active = sum(
            counts.get(s, 0) for s in ("pending", "leased", "running")
        )
        if once or (frames is not None and rendered >= frames):
            break
        if active == 0:
            break
        sleep(interval)
    return snapshot
