"""Cross-process telemetry: context propagation + the worker-side sink.

The coordinator's :class:`~repro.obs.context.RunContext` cannot cross a
process boundary (it holds live buffers and file handles by design), so
parallel workers were a telemetry black hole.  This module closes it
with two picklable carriers and one worker-side sink:

* :class:`TraceContext` — the causal identity of a unit of work
  (run / grid / cell / attempt / worker ids).  Frozen, tiny, and
  picklable; the coordinator creates one per run, the engine derives a
  child per cell attempt, and every worker-recorded span carries its
  scalar fields in ``attrs`` so the collector can re-parent cell spans
  under the coordinator's grid span.
* :class:`WorkerTelemetryConfig` — what ships through the pool
  initializer: the destination root, run identity, and level.  It is
  derived from the driver's enabled ``RunContext``
  (:meth:`WorkerTelemetryConfig.from_context`) and is ``None`` when
  observability is off — workers then pay exactly one ``is None``
  branch per cell (the zero-overhead contract).
* :class:`WorkerTelemetry` — the per-worker sink a pool worker opens
  once from its config.  It wraps a normal ``RunContext`` writing to
  ``<obs_dir>/workers/<worker-id>/`` in the standard ``repro.obs/1``
  layout, but persists **incrementally and crash-safely**: finished
  spans/events are appended (``O_APPEND``, whole lines only) after
  every cell, and the small ``metrics.json`` / ``meta.json`` rewrites
  go through a same-directory temp file + ``os.replace``.  A worker
  SIGKILL'd mid-cell therefore leaves a schema-valid directory holding
  everything up to its last completed cell.

Determinism contract: nothing here consumes from any seeded NumPy
stream.  Worker ids derive from pid + ``os.urandom`` (pids are recycled
across pool generations; the token keeps a rebuilt worker from
appending into its predecessor's trace), and all timestamps stay
monotonic-clock relative with wall-clock *anchors* recorded only in
``meta.json`` for the collector's skew alignment.
"""

from __future__ import annotations

import binascii
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.obs.context import OBS_FORMAT, RunContext

__all__ = [
    "WORKERS_DIR_NAME",
    "GRID_SPAN_NAME",
    "CELL_SPAN_NAME",
    "TraceContext",
    "WorkerTelemetryConfig",
    "WorkerTelemetry",
]

#: Sub-directory of an observability directory holding per-worker sinks.
WORKERS_DIR_NAME = "workers"

#: Coordinator span wrapping one whole parallel grid execution; the
#: collector re-parents every worker cell span under it.
GRID_SPAN_NAME = "grid.run"

#: Worker span wrapping one cell-body execution.
CELL_SPAN_NAME = "cell.run"


@dataclass(frozen=True)
class TraceContext:
    """The picklable causal identity of one unit of distributed work.

    Attributes
    ----------
    run_id:
        The coordinator run this work belongs to.
    grid_id:
        The durable grid's journaled identity ("" for in-memory grids).
    cell:
        The grid-cell key (JSON scalar) this context is scoped to, or
        ``None`` for run-scoped contexts.
    attempt:
        Which attempt of the cell (0 = not cell-scoped).
    worker:
        The executing worker's pid (``None`` until a worker adopts it).
    """

    run_id: str
    grid_id: str = ""
    cell: object = None
    attempt: int = 0
    worker: Optional[int] = None

    def child(self, **overrides) -> "TraceContext":
        """A derived context with *overrides* applied (frozen-safe)."""
        return replace(self, **overrides)

    def as_attrs(self) -> dict:
        """The non-empty scalar fields, as span/event attributes.

        ``run_id`` is deliberately excluded — it is run-level identity
        already recorded in ``meta.json``, not per-span payload.
        """
        attrs: dict = {}
        if self.grid_id:
            attrs["grid_id"] = self.grid_id
        if self.cell is not None:
            attrs["cell"] = (
                self.cell if isinstance(self.cell, (int, str))
                else str(self.cell)
            )
        if self.attempt:
            attrs["attempt"] = self.attempt
        if self.worker is not None:
            attrs["worker"] = self.worker
        return attrs


@dataclass(frozen=True)
class WorkerTelemetryConfig:
    """What the pool initializer ships to enable worker-side telemetry.

    Frozen and picklable; :meth:`open` is called worker-side, once per
    worker process.
    """

    root: str
    run_id: str
    level: str = "info"
    grid_id: str = ""

    @classmethod
    def from_context(
        cls, obs: Optional[RunContext], grid_id: str = ""
    ) -> Optional["WorkerTelemetryConfig"]:
        """The config for *obs*, or ``None`` when telemetry is off.

        Worker telemetry needs a destination directory: an enabled but
        in-memory context (no ``obs_dir``) stays coordinator-only.
        """
        if obs is None or not obs.enabled or obs.obs_dir is None:
            return None
        return cls(
            root=str(Path(obs.obs_dir) / WORKERS_DIR_NAME),
            run_id=obs.run_id,
            level=obs.level,
            grid_id=grid_id,
        )

    def open(self) -> "WorkerTelemetry":
        """Open this worker's sink (call in the worker process)."""
        return WorkerTelemetry(self)


class WorkerTelemetry:
    """One pool worker's crash-safe observability sink.

    ``obs`` is a real :class:`~repro.obs.context.RunContext`, so the
    cell body's evaluator/algorithm instrumentation works unchanged in
    a worker; :meth:`checkpoint` persists whatever finished since the
    last call.
    """

    def __init__(self, config: WorkerTelemetryConfig) -> None:
        pid = os.getpid()
        # pid + random token: pids are recycled across pool rebuilds,
        # and two tracer incarnations appending into one file would
        # collide on span ids.  os.urandom never touches seeded RNG.
        token = binascii.hexlify(os.urandom(4)).decode("ascii")
        self.worker_id = f"worker-{pid}-{token}"
        self.pid = pid
        self.dir = Path(config.root) / self.worker_id
        self.context = TraceContext(
            run_id=config.run_id, grid_id=config.grid_id, worker=pid
        )
        fields = {"worker": pid, "worker_id": self.worker_id}
        if config.grid_id:
            fields["grid_id"] = config.grid_id
        self.obs = RunContext(
            enabled=True,
            run_id=f"{config.run_id}/{self.worker_id}",
            level=config.level,
            obs_dir=self.dir,
            fields=fields,
        )
        # Spans and events each stamp times against their own epoch
        # sampled at construction (microseconds apart).  Pin the event
        # log to the tracer's epoch so the worker's two channels share
        # exactly one timeline — the collector then needs only the
        # tracer anchor to align both.
        self.obs.events._epoch = self.obs.tracer.epoch_s
        self._flushed_spans = 0
        self._flushed_events = 0
        self._heartbeat_warned = False
        self.dir.mkdir(parents=True, exist_ok=True)
        # Eager creation: a worker killed before its first checkpoint
        # still leaves a complete, schema-valid (if empty) directory.
        (self.dir / "trace.jsonl").touch()
        (self.dir / "events.jsonl").touch()
        self._write_small_files()

    # -- recording helpers ---------------------------------------------------

    def cell_context(self, key, attempt: int) -> TraceContext:
        """The per-cell child context for (*key*, *attempt*)."""
        return self.context.child(cell=key, attempt=attempt)

    def heartbeat_dropped(self, key, attempt: int, exc: OSError) -> None:
        """Record one dropped manifest heartbeat (never silently).

        Every drop increments ``worker_heartbeat_dropped_total``; the
        first drop per worker additionally emits a ``worker.
        heartbeat_dropped`` warning event carrying the errno detail —
        once, not per cell, so a dead filesystem cannot flood the log.
        """
        self.obs.metrics.counter(
            "worker_heartbeat_dropped_total",
            help="manifest running-heartbeat appends that failed in a worker",
        ).inc()
        if not self._heartbeat_warned:
            self._heartbeat_warned = True
            self.obs.event(
                "worker.heartbeat_dropped", level="warning",
                cell=key if isinstance(key, (int, str)) else str(key),
                attempt=attempt, error=f"{type(exc).__name__}: {exc}",
            )

    # -- crash-safe persistence ----------------------------------------------

    def checkpoint(self) -> None:
        """Persist everything recorded since the last checkpoint.

        New spans/events are appended as complete JSONL lines in one
        ``O_APPEND`` write per file; the small ``metrics.json`` /
        ``metrics.prom`` / ``meta.json`` snapshots are rewritten
        atomically (temp + ``os.replace``) so no reader — collector or
        live dashboard — can observe a torn file.
        """
        spans = self.obs.tracer.spans
        if len(spans) > self._flushed_spans:
            self._append_lines(
                self.dir / "trace.jsonl",
                [s.to_doc() for s in spans[self._flushed_spans:]],
            )
            self._flushed_spans = len(spans)
        events = self.obs.events.events
        if len(events) > self._flushed_events:
            self._append_lines(
                self.dir / "events.jsonl", events[self._flushed_events:]
            )
            self._flushed_events = len(events)
        self._write_small_files()

    @staticmethod
    def _append_lines(path: Path, docs: list) -> None:
        data = "".join(
            json.dumps(doc, allow_nan=False) + "\n" for doc in docs
        ).encode("utf-8")
        fd = os.open(str(path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    @staticmethod
    def _replace(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def _write_small_files(self) -> None:
        obs = self.obs
        self._replace(
            self.dir / "metrics.json",
            json.dumps(obs.metrics.as_dict(), indent=2, allow_nan=False)
            + "\n",
        )
        self._replace(
            self.dir / "metrics.prom", obs.metrics.to_prometheus_text()
        )
        self._replace(
            self.dir / "meta.json",
            json.dumps(
                {
                    "format": OBS_FORMAT,
                    "run_id": obs.run_id,
                    "level": obs.level,
                    "fields": obs.fields,
                    "spans": self._flushed_spans,
                    "events": self._flushed_events,
                    "clock": {
                        "monotonic_s": obs.tracer.epoch_s,
                        "unix_s": obs.tracer.anchor_unix_s,
                    },
                },
                indent=2,
                allow_nan=False,
            )
            + "\n",
        )
