"""Run-scoped tracing: nestable spans with a JSONL export.

A :class:`Tracer` records :class:`Span`\\ s — named, timed regions of
one run with parent/child structure.  Two recording styles cover every
call site in the framework:

* ``with tracer.span("checkpoint.save", label=...):`` — wrap a block;
  the span's duration is measured by the tracer and the span nests
  under whatever span is currently open;
* ``tracer.record("ga.stage.evaluate", seconds, generation=g)`` — the
  caller already measured the duration (the engine's hot loop times its
  stages with two ``perf_counter`` calls regardless of observability);
  the tracer just files the finished span under the open parent.

All timestamps are seconds relative to the tracer's epoch (its creation
``perf_counter``), so exported traces are machine-relocatable and never
consult the wall clock or any RNG — enabling tracing cannot perturb a
seeded run's stochastic streams.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Optional, Union

__all__ = ["Span", "Tracer"]


class Span:
    """One finished (or open) timed region of a run."""

    __slots__ = (
        "span_id", "parent_id", "name", "start_s", "duration_s", "status",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_s: float,
        duration_s: float,
        status: str,
        attrs: dict,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s
        self.status = status
        self.attrs = attrs

    def to_doc(self) -> dict:
        """JSONL-ready document (one trace-file line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
        }


class _OpenSpan:
    """Context manager for one in-flight span (``Tracer.span``)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        self._span_id = self._tracer._open()
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = self._tracer._clock() - self._t0
        self._tracer._close(
            self._span_id, self._name, self._t0, duration,
            "error" if exc_type is not None else "ok", self._attrs,
        )


class Tracer:
    """Collects one run's spans in memory; exports JSONL and a summary.

    Single-threaded by design (one tracer per process, like the engine
    and evaluator it instruments); the open-span stack is plain list
    push/pop.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        #: Wall-clock instant paired with ``_epoch``.  Never used for
        #: span timestamps (those stay epoch-relative and monotonic);
        #: it exists so traces from different processes can be aligned
        #: onto one timeline by the distributed-trace collector.
        self.anchor_unix_s = time.time()
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 1

    @property
    def epoch_s(self) -> float:
        """The clock reading all span timestamps are relative to."""
        return self._epoch

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs) -> _OpenSpan:
        """Context manager: measure a block as one span."""
        return _OpenSpan(self, name, attrs)

    def record(self, name: str, seconds: float, **attrs) -> None:
        """File an externally timed span ending now, under the open parent."""
        end = self._clock()
        parent = self._stack[-1] if self._stack else None
        self.spans.append(
            Span(
                span_id=self._next_id,
                parent_id=parent,
                name=name,
                start_s=(end - seconds) - self._epoch,
                duration_s=seconds,
                status="ok",
                attrs=attrs,
            )
        )
        self._next_id += 1

    def _open(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        self._stack.append(span_id)
        return span_id

    def _close(
        self,
        span_id: int,
        name: str,
        t0: float,
        duration: float,
        status: str,
        attrs: dict,
    ) -> None:
        self._stack.pop()
        parent = self._stack[-1] if self._stack else None
        self.spans.append(
            Span(
                span_id=span_id,
                parent_id=parent,
                name=name,
                start_s=t0 - self._epoch,
                duration_s=duration,
                status=status,
                attrs=attrs,
            )
        )

    # -- export --------------------------------------------------------------

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write every finished span as one JSON object per line."""
        with open(path, "w") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_doc(), allow_nan=False) + "\n")

    def totals_by_name(self) -> dict[str, tuple[float, int]]:
        """``{span name: (total seconds, count)}``, sorted by name."""
        agg: dict[str, tuple[float, int]] = {}
        for span in self.spans:
            total, count = agg.get(span.name, (0.0, 0))
            agg[span.name] = (total + span.duration_s, count + 1)
        return dict(sorted(agg.items()))

    def flame_summary(self, width: int = 60) -> str:
        """Text flame summary: per-name totals as proportional bars."""
        return render_flame(
            [s.to_doc() for s in self.spans], width=width
        )


def render_flame(span_docs: list[dict], width: int = 60) -> str:
    """Render span documents as a text flame summary.

    Spans are grouped by name, sorted by total time descending, each
    with a bar proportional to its share of the largest total.  Module
    function so the ``repro-analyze trace`` CLI can render a flame from
    a trace file without reconstructing a :class:`Tracer`.
    """
    agg: dict[str, tuple[float, int]] = {}
    for doc in span_docs:
        total, count = agg.get(doc["name"], (0.0, 0))
        agg[doc["name"]] = (total + doc["duration_s"], count + 1)
    if not agg:
        return "(no spans recorded)"
    ordered = sorted(agg.items(), key=lambda kv: (-kv[1][0], kv[0]))
    top = ordered[0][1][0] or 1.0
    name_w = max(len(name) for name, _ in ordered)
    lines = []
    for name, (total, count) in ordered:
        bar = "#" * max(1, int(round(width * total / top)))
        lines.append(
            f"{name.ljust(name_w)}  {total * 1000.0:10.3f} ms  "
            f"x{count:<6d} {bar}"
        )
    return "\n".join(lines)
