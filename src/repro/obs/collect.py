"""Merge per-worker telemetry into one causally-linked trace.

A parallel run with worker telemetry enabled leaves this layout behind::

    <obs_dir>/                  coordinator artifacts (repro.obs/1)
    <obs_dir>/workers/worker-<pid>-<token>/   one sink per pool worker
    <obs_dir>/merged/           <- this module's output

:func:`merge_obs_dir` folds the worker directories and the coordinator
trace into one ``repro.obs/1`` directory that the existing schema
validators, ``repro-analyze trace``, and the grid dashboard all consume
unchanged:

* **Causal linking** — worker span ids are re-based into one id space
  (per-file offsets, so parent references keep resolving), every worker
  span/event gains a ``worker`` attribute, and each worker's top-level
  ``cell.run`` spans are re-parented under the coordinator's
  ``grid.run`` span — the merged trace is one tree from grid to cell to
  GA stage, whichever process recorded each piece.
* **Clock alignment** — every process records a ``(monotonic, unix)``
  anchor pair in its ``meta.json``.  Worker timestamps are shifted by
  the difference of *monotonic* anchors (``perf_counter`` reads
  ``CLOCK_MONOTONIC``, which is system-wide on Linux, so same-host
  skew cancels exactly); the unix anchors are the documented fallback
  for traces recorded on different hosts.
* **Metric aggregation** — counters and histograms sum across
  processes (histograms bucket-wise, de-cumulated first), gauges merge
  by maximum (they are high-water readings: peak RSS, front size).
  Worker-scoped series (``worker_*``) are additionally re-emitted with
  a ``worker="<pid>"`` label so per-worker throughput survives the
  aggregation — including ``worker_heartbeat_dropped_total``, the
  heartbeat-loss counter that used to vanish in a bare ``except``.

Merging is a pure read-transform-write pass: re-running it (every
:meth:`RunContext.flush` does) recomputes ``merged/`` from scratch.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import ObservabilityError
from repro.obs.context import OBS_FORMAT
from repro.obs.distributed import (
    CELL_SPAN_NAME,
    GRID_SPAN_NAME,
    WORKERS_DIR_NAME,
)
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MERGED_DIR_NAME",
    "GRID_SPAN_NAME",
    "CELL_SPAN_NAME",
    "merge_obs_dir",
    "worker_dirs",
]

#: Sub-directory of an observability directory holding the merged view.
MERGED_DIR_NAME = "merged"


def worker_dirs(obs_dir: Union[str, Path]) -> list[Path]:
    """The per-worker sink directories under *obs_dir*, sorted by name."""
    root = Path(obs_dir) / WORKERS_DIR_NAME
    if not root.is_dir():
        return []
    return sorted(
        p for p in root.iterdir()
        if p.is_dir() and (p / "meta.json").exists()
    )


def _read_jsonl(path: Path) -> tuple[list[dict], int]:
    """Parse a JSONL file, skipping damaged lines (crash-tolerant read)."""
    docs: list[dict] = []
    damaged = 0
    if not path.exists():
        return docs, damaged
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            damaged += 1
            continue
        if isinstance(doc, dict):
            docs.append(doc)
        else:
            damaged += 1
    return docs, damaged


def _load_dir(run_dir: Path) -> dict:
    meta_path = run_dir / "meta.json"
    try:
        meta = json.loads(meta_path.read_text())
    except (FileNotFoundError, ValueError) as exc:
        raise ObservabilityError(
            f"{run_dir} is not a readable observability directory: {exc}"
        ) from exc
    spans, span_damage = _read_jsonl(run_dir / "trace.jsonl")
    events, event_damage = _read_jsonl(run_dir / "events.jsonl")
    try:
        metrics = json.loads((run_dir / "metrics.json").read_text())
    except (FileNotFoundError, ValueError):
        metrics = {}
    return {
        "meta": meta,
        "spans": spans,
        "events": events,
        "metrics": metrics if isinstance(metrics, dict) else {},
        "damaged": span_damage + event_damage,
    }


def _clock_delta(worker_meta: dict, coord_meta: dict) -> float:
    """Seconds to add to worker timestamps to land on the coordinator
    timeline (monotonic anchors preferred, unix anchors the fallback)."""
    w = worker_meta.get("clock") or {}
    c = coord_meta.get("clock") or {}
    for key in ("monotonic_s", "unix_s"):
        if isinstance(w.get(key), (int, float)) and isinstance(
            c.get(key), (int, float)
        ):
            return float(w[key]) - float(c[key])
    return 0.0


def _fold_snapshot(
    registry: MetricsRegistry, snapshot: dict, labels: Optional[dict] = None
) -> None:
    """Fold one ``metrics.json`` snapshot into *registry* (sum/max)."""
    for key, snap in snapshot.items():
        if not isinstance(snap, dict):
            continue
        name = key.split("{", 1)[0]
        merged_labels = dict(snap.get("labels") or {})
        if labels:
            merged_labels.update(labels)
        kind = snap.get("type")
        help_ = snap.get("help", "")
        unit = snap.get("unit", "")
        if kind == "counter":
            registry.counter(
                name, help=help_, unit=unit, labels=merged_labels or None
            ).inc(float(snap.get("value", 0.0)))
        elif kind == "gauge":
            gauge = registry.gauge(
                name, help=help_, unit=unit, labels=merged_labels or None
            )
            gauge.set(max(gauge.value, float(snap.get("value", 0.0))))
        elif kind == "histogram":
            buckets = snap.get("buckets") or []
            bounds = tuple(float(b.get("le", 0.0)) for b in buckets)
            if not bounds:
                continue
            hist = registry.histogram(
                name, buckets=bounds, help=help_, unit=unit,
                labels=merged_labels or None,
            )
            if hist.buckets != bounds:
                # Conflicting bucket layouts cannot be summed bucket-wise;
                # fold into sum/count only (the overflow bucket).
                hist.counts[-1] += int(snap.get("count", 0))
            else:
                previous = 0
                for i, bucket in enumerate(buckets):
                    cumulative = int(bucket.get("count", 0))
                    hist.counts[i] += cumulative - previous
                    previous = cumulative
                hist.counts[-1] += int(snap.get("count", 0)) - previous
            hist.sum += float(snap.get("sum", 0.0))
            hist.count += int(snap.get("count", 0))


def merge_obs_dir(
    obs_dir: Union[str, Path], out: Optional[Union[str, Path]] = None
) -> Optional[Path]:
    """Merge *obs_dir*'s worker sinks with its coordinator trace.

    Writes the merged ``repro.obs/1`` directory (default
    ``<obs_dir>/merged/``) and returns its path; returns ``None`` when
    there are no worker directories to merge (serial or dark run).
    Raises :class:`~repro.errors.ObservabilityError` when *obs_dir*
    itself is not a flushed observability directory.
    """
    obs_dir = Path(obs_dir)
    workers = worker_dirs(obs_dir)
    if not workers:
        return None
    out = obs_dir / MERGED_DIR_NAME if out is None else Path(out)
    coord = _load_dir(obs_dir)

    spans: list[dict] = [dict(span) for span in coord["spans"]]
    events: list[dict] = [dict(event) for event in coord["events"]]
    next_offset = max(
        (int(s["span_id"]) for s in spans if isinstance(s.get("span_id"), int)),
        default=0,
    )
    grid_span_id: Optional[int] = None
    for span in spans:
        if span.get("name") == GRID_SPAN_NAME:
            grid_span_id = span.get("span_id")

    registry = MetricsRegistry()
    _fold_snapshot(registry, coord["metrics"])

    damaged = coord["damaged"]
    worker_names: list[str] = []
    for worker_dir in workers:
        data = _load_dir(worker_dir)
        damaged += data["damaged"]
        worker_names.append(worker_dir.name)
        pid = data["meta"].get("fields", {}).get("worker")
        delta = _clock_delta(data["meta"], coord["meta"])
        offset = next_offset
        max_id = 0
        for doc in data["spans"]:
            span = dict(doc)
            span_id = span.get("span_id")
            if isinstance(span_id, int):
                max_id = max(max_id, span_id)
                span["span_id"] = span_id + offset
            parent = span.get("parent_id")
            if isinstance(parent, int):
                span["parent_id"] = parent + offset
            elif span.get("name") == CELL_SPAN_NAME and grid_span_id is not None:
                span["parent_id"] = grid_span_id
            if isinstance(span.get("start_s"), (int, float)):
                span["start_s"] = float(span["start_s"]) + delta
            attrs = dict(span.get("attrs") or {})
            if pid is not None:
                attrs.setdefault("worker", pid)
            span["attrs"] = attrs
            spans.append(span)
        next_offset = offset + max_id
        for doc in data["events"]:
            event = dict(doc)
            if isinstance(event.get("t_s"), (int, float)):
                event["t_s"] = float(event["t_s"]) + delta
            fields = dict(event.get("fields") or {})
            if pid is not None:
                fields.setdefault("worker", pid)
            event["fields"] = fields
            events.append(event)
        _fold_snapshot(registry, data["metrics"])
        # Worker-scoped series keep a per-worker labeled copy so the
        # aggregate does not erase the per-worker breakdown.
        if pid is not None:
            _fold_snapshot(
                registry,
                {
                    key: snap
                    for key, snap in data["metrics"].items()
                    if key.split("{", 1)[0].startswith("worker_")
                },
                labels={"worker": str(pid)},
            )

    # The stable multi-process ordering: (start, worker, span id) for
    # spans, (time, worker) for events — the events file additionally
    # *must* be time-sorted for the schema validator's monotonicity
    # check to hold across processes.
    spans.sort(
        key=lambda s: (
            float(s.get("start_s", 0.0)),
            str(s.get("attrs", {}).get("worker", "")),
            int(s.get("span_id", 0)),
        )
    )
    events.sort(
        key=lambda e: (
            float(e.get("t_s", 0.0)),
            str(e.get("fields", {}).get("worker", "")),
        )
    )

    out.mkdir(parents=True, exist_ok=True)
    with open(out / "trace.jsonl", "w") as fh:
        for span in spans:
            fh.write(json.dumps(span, allow_nan=False) + "\n")
    with open(out / "events.jsonl", "w") as fh:
        for event in events:
            fh.write(json.dumps(event, allow_nan=False) + "\n")
    (out / "metrics.json").write_text(
        json.dumps(registry.as_dict(), indent=2, allow_nan=False) + "\n"
    )
    (out / "metrics.prom").write_text(registry.to_prometheus_text())
    meta = {
        "format": OBS_FORMAT,
        "run_id": coord["meta"].get("run_id", "merged"),
        "level": coord["meta"].get("level", "info"),
        "fields": {
            **coord["meta"].get("fields", {}),
            "merged": True,
            "workers": len(worker_names),
        },
        "spans": len(spans),
        "events": len(events),
        "clock": coord["meta"].get("clock", {}),
        "worker_dirs": worker_names,
        "damaged_lines": damaged,
    }
    (out / "meta.json").write_text(
        json.dumps(meta, indent=2, allow_nan=False) + "\n"
    )
    return out
