"""Schema validation for recorded observability artifacts.

Hand-rolled (dependency-free) structural checks over the files a
flushed :class:`~repro.obs.context.RunContext` leaves behind.  CI runs
these against a tiny instrumented run so a drive-by change to a span or
event field breaks loudly instead of silently producing trace files the
``repro-analyze trace`` CLI can no longer read.

Every validator returns a list of human-readable problems (empty =
valid); :func:`check_run_dir` raises
:class:`~repro.errors.ObservabilityError` with all problems joined.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ObservabilityError
from repro.obs.events import LEVELS

__all__ = [
    "validate_trace_file",
    "validate_events_file",
    "validate_metrics_file",
    "validate_meta_file",
    "validate_run_dir",
    "check_run_dir",
]

_SPAN_KEYS = {
    "span_id": int,
    "parent_id": (int, type(None)),
    "name": str,
    "start_s": (int, float),
    "duration_s": (int, float),
    "status": str,
    "attrs": dict,
}
_EVENT_KEYS = {
    "t_s": (int, float),
    "level": str,
    "event": str,
    "fields": dict,
}
_METRIC_TYPES = ("counter", "gauge", "histogram")


def _check_doc(doc: object, spec: dict, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"{where}: expected an object, got {type(doc).__name__}"]
    for key, types in spec.items():
        if key not in doc:
            problems.append(f"{where}: missing key {key!r}")
        elif not isinstance(doc[key], types):
            problems.append(
                f"{where}: key {key!r} has type "
                f"{type(doc[key]).__name__}, expected {types}"
            )
    for key in doc:
        if key not in spec:
            problems.append(f"{where}: unexpected key {key!r}")
    return problems


def _iter_jsonl(path: Path) -> tuple[list[tuple[int, object]], list[str]]:
    docs: list[tuple[int, object]] = []
    problems: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            docs.append((lineno, json.loads(line)))
        except ValueError as exc:
            problems.append(f"{path.name}:{lineno}: not valid JSON ({exc})")
    return docs, problems


def validate_trace_file(path: Union[str, Path]) -> list[str]:
    """Problems with a ``trace.jsonl`` file (empty list = valid)."""
    path = Path(path)
    docs, problems = _iter_jsonl(path)
    seen_ids: set[int] = set()
    for lineno, doc in docs:
        where = f"{path.name}:{lineno}"
        problems.extend(_check_doc(doc, _SPAN_KEYS, where))
        if not isinstance(doc, dict):
            continue
        span_id = doc.get("span_id")
        if isinstance(span_id, int):
            if span_id in seen_ids:
                problems.append(f"{where}: duplicate span_id {span_id}")
            seen_ids.add(span_id)
        if isinstance(doc.get("duration_s"), (int, float)) and doc["duration_s"] < 0:
            problems.append(f"{where}: negative duration_s")
        if doc.get("status") not in (None, "ok", "error"):
            problems.append(f"{where}: status must be 'ok' or 'error'")
    # Parent references must resolve within the file.
    for lineno, doc in docs:
        if isinstance(doc, dict) and isinstance(doc.get("parent_id"), int):
            if doc["parent_id"] not in seen_ids:
                problems.append(
                    f"{path.name}:{lineno}: parent_id {doc['parent_id']} "
                    "does not reference any span in this trace"
                )
    return problems


def validate_events_file(path: Union[str, Path]) -> list[str]:
    """Problems with an ``events.jsonl`` file (empty list = valid)."""
    path = Path(path)
    docs, problems = _iter_jsonl(path)
    last_t = None
    for lineno, doc in docs:
        where = f"{path.name}:{lineno}"
        problems.extend(_check_doc(doc, _EVENT_KEYS, where))
        if not isinstance(doc, dict):
            continue
        if isinstance(doc.get("level"), str) and doc["level"] not in LEVELS:
            problems.append(f"{where}: unknown level {doc['level']!r}")
        t = doc.get("t_s")
        if isinstance(t, (int, float)):
            if last_t is not None and t < last_t:
                problems.append(f"{where}: t_s went backwards")
            last_t = t
    return problems


def validate_metrics_file(path: Union[str, Path]) -> list[str]:
    """Problems with a ``metrics.json`` snapshot (empty list = valid)."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{path.name}: not valid JSON ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path.name}: expected an object of metrics"]
    problems: list[str] = []
    for name, snap in doc.items():
        where = f"{path.name}: metric {name!r}"
        if not isinstance(snap, dict):
            problems.append(f"{where}: expected an object")
            continue
        kind = snap.get("type")
        if kind not in _METRIC_TYPES:
            problems.append(f"{where}: unknown type {kind!r}")
            continue
        if kind in ("counter", "gauge"):
            if not isinstance(snap.get("value"), (int, float)):
                problems.append(f"{where}: missing numeric 'value'")
            if kind == "counter" and isinstance(snap.get("value"), (int, float)) \
                    and snap["value"] < 0:
                problems.append(f"{where}: counter value is negative")
        else:
            buckets = snap.get("buckets")
            if not isinstance(buckets, list):
                problems.append(f"{where}: missing 'buckets' list")
            else:
                last = -1
                for bucket in buckets:
                    if (
                        not isinstance(bucket, dict)
                        or not isinstance(bucket.get("le"), (int, float))
                        or not isinstance(bucket.get("count"), int)
                    ):
                        problems.append(f"{where}: malformed bucket {bucket!r}")
                        break
                    if bucket["count"] < last:
                        problems.append(
                            f"{where}: bucket counts are not cumulative"
                        )
                        break
                    last = bucket["count"]
            if not isinstance(snap.get("count"), int):
                problems.append(f"{where}: missing integer 'count'")
    return problems


def validate_meta_file(path: Union[str, Path]) -> list[str]:
    """Problems with a ``meta.json`` file (empty list = valid)."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{path.name}: not valid JSON ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path.name}: expected an object"]
    problems: list[str] = []
    from repro.obs.context import OBS_FORMAT

    if doc.get("format") != OBS_FORMAT:
        problems.append(
            f"{path.name}: format {doc.get('format')!r} != {OBS_FORMAT!r}"
        )
    if not isinstance(doc.get("run_id"), str) or not doc.get("run_id"):
        problems.append(f"{path.name}: missing run_id")
    if doc.get("level") not in LEVELS:
        problems.append(f"{path.name}: unknown level {doc.get('level')!r}")
    return problems


def validate_run_dir(run_dir: Union[str, Path]) -> list[str]:
    """All problems across a flushed observability directory."""
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        return [f"{run_dir} is not a directory"]
    problems: list[str] = []
    checks = {
        "meta.json": validate_meta_file,
        "trace.jsonl": validate_trace_file,
        "events.jsonl": validate_events_file,
        "metrics.json": validate_metrics_file,
    }
    for name, validator in checks.items():
        target = run_dir / name
        if not target.exists():
            problems.append(f"missing {name}")
        else:
            problems.extend(validator(target))
    return problems


def check_run_dir(run_dir: Union[str, Path]) -> None:
    """Raise :class:`~repro.errors.ObservabilityError` on any problem."""
    problems = validate_run_dir(run_dir)
    if problems:
        raise ObservabilityError(
            f"observability directory {run_dir} failed validation:\n  "
            + "\n  ".join(problems)
        )
