"""A registry of counters, gauges, and histograms.

Instruments are registered (get-or-create) by name; re-registering a
name under a different instrument type raises
:class:`~repro.errors.ObservabilityError` — silent type drift would
make dashboards lie.  Exports are deterministic (name-sorted) so
metrics snapshots diff cleanly across runs:

* :meth:`MetricsRegistry.as_dict` — a JSON-ready snapshot;
* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples, histograms with
  cumulative ``le`` buckets), so a scrape endpoint or a push gateway
  can serve paper-scale campaign metrics without new dependencies.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "series_key"]

#: Legal Prometheus metric names (the exposition-format grammar).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Legal Prometheus label names (no colons, unlike metric names).
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text format.

    Backslash, double quote, and newline are the three characters the
    exposition format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus exposition grammar)"
        )
    return name


def _normalize_labels(
    labels: Optional[Mapping[str, object]],
) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    pairs = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ObservabilityError(
                f"invalid label name {key!r}: must match "
                "[a-zA-Z_][a-zA-Z0-9_]*"
            )
        pairs.append((key, str(labels[key])))
    return tuple(pairs)


def _render_labels(pairs: Sequence[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + inner + "}"


def series_key(name: str, labels: Optional[Mapping[str, object]] = None) -> str:
    """The canonical series identity: ``name`` or ``name{k="v",...}``.

    Label pairs are name-sorted and values escaped exactly as the
    Prometheus text export renders them, so JSON snapshot keys and
    ``.prom`` sample lines agree byte-for-byte.
    """
    return _validate_name(name) + _render_labels(_normalize_labels(labels))

#: Default histogram bucket upper bounds (seconds-flavoured: from 100 µs
#: to ~100 s in half-decade steps — covers fsync latencies through
#: full-generation times).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "unit", "labels", "value")

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Sequence[tuple[str, str]] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.labels = tuple(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the total."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-ready state."""
        snap = {"type": "counter", "help": self.help, "unit": self.unit,
                "value": self.value}
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class Gauge:
    """A value that goes up and down (front size, RSS, hit rate)."""

    __slots__ = ("name", "help", "unit", "labels", "value")

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Sequence[tuple[str, str]] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.labels = tuple(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by *amount* (may be negative)."""
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-ready state."""
        snap = {"type": "gauge", "help": self.help, "unit": self.unit,
                "value": self.value}
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class Histogram:
    """A distribution summarized by cumulative-style buckets.

    Bucket counts are stored per-interval and cumulated at export (the
    Prometheus convention); ``sum``/``count`` give the mean.
    """

    __slots__ = (
        "name", "help", "unit", "labels", "buckets", "counts", "sum", "count",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        unit: str = "",
        labels: Sequence[tuple[str, str]] = (),
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly increasing; "
                f"got {list(buckets)}"
            )
        self.name = name
        self.help = help
        self.unit = unit
        self.labels = tuple(labels)
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(
                f"histogram {self.name!r} cannot observe NaN"
            )
        i = 0
        for bound in self.buckets:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict:
        """JSON-ready state (cumulative bucket counts, Prometheus-style)."""
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            cumulative.append({"le": bound, "count": running})
        snap = {
            "type": "histogram",
            "help": self.help,
            "unit": self.unit,
            "buckets": cumulative,
            "sum": self.sum,
            "count": self.count,
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class MetricsRegistry:
    """Named instruments with get-or-create registration.

    Instruments may carry labels (``labels={"worker": "1234"}``): each
    distinct (name, label set) pair is its own series, but every series
    of one name must share one instrument type.  Metric and label names
    are validated against the Prometheus grammar at registration, and
    label values are escaped on export — so a merged grid snapshot can
    key per-worker series without ever emitting an unscrapeable file.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._types: dict[str, type] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get_or_create(
        self,
        cls,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        **kwargs,
    ):
        pairs = _normalize_labels(labels)
        key = _validate_name(name) + _render_labels(pairs)
        registered = self._types.get(name)
        if registered is not None and registered is not cls:
            raise ObservabilityError(
                f"metric {name!r} is already registered as "
                f"{registered.__name__}, not {cls.__name__}"
            )
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels=pairs, **kwargs)
            self._instruments[key] = instrument
            self._types[name] = cls
        return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Counter:
        """The counter *name* (created on first use)."""
        return self._get_or_create(
            Counter, name, labels=labels, help=help, unit=unit
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Gauge:
        """The gauge *name* (created on first use)."""
        return self._get_or_create(
            Gauge, name, labels=labels, help=help, unit=unit
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        unit: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Histogram:
        """The histogram *name* (created on first use)."""
        return self._get_or_create(
            Histogram, name, labels=labels, buckets=buckets, help=help,
            unit=unit,
        )

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        """Name-sorted JSON-ready snapshot of every instrument."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self, path: Union[str, Path]) -> None:
        """Write the snapshot as a JSON document."""
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, allow_nan=False) + "\n"
        )

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (series-key-sorted).

        ``# HELP`` / ``# TYPE`` headers are emitted once per metric
        name (from its first series); each labeled series contributes
        its own sample lines with escaped label values.
        """
        lines: list[str] = []
        headered: set[str] = set()
        ordered = sorted(
            self._instruments.values(), key=lambda i: (i.name, i.labels)
        )
        # Help may be supplied on any one series of a name (get-or-create
        # call sites usually pass it only on first registration).
        helps: dict[str, str] = {}
        for instrument in ordered:
            if instrument.help:
                helps.setdefault(instrument.name, instrument.help)
        for instrument in ordered:
            name = instrument.name
            labels = _render_labels(instrument.labels)
            if name not in headered:
                headered.add(name)
                if helps.get(name):
                    lines.append(f"# HELP {name} {helps[name]}")
                if isinstance(instrument, Counter):
                    lines.append(f"# TYPE {name} counter")
                elif isinstance(instrument, Gauge):
                    lines.append(f"# TYPE {name} gauge")
                else:
                    lines.append(f"# TYPE {name} histogram")
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(f"{name}{labels} {_fmt(instrument.value)}")
            else:
                extra = "," + labels[1:-1] if labels else ""
                running = 0
                for bound, count in zip(instrument.buckets, instrument.counts):
                    running += count
                    lines.append(
                        f'{name}_bucket{{le="{_fmt(bound)}"{extra}}} {running}'
                    )
                lines.append(
                    f'{name}_bucket{{le="+Inf"{extra}}} {instrument.count}'
                )
                lines.append(f"{name}_sum{labels} {_fmt(instrument.sum)}")
                lines.append(f"{name}_count{labels} {instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing .0."""
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)
