"""A registry of counters, gauges, and histograms.

Instruments are registered (get-or-create) by name; re-registering a
name under a different instrument type raises
:class:`~repro.errors.ObservabilityError` — silent type drift would
make dashboards lie.  Exports are deterministic (name-sorted) so
metrics snapshots diff cleanly across runs:

* :meth:`MetricsRegistry.as_dict` — a JSON-ready snapshot;
* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples, histograms with
  cumulative ``le`` buckets), so a scrape endpoint or a push gateway
  can serve paper-scale campaign metrics without new dependencies.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (seconds-flavoured: from 100 µs
#: to ~100 s in half-decade steps — covers fsync latencies through
#: full-generation times).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "unit", "value")

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the total."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"type": "counter", "help": self.help, "unit": self.unit,
                "value": self.value}


class Gauge:
    """A value that goes up and down (front size, RSS, hit rate)."""

    __slots__ = ("name", "help", "unit", "value")

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by *amount* (may be negative)."""
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"type": "gauge", "help": self.help, "unit": self.unit,
                "value": self.value}


class Histogram:
    """A distribution summarized by cumulative-style buckets.

    Bucket counts are stored per-interval and cumulated at export (the
    Prometheus convention); ``sum``/``count`` give the mean.
    """

    __slots__ = ("name", "help", "unit", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        unit: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly increasing; "
                f"got {list(buckets)}"
            )
        self.name = name
        self.help = help
        self.unit = unit
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(
                f"histogram {self.name!r} cannot observe NaN"
            )
        i = 0
        for bound in self.buckets:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict:
        """JSON-ready state (cumulative bucket counts, Prometheus-style)."""
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            cumulative.append({"le": bound, "count": running})
        return {
            "type": "histogram",
            "help": self.help,
            "unit": self.unit,
            "buckets": cumulative,
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named instruments with get-or-create registration."""

    def __init__(self) -> None:
        self._instruments: dict[str, Union[Counter, Gauge, Histogram]] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get_or_create(self, cls, name: str, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ObservabilityError(
                f"metric {name!r} is already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        """The counter *name* (created on first use)."""
        return self._get_or_create(Counter, name, help=help, unit=unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        """The gauge *name* (created on first use)."""
        return self._get_or_create(Gauge, name, help=help, unit=unit)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        unit: str = "",
    ) -> Histogram:
        """The histogram *name* (created on first use)."""
        return self._get_or_create(
            Histogram, name, buckets=buckets, help=help, unit=unit
        )

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        """Name-sorted JSON-ready snapshot of every instrument."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self, path: Union[str, Path]) -> None:
        """Write the snapshot as a JSON document."""
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, allow_nan=False) + "\n"
        )

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (name-sorted)."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_fmt(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_fmt(instrument.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                running = 0
                for bound, count in zip(instrument.buckets, instrument.counts):
                    running += count
                    lines.append(
                        f'{name}_bucket{{le="{_fmt(bound)}"}} {running}'
                    )
                lines.append(
                    f'{name}_bucket{{le="+Inf"}} {instrument.count}'
                )
                lines.append(f"{name}_sum {_fmt(instrument.sum)}")
                lines.append(f"{name}_count {instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing .0."""
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)
