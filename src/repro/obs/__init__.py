"""Unified observability: run-scoped tracing, metrics, and event logs.

The subsystem is dependency-free and zero-overhead-by-default: every
instrumented layer accepts an optional
:class:`~repro.obs.context.RunContext` and guards all recording behind
one ``if obs.enabled`` branch, so dark runs pay a single predicate.
Enabling observability never touches any seeded RNG stream — fronts and
checkpoints stay bit-identical with it on or off.

Layout:

* :mod:`repro.obs.context` — :class:`RunContext` (the facade all layers
  accept) and the shared :data:`NULL_CONTEXT`;
* :mod:`repro.obs.trace` — :class:`Span` / :class:`Tracer`, JSONL
  export, text flame summary;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters /
  gauges / histograms with JSON and Prometheus-text exporters;
* :mod:`repro.obs.events` — leveled structured :class:`EventLog`;
* :mod:`repro.obs.schema` — validators for the on-disk artifacts;
* :mod:`repro.obs.report` — the ``repro-analyze trace`` summary
  renderer;
* :mod:`repro.obs.distributed` — picklable :class:`TraceContext` /
  :class:`WorkerTelemetryConfig` propagation plus the crash-safe
  per-worker :class:`WorkerTelemetry` sink;
* :mod:`repro.obs.collect` — :func:`merge_obs_dir`, folding worker
  sinks and the coordinator trace into one causally-linked trace;
* :mod:`repro.obs.watch` — the live ``repro-analyze grid watch``
  dashboard over a durable grid's journal + telemetry.

See ``docs/observability.md`` for the span taxonomy, metric names, and
event schema.
"""

from repro.obs.collect import merge_obs_dir, worker_dirs
from repro.obs.context import NULL_CONTEXT, RunContext
from repro.obs.distributed import (
    TraceContext,
    WorkerTelemetry,
    WorkerTelemetryConfig,
)
from repro.obs.events import EventLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import trace_report
from repro.obs.schema import check_run_dir, validate_run_dir
from repro.obs.trace import Span, Tracer

__all__ = [
    "RunContext",
    "NULL_CONTEXT",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "TraceContext",
    "WorkerTelemetry",
    "WorkerTelemetryConfig",
    "merge_obs_dir",
    "worker_dirs",
    "trace_report",
    "validate_run_dir",
    "check_run_dir",
]
