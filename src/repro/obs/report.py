"""Render a recorded observability directory as a human summary.

Backs the ``repro-analyze trace <run-dir>`` CLI: loads the JSONL/JSON
artifacts a flushed :class:`~repro.obs.context.RunContext` wrote and
renders

* the run header (run id, level, bound identity fields);
* the GA stage/time breakdown (from the ``ga.stage_total.*`` aggregate
  spans the engine emits at the end of every run — these reconcile with
  :class:`~repro.core.telemetry.StageTimings` by construction);
* the slowest individual spans;
* a text flame summary (share of time per span name);
* evaluator cache effectiveness and other headline metrics;
* the retry/fault timeline (``retry.scheduled`` / ``population.failed``
  / ``fault.injected`` / ``checkpoint.committed`` events).

Merged multi-process traces (the ``merged/`` directory the collector
writes for parallel runs) are first-class: pointing the CLI at the
parent observability directory auto-descends into ``merged/`` when it
exists, spans are stable-sorted by ``(start, worker, span id)`` before
any ranking, and a per-worker attribution block breaks the ``--top``
budget down by executing worker.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import ObservabilityError
from repro.obs.trace import render_flame

__all__ = ["load_run_dir", "resolve_run_dir", "trace_report"]

#: Aggregate-stage span prefix (engine-emitted, one per stage per run).
STAGE_TOTAL_PREFIX = "ga.stage_total."

#: Event names worth a line on the timeline.
_TIMELINE_EVENTS = (
    "run.started",
    "run.resumed",
    "run.finished",
    "retry.scheduled",
    "population.failed",
    "fault.injected",
    "checkpoint.committed",
)


def resolve_run_dir(run_dir: Union[str, Path]) -> Path:
    """*run_dir*, descended into its ``merged/`` view when one exists.

    A parallel run's observability directory holds the coordinator-only
    trace plus the collector's ``merged/`` (coordinator + every worker,
    causally linked); the merged view is strictly more complete, so
    report/validate consumers prefer it automatically.  Pass the
    ``merged/`` or coordinator path explicitly to pin either view.
    """
    run_dir = Path(run_dir)
    merged = run_dir / "merged"
    if run_dir.name != "merged" and (merged / "trace.jsonl").exists():
        return merged
    return run_dir


def _span_sort_key(span: dict) -> tuple:
    """Stable multi-process ordering: (start, worker, span id)."""
    return (
        float(span.get("start_s", 0.0)),
        str(span.get("attrs", {}).get("worker", "")),
        int(span.get("span_id", 0)),
    )


def load_run_dir(run_dir: Union[str, Path]) -> dict:
    """Load ``meta`` / ``spans`` / ``events`` / ``metrics`` from disk."""
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise ObservabilityError(
            f"{run_dir} is not an observability directory"
        )
    try:
        meta = json.loads((run_dir / "meta.json").read_text())
        spans = [
            json.loads(line)
            for line in (run_dir / "trace.jsonl").read_text().splitlines()
            if line.strip()
        ]
        events = [
            json.loads(line)
            for line in (run_dir / "events.jsonl").read_text().splitlines()
            if line.strip()
        ]
        metrics = json.loads((run_dir / "metrics.json").read_text())
    except FileNotFoundError as exc:
        raise ObservabilityError(
            f"{run_dir} is missing observability artifacts: {exc}"
        ) from exc
    except ValueError as exc:
        raise ObservabilityError(
            f"{run_dir} holds undecodable observability artifacts: {exc}"
        ) from exc
    return {"meta": meta, "spans": spans, "events": events, "metrics": metrics}


def stage_totals(spans: list[dict]) -> dict[str, tuple[float, int]]:
    """``{stage: (total seconds, generation count)}`` from aggregate spans."""
    totals: dict[str, tuple[float, int]] = {}
    for span in spans:
        name = span.get("name", "")
        if name.startswith(STAGE_TOTAL_PREFIX):
            stage = name[len(STAGE_TOTAL_PREFIX):]
            prev_s, prev_n = totals.get(stage, (0.0, 0))
            totals[stage] = (
                prev_s + float(span.get("duration_s", 0.0)),
                prev_n + int(span.get("attrs", {}).get("count", 0)),
            )
    return dict(sorted(totals.items()))


def _metric_value(metrics: dict, name: str) -> Optional[float]:
    snap = metrics.get(name)
    if isinstance(snap, dict) and isinstance(snap.get("value"), (int, float)):
        return float(snap["value"])
    return None


def _worker_attribution(spans: list[dict], top: int) -> list[str]:
    """Per-worker ``--top`` breakdown for merged multi-process traces."""
    by_worker: dict[str, list[dict]] = {}
    for span in spans:
        worker = span.get("attrs", {}).get("worker")
        if worker is not None:
            by_worker.setdefault(str(worker), []).append(span)
    if not by_worker:
        return []
    lines = ["", "-- per-worker attribution --"]
    for worker in sorted(by_worker):
        worker_spans = by_worker[worker]
        cells = [s for s in worker_spans if s.get("name") == "cell.run"]
        busy = sum(float(s.get("duration_s", 0.0)) for s in cells)
        lines.append(
            f"worker {worker}: {len(cells)} cells, "
            f"{busy:.3f} s cell time, {len(worker_spans)} spans"
        )
        slowest = sorted(
            worker_spans, key=lambda s: -float(s.get("duration_s", 0.0))
        )[:max(1, top // max(1, len(by_worker)))]
        for span in slowest:
            lines.append(
                f"  {float(span.get('duration_s', 0.0)) * 1000.0:10.3f} ms"
                f"  {span.get('name', '?')}"
            )
    return lines


def trace_report(
    run_dir: Union[str, Path], top: int = 10, width: int = 48
) -> str:
    """The full text summary of one recorded run."""
    resolved = resolve_run_dir(run_dir)
    data = load_run_dir(resolved)
    meta, spans, events, metrics = (
        data["meta"], data["spans"], data["events"], data["metrics"],
    )
    spans = sorted(spans, key=_span_sort_key)
    blocks: list[str] = []

    fields = ", ".join(
        f"{k}={v}" for k, v in sorted(meta.get("fields", {}).items())
    )
    blocks.append(
        f"=== trace summary: {meta.get('run_id', '?')} "
        f"(level {meta.get('level', '?')}"
        + (f"; {fields}" if fields else "") + ") ==="
    )
    if resolved != Path(run_dir):
        blocks.append(f"(merged multi-process view: {resolved})")
    blocks.append(
        f"{len(spans)} spans, {len(events)} events, "
        f"{len(metrics)} metrics"
    )

    totals = stage_totals(spans)
    if totals:
        grand = sum(t for t, _ in totals.values()) or 1.0
        blocks.append("")
        blocks.append("-- GA stage breakdown (aggregate spans) --")
        stage_w = max(len(s) for s in totals)
        for stage, (total, count) in sorted(
            totals.items(), key=lambda kv: -kv[1][0]
        ):
            mean_ms = total / count * 1000.0 if count else 0.0
            blocks.append(
                f"{stage.ljust(stage_w)}  {total:10.4f} s  "
                f"{100.0 * total / grand:5.1f}%  "
                f"x{count:<7d} mean {mean_ms:8.3f} ms"
            )

    if spans:
        blocks.append("")
        blocks.append(f"-- slowest {top} spans --")
        slowest = sorted(
            spans, key=lambda s: -float(s.get("duration_s", 0.0))
        )[:top]
        for span in slowest:
            attrs = span.get("attrs", {})
            attr_text = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            blocks.append(
                f"{float(span['duration_s']) * 1000.0:10.3f} ms  "
                f"{span['name']}" + (f"  ({attr_text})" if attr_text else "")
            )
        blocks.append("")
        blocks.append("-- flame summary (total time per span name) --")
        blocks.append(render_flame(spans, width=width))
        blocks.extend(_worker_attribution(spans, top))

    hits = _metric_value(metrics, "evaluator_cache_hits_total")
    misses = _metric_value(metrics, "evaluator_cache_misses_total")
    headline: list[str] = []
    if hits is not None and misses is not None and (hits + misses) > 0:
        headline.append(
            f"evaluator cache: {hits:.0f} hits / {misses:.0f} misses "
            f"({100.0 * hits / (hits + misses):.1f}% hit rate)"
        )
    for name, label, scale, unit in (
        ("evaluator_chromosomes_total", "chromosomes evaluated", 1.0, ""),
        ("evaluator_cache_evictions_total", "cache evictions", 1.0, ""),
        ("runner_retries_total", "retries", 1.0, ""),
        ("faults_injected_total", "faults injected", 1.0, ""),
        ("checkpoint_bytes_written_total", "checkpoint bytes", 1e-6, " MB"),
        ("process_max_rss_bytes", "peak RSS", 1e-6, " MB"),
    ):
        value = _metric_value(metrics, name)
        if value is not None and value > 0:
            headline.append(f"{label}: {value * scale:.6g}{unit}")
    if headline:
        blocks.append("")
        blocks.append("-- headline metrics --")
        blocks.extend(headline)

    timeline = [
        e for e in events if e.get("event") in _TIMELINE_EVENTS
    ]
    if timeline:
        blocks.append("")
        blocks.append("-- event timeline (retries, faults, checkpoints) --")
        shown = 0
        checkpoint_count = sum(
            1 for e in timeline if e["event"] == "checkpoint.committed"
        )
        for event in timeline:
            if event["event"] == "checkpoint.committed" and checkpoint_count > 5:
                continue  # summarized below instead of flooding the report
            fields = event.get("fields", {})
            field_text = ", ".join(
                f"{k}={v}" for k, v in sorted(fields.items())
            )
            blocks.append(
                f"t={float(event.get('t_s', 0.0)):9.3f}s  "
                f"[{event.get('level', '?'):7s}] {event['event']}"
                + (f"  {field_text}" if field_text else "")
            )
            shown += 1
        if checkpoint_count > 5:
            blocks.append(
                f"({checkpoint_count} checkpoint.committed events collapsed)"
            )

    return "\n".join(blocks)
