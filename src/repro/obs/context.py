"""The run-scoped observability context.

A :class:`RunContext` bundles the three telemetry channels — tracer,
metrics registry, event log — with run identity (run id, dataset, seed,
population label, ...) and a destination directory.  Every instrumented
layer (`NSGA2`, the evaluator, the checkpoint store, the runner, the
fault harness) accepts one and treats it uniformly:

* **disabled** (the default, :data:`NULL_CONTEXT`): every hook is a
  no-op behind a single ``if obs.enabled`` predicate, so the hot loop
  pays one branch and nothing else — the zero-overhead-by-default
  contract asserted by the benchmark's observability budget;
* **enabled**: spans/metrics/events accumulate in memory and are
  flushed to ``obs_dir`` as ``trace.jsonl`` / ``events.jsonl`` /
  ``metrics.json`` / ``metrics.prom`` / ``meta.json``.

Determinism contract: nothing in this module draws from NumPy RNG or
mutates any stochastic stream; enabling observability changes *only*
wall-clock-derived telemetry values, never optimization results —
asserted by ``tests/test_obs_integration.py``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Union

from repro.errors import ObservabilityError
from repro.obs.events import LEVELS, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["RunContext", "NULL_CONTEXT"]

#: Observability artifact format tag (stamped into ``meta.json``).
OBS_FORMAT = "repro.obs/1"


class _NullSpan:
    """A reusable no-op context manager (the disabled ``span()``)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class RunContext:
    """One run's observability state (or the shared disabled stand-in).

    Build an enabled context with :meth:`create`; pass
    :data:`NULL_CONTEXT` (or ``None`` at any instrumented call site) to
    run dark.  Instrumented code follows one discipline::

        if obs.enabled:                      # the only cost when dark
            obs.record_span("ga.stage.evaluate", seconds, generation=g)

    Attributes
    ----------
    enabled:
        ``False`` only on :data:`NULL_CONTEXT`.
    run_id:
        Caller-chosen or wall-clock/pid-derived identifier (never
        RNG-derived — observability must not touch seeded streams).
    fields:
        Run-scoped identity merged into every event (dataset, seed,
        label, generation, ...).
    tracer, metrics, events:
        The three channels (shared, not copied, by :meth:`bind`).
    """

    def __init__(
        self,
        *,
        enabled: bool,
        run_id: str = "",
        level: str = "info",
        obs_dir: Optional[Path] = None,
        fields: Optional[dict] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.enabled = enabled
        self.run_id = run_id
        self.level = level
        self.obs_dir = obs_dir
        self.fields = dict(fields or {})
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog(level=level)

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        obs_dir: Optional[Union[str, Path]] = None,
        run_id: Optional[str] = None,
        level: str = "info",
        **fields,
    ) -> "RunContext":
        """An enabled context writing to *obs_dir* (``None``: in-memory).

        *level* gates both the event log and per-generation stage spans
        (``debug`` records one span per stage per generation; ``info``
        and above keep only aggregate stage spans plus block spans).
        """
        if level not in LEVELS:
            raise ObservabilityError(
                f"unknown observability level {level!r}; have {sorted(LEVELS)}"
            )
        if run_id is None:
            # Wall clock + pid, not RNG: ids must never consume from any
            # seeded stream.
            run_id = f"run-{int(time.time())}-{os.getpid()}"
        return cls(
            enabled=True,
            run_id=run_id,
            level=level,
            obs_dir=None if obs_dir is None else Path(obs_dir),
            fields=fields,
        )

    @classmethod
    def disabled(cls) -> "RunContext":
        """The shared no-op context."""
        return NULL_CONTEXT

    def bind(self, **fields) -> "RunContext":
        """A view of this context with extra run-scoped *fields*.

        Channels are shared (spans/metrics/events all land in the same
        buffers); only the identity fields differ.  Binding the disabled
        context returns it unchanged.
        """
        if not self.enabled:
            return self
        merged = dict(self.fields)
        merged.update(fields)
        return RunContext(
            enabled=True,
            run_id=self.run_id,
            level=self.level,
            obs_dir=self.obs_dir,
            fields=merged,
            tracer=self.tracer,
            metrics=self.metrics,
            events=self.events,
        )

    # -- channel facade ------------------------------------------------------

    @property
    def debug(self) -> bool:
        """Whether per-generation (high-volume) recording is on."""
        return self.enabled and self.level == "debug"

    def span(self, name: str, **attrs):
        """Context manager timing a block (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **attrs)

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        """File an externally timed span (no-op when disabled)."""
        if self.enabled:
            self.tracer.record(name, seconds, **attrs)

    def event(self, name: str, level: str = "info", **fields) -> None:
        """Emit a structured event with the bound fields merged in."""
        if self.enabled:
            self.events.emit(name, level=level, **{**self.fields, **fields})

    def counter(self, name: str, help: str = "", unit: str = ""):
        """Shortcut for ``metrics.counter`` (``None`` when disabled)."""
        return self.metrics.counter(name, help=help, unit=unit) if self.enabled else None

    def sample_rss(self) -> None:
        """Record the process's peak RSS as a gauge (best effort)."""
        if not self.enabled:
            return
        try:
            import resource

            rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except (ImportError, OSError):  # pragma: no cover - non-POSIX
            return
        # Linux reports KiB; macOS reports bytes.
        scale = 1 if sys.platform == "darwin" else 1024
        self.metrics.gauge(
            "process_max_rss_bytes",
            help="peak resident set size of this process",
            unit="bytes",
        ).set(rss * scale)

    # -- persistence ---------------------------------------------------------

    def flush(self) -> Optional[Path]:
        """Write all channels to ``obs_dir``; returns the directory.

        Idempotent (later flushes overwrite with the fuller state); a
        context created without an ``obs_dir`` flushes nowhere and
        returns ``None``.
        """
        if not self.enabled or self.obs_dir is None:
            return None
        self.sample_rss()
        out = self.obs_dir
        out.mkdir(parents=True, exist_ok=True)
        self.tracer.to_jsonl(out / "trace.jsonl")
        self.events.to_jsonl(out / "events.jsonl")
        self.metrics.to_json(out / "metrics.json")
        (out / "metrics.prom").write_text(self.metrics.to_prometheus_text())
        (out / "meta.json").write_text(
            json.dumps(
                {
                    "format": OBS_FORMAT,
                    "run_id": self.run_id,
                    "level": self.level,
                    "fields": self.fields,
                    "spans": len(self.tracer),
                    "events": len(self.events),
                    # Per-process clock anchors: the monotonic reading
                    # all span/event timestamps are relative to, and
                    # the wall-clock instant it corresponds to — what
                    # the collector uses to align worker timelines.
                    "clock": {
                        "monotonic_s": self.tracer.epoch_s,
                        "unix_s": self.tracer.anchor_unix_s,
                    },
                },
                indent=2,
                allow_nan=False,
            )
            + "\n"
        )
        # A parallel run with worker telemetry leaves per-worker
        # sub-directories under ``workers/``; fold them and this
        # coordinator trace into one causally-linked ``merged/`` view.
        if (out / "workers").is_dir():
            from repro.obs.collect import merge_obs_dir

            merge_obs_dir(out)
        return out


#: The process-wide disabled context: every hook no-ops behind one branch.
NULL_CONTEXT = RunContext(enabled=False)
