"""Leveled structured event log with a JSONL export.

Events are the "what happened" channel (run started, retry scheduled,
fault injected, checkpoint committed) — discrete facts with structured
fields, complementing spans (where time went) and metrics (how much of
everything).  Each event carries:

* ``t_s`` — seconds since the log's epoch (monotonic, not wall clock,
  for the same determinism-safety reasons as the tracer);
* ``level`` — ``debug`` / ``info`` / ``warning`` / ``error``; events
  below the configured threshold are dropped at emit time (zero
  retained cost);
* ``event`` — a dotted name (``run.started``, ``retry.scheduled``);
* ``fields`` — the event's structured payload, merged with the bound
  run-scoped fields of the emitting :class:`~repro.obs.context.RunContext`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Union

from repro.errors import ObservabilityError

__all__ = ["LEVELS", "EventLog"]

#: Level name → numeric severity (higher = more severe).
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLog:
    """Collects one run's events in memory; exports JSONL."""

    def __init__(
        self,
        level: str = "info",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if level not in LEVELS:
            raise ObservabilityError(
                f"unknown event level {level!r}; have {sorted(LEVELS)}"
            )
        self.level = level
        self._threshold = LEVELS[level]
        self._clock = clock
        self._epoch = clock()
        self.events: list[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, event: str, level: str = "info", **fields) -> None:
        """Record *event* unless *level* is below the configured threshold."""
        severity = LEVELS.get(level)
        if severity is None:
            raise ObservabilityError(
                f"unknown event level {level!r}; have {sorted(LEVELS)}"
            )
        if severity < self._threshold:
            return
        self.events.append(
            {
                "t_s": self._clock() - self._epoch,
                "level": level,
                "event": event,
                "fields": fields,
            }
        )

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write every retained event as one JSON object per line."""
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event, allow_nan=False) + "\n")
