"""Deterministic fault injection for the execution layer.

Fault-tolerance code is only trustworthy if every recovery path runs in
CI.  A :class:`FaultPlan` is a declarative, seedable description of
*where* and *when* faults fire:

* ``crash`` — raise :class:`InjectedFault` (once at the N-th call of a
  call site, or on every runner attempt up to a bound);
* ``hang`` — sleep long enough to trip a per-attempt timeout;
* ``transient`` — fail the first K calls/attempts, then succeed
  (exercises retry-with-backoff);
* ``corrupt-checkpoint`` — deterministically scribble over an on-disk
  artifact at the N-th call (exercises checksum verification on
  resume).

Two hook shapes thread a plan into the framework:

* :meth:`FaultPlan.evaluation_hook` — a zero-argument callable for
  :class:`~repro.sim.evaluator.ScheduleEvaluator`'s ``fault_hook``;
  fires by *call count* (stateful, in-process only);
* :meth:`FaultPlan.on_attempt` — an ``(label, attempt)`` callable for
  :func:`~repro.experiments.runner.run_seeded_populations`'s
  ``fault_hook``; decisions depend only on the arguments, so the hook
  survives pickling into worker processes.

:class:`InjectedFault` deliberately derives from ``RuntimeError``, not
:class:`~repro.errors.ReproError` — an injected fault must look exactly
like the unexpected crash it simulates.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.context import RunContext

__all__ = ["InjectedFault", "FaultRule", "FaultPlan", "corrupt_artifact"]


class InjectedFault(RuntimeError):
    """A deliberately injected failure (looks like any other crash)."""


_KINDS = ("crash", "hang", "transient", "corrupt-checkpoint")


@dataclass(frozen=True)
class FaultRule:
    """One fault at one call site.

    Attributes
    ----------
    site:
        Call-site key: a population label for runner attempts, or any
        agreed string (conventionally ``"evaluate"``) for evaluator
        hooks.
    kind:
        One of ``crash``, ``hang``, ``transient``,
        ``corrupt-checkpoint``.
    at_call:
        1-based call index at which a ``crash``/``hang``/
        ``corrupt-checkpoint`` fires (count-based hooks).  For attempt
        hooks, a ``crash`` fires on *every* attempt (a permanent
        failure) regardless of this field.
    failures:
        ``transient``/``hang`` (attempt hooks): fail/hang this many
        leading attempts, then behave normally.
    hang_seconds:
        Sleep duration of a ``hang``.
    path:
        Artifact to damage (``corrupt-checkpoint`` only).
    message:
        Text carried by the raised :class:`InjectedFault`.
    """

    site: str
    kind: str
    at_call: int = 1
    failures: int = 1
    hang_seconds: float = 0.05
    path: Optional[str] = None
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; have {_KINDS}")
        if self.at_call < 1:
            raise ValueError(f"at_call must be >= 1, got {self.at_call}")
        if self.failures < 1:
            raise ValueError(f"failures must be >= 1, got {self.failures}")
        if self.hang_seconds < 0:
            raise ValueError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )
        if self.kind == "corrupt-checkpoint" and self.path is None:
            raise ValueError("corrupt-checkpoint rules need a path")


class FaultPlan:
    """A seedable, deterministic schedule of injected faults.

    Build one fluently::

        plan = (FaultPlan(seed=7)
                .crash("evaluate", at_call=12)
                .transient("min-energy", failures=2)
                .hang("random", seconds=0.5))

    and thread its hooks into the evaluator and the runner.  The seed
    only feeds byte-level corruption choices; firing logic is exact.
    """

    def __init__(
        self, seed: int = 0, obs: Optional["RunContext"] = None
    ) -> None:
        self.seed = int(seed)
        self.rules: list[FaultRule] = []
        self._counts: defaultdict[str, int] = defaultdict(int)
        self._obs = obs

    def observe(self, obs: Optional["RunContext"]) -> "FaultPlan":
        """Attach a :class:`~repro.obs.context.RunContext` (fluent).

        Every fault that actually fires then emits a ``fault.injected``
        event and bumps ``faults_injected_total``.  The context is
        dropped on pickling (worker-process copies inject silently; the
        coordinator still sees the resulting retries).
        """
        self._obs = obs
        return self

    def _record(self, site: str, rule: FaultRule, occurrence: int) -> None:
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.counter(
                "faults_injected_total", help="deliberately injected faults"
            ).inc()
            obs.event(
                "fault.injected", level="warning",
                site=site, kind=rule.kind, occurrence=occurrence,
            )

    # -- fluent builders -----------------------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        """Append one rule (fluent)."""
        self.rules.append(rule)
        return self

    def crash(
        self, site: str, at_call: int = 1, message: str = "injected crash"
    ) -> "FaultPlan":
        """Raise at the *at_call*-th call (every attempt, for runners)."""
        return self.add(
            FaultRule(site=site, kind="crash", at_call=at_call, message=message)
        )

    def hang(
        self, site: str, seconds: float = 0.05, failures: int = 1,
        at_call: int = 1,
    ) -> "FaultPlan":
        """Sleep *seconds* (first *failures* attempts / *at_call*-th call)."""
        return self.add(
            FaultRule(
                site=site, kind="hang", hang_seconds=seconds,
                failures=failures, at_call=at_call,
            )
        )

    def transient(self, site: str, failures: int = 1) -> "FaultPlan":
        """Fail the first *failures* calls/attempts, then succeed."""
        return self.add(
            FaultRule(
                site=site, kind="transient", failures=failures,
                message=f"injected transient fault ({failures} failures)",
            )
        )

    def corrupt_checkpoint(
        self, site: str, path: Union[str, Path], at_call: int = 1
    ) -> "FaultPlan":
        """Scribble over *path* at the *at_call*-th call of *site*."""
        return self.add(
            FaultRule(
                site=site, kind="corrupt-checkpoint", at_call=at_call,
                path=str(path),
            )
        )

    # -- count-based firing (in-process call sites) --------------------------

    def calls(self, site: str) -> int:
        """How many times *site* has fired so far."""
        return self._counts[site]

    def fire(self, site: str) -> None:
        """Record one call of *site* and apply any matching rules."""
        self._counts[site] += 1
        n = self._counts[site]
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.kind == "corrupt-checkpoint" and n == rule.at_call:
                self._record(site, rule, n)
                corrupt_artifact(rule.path, seed=self.seed)
            elif rule.kind == "hang" and n == rule.at_call:
                self._record(site, rule, n)
                time.sleep(rule.hang_seconds)
            elif rule.kind == "crash" and n == rule.at_call:
                self._record(site, rule, n)
                raise InjectedFault(f"{rule.message} (site={site!r}, call={n})")
            elif rule.kind == "transient" and n <= rule.failures:
                self._record(site, rule, n)
                raise InjectedFault(f"{rule.message} (site={site!r}, call={n})")

    def evaluation_hook(self, site: str = "evaluate") -> Callable[[], None]:
        """Zero-arg hook for ``ScheduleEvaluator(fault_hook=...)``.

        Stateful (counts calls in this process); not picklable — use
        :meth:`on_attempt` for process-pool workers.
        """
        def hook() -> None:
            self.fire(site)

        return hook

    # -- attempt-based firing (runner workers, pickle-safe) ------------------

    def on_attempt(self, label: str, attempt: int) -> None:
        """Runner hook: apply rules keyed by population *label*.

        Decisions depend only on ``(label, attempt)``, so this bound
        method can be pickled into worker processes and remains
        deterministic across retries.
        """
        for rule in self.rules:
            if rule.site != label:
                continue
            if rule.kind == "hang" and attempt <= rule.failures:
                self._record(label, rule, attempt)
                time.sleep(rule.hang_seconds)
            elif rule.kind == "crash":
                self._record(label, rule, attempt)
                raise InjectedFault(
                    f"{rule.message} (label={label!r}, attempt={attempt})"
                )
            elif rule.kind == "transient" and attempt <= rule.failures:
                self._record(label, rule, attempt)
                raise InjectedFault(
                    f"{rule.message} (label={label!r}, attempt={attempt})"
                )

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        # The observability context is deliberately dropped: it is not
        # picklable into worker processes, and telemetry channels must
        # stay coordinator-side.
        return {
            "seed": self.seed,
            "rules": self.rules,
            "counts": dict(self._counts),
        }

    def __setstate__(self, state: dict) -> None:
        self.seed = state["seed"]
        self.rules = list(state["rules"])
        self._counts = defaultdict(int, state["counts"])
        self._obs = None


def corrupt_artifact(
    path: Union[str, Path], seed: int = 0, nbytes: int = 16
) -> None:
    """Deterministically damage an on-disk artifact.

    Flips *nbytes* bytes at seed-chosen positions in the second half of
    the file (past the envelope header, into the payload), so checksum
    verification — not JSON parsing alone — must catch it.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    rng = np.random.default_rng(seed)
    lo = len(data) // 2
    positions = rng.integers(lo, len(data), size=min(nbytes, len(data) - lo))
    for pos in positions:
        data[int(pos)] ^= 0x5A
    path.write_bytes(bytes(data))
