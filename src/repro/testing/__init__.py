"""Deterministic test harnesses for the framework's recovery paths.

:mod:`repro.testing.faults` injects crashes, hangs, transient failures,
and artifact corruption at well-defined points of the execution layer,
so checkpoint/resume and the retrying experiment runner are exercised
by fast deterministic tests rather than luck.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    corrupt_artifact,
)

__all__ = ["FaultPlan", "FaultRule", "InjectedFault", "corrupt_artifact"]
