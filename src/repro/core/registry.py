"""Algorithm registry: name → factory for the MOEA portfolio.

Experiment drivers and the CLI select optimizers by name —
``"nsga2"``, ``"nsga2-ss"`` (steady-state), ``"spea2"``, ``"moead"``,
``"eps-archive"`` — and :func:`make_algorithm` builds the engine.
Registry names are plain strings, so the choice travels to parallel
pool workers inside the pickled cell extras alongside the dataset
handle; a caller may also pass its own factory callable (anything with
the :class:`~repro.core.algorithm.Algorithm` constructor signature)
for algorithms that are not registered.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence, Union

from repro.core.algorithm import Algorithm, AlgorithmConfig
from repro.core.moead import MOEAD
from repro.core.nsga2 import NSGA2, EpsilonArchiveNSGA2
from repro.core.spea2 import SPEA2
from repro.errors import AlgorithmLookupError
from repro.obs.context import RunContext
from repro.rng import SeedLike
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation

__all__ = [
    "ALGORITHMS",
    "AlgorithmFactory",
    "available_algorithms",
    "make_algorithm",
]

#: Anything that builds an Algorithm from (evaluator, config, ...).
AlgorithmFactory = Callable[..., Algorithm]


def _make_steady_state_nsga2(evaluator, config, **kwargs) -> NSGA2:
    """Steady-state NSGA-II: the generational engine with one child/step."""
    return NSGA2(evaluator, replace(config, offspring_size=1), **kwargs)


#: Registered algorithm factories by CLI/driver name.
ALGORITHMS: dict[str, AlgorithmFactory] = {
    "nsga2": NSGA2,
    "nsga2-ss": _make_steady_state_nsga2,
    "spea2": SPEA2,
    "moead": MOEAD,
    "eps-archive": EpsilonArchiveNSGA2,
}


def available_algorithms() -> tuple[str, ...]:
    """Registered algorithm names, sorted."""
    return tuple(sorted(ALGORITHMS))


def make_algorithm(
    algorithm: Union[str, AlgorithmFactory],
    evaluator: ScheduleEvaluator,
    config: Optional[AlgorithmConfig] = None,
    *,
    seeds: Sequence[ResourceAllocation] = (),
    rng: SeedLike = None,
    label: Optional[str] = None,
    obs: Optional[RunContext] = None,
) -> Algorithm:
    """Build the engine for *algorithm* (registry name or factory).

    Raises :class:`~repro.errors.AlgorithmLookupError` for unknown
    names, listing what is registered.
    """
    if callable(algorithm):
        factory: AlgorithmFactory = algorithm
    else:
        try:
            factory = ALGORITHMS[algorithm]
        except KeyError:
            raise AlgorithmLookupError(
                f"unknown algorithm {algorithm!r}; registered: "
                f"{', '.join(available_algorithms())}"
            ) from None
    if config is None:
        config = AlgorithmConfig()
    return factory(
        evaluator, config, seeds=list(seeds), rng=rng, label=label, obs=obs
    )
