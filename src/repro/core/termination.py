"""Termination criteria for the NSGA-II engine.

The paper's Algorithm 1 loops "while termination criterion is not met"
and its experiments terminate on generation count.  This module
generalizes that into composable criteria:

* :class:`MaxGenerations` — the paper's criterion.
* :class:`MaxEvaluations` — budget in chromosome evaluations (the A2
  ablation's constant-budget comparisons use this).
* :class:`MaxWallClock` — wall-clock budget in seconds.
* :class:`HypervolumeStagnation` — stop when the population front's
  hypervolume has not improved by a relative epsilon for a window of
  generations (a practical convergence detector for the "fronts start
  converging" regime of Figures 3/4/6).
* :class:`AnyOf` — first criterion wins.

All criteria are consulted *after* each generation with a
:class:`TerminationContext` snapshot, so they never interact with the
engine's internals.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence


from repro.analysis.indicators import hypervolume
from repro.errors import OptimizationError
from repro.types import FloatArray

__all__ = [
    "TerminationContext",
    "TerminationCriterion",
    "MaxGenerations",
    "MaxEvaluations",
    "MaxWallClock",
    "HypervolumeStagnation",
    "AnyOf",
]


@dataclass(frozen=True)
class TerminationContext:
    """Engine state offered to criteria after each generation.

    Attributes
    ----------
    generation:
        Generations completed so far.
    evaluations:
        Cumulative chromosome evaluations.
    elapsed_seconds:
        Wall-clock time since the run started.
    front_points:
        Current rank-1 front, ``(F, 2)`` (energy, utility).
    """

    generation: int
    evaluations: int
    elapsed_seconds: float
    front_points: FloatArray


class TerminationCriterion(abc.ABC):
    """Decides whether an optimization run should stop."""

    @abc.abstractmethod
    def should_stop(self, context: TerminationContext) -> bool:
        """``True`` once the run should terminate."""

    def reset(self) -> None:
        """Clear any internal state before a fresh run (default: none)."""


@dataclass
class MaxGenerations(TerminationCriterion):
    """Stop after a fixed number of generations (the paper's criterion)."""

    generations: int

    def __post_init__(self) -> None:
        if self.generations < 0:
            raise OptimizationError(
                f"generations must be >= 0, got {self.generations}"
            )

    def should_stop(self, context: TerminationContext) -> bool:
        return context.generation >= self.generations


@dataclass
class MaxEvaluations(TerminationCriterion):
    """Stop once the evaluation budget is exhausted."""

    evaluations: int

    def __post_init__(self) -> None:
        if self.evaluations <= 0:
            raise OptimizationError(
                f"evaluations must be > 0, got {self.evaluations}"
            )

    def should_stop(self, context: TerminationContext) -> bool:
        return context.evaluations >= self.evaluations


@dataclass
class MaxWallClock(TerminationCriterion):
    """Stop after a wall-clock budget (seconds)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise OptimizationError(f"seconds must be > 0, got {self.seconds}")

    def should_stop(self, context: TerminationContext) -> bool:
        return context.elapsed_seconds >= self.seconds


@dataclass
class HypervolumeStagnation(TerminationCriterion):
    """Stop when front hypervolume stalls.

    Attributes
    ----------
    window:
        Number of consecutive non-improving generations tolerated.
    rel_epsilon:
        Minimum relative improvement that counts as progress.
    reference:
        Fixed hypervolume reference point ``(energy, utility)``.  It
        must be worse than anything reachable — e.g. (upper energy
        bound, 0).  A fixed reference keeps the series comparable
        across generations.
    min_generations:
        Never stop before this many generations (lets the GA escape the
        initial population's plateau).
    """

    window: int
    reference: tuple[float, float]
    rel_epsilon: float = 1e-4
    min_generations: int = 10
    _best: float = field(default=0.0, repr=False)
    _stalled: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise OptimizationError(f"window must be >= 1, got {self.window}")
        if self.rel_epsilon < 0:
            raise OptimizationError(
                f"rel_epsilon must be >= 0, got {self.rel_epsilon}"
            )

    def reset(self) -> None:
        self._best = 0.0
        self._stalled = 0

    def should_stop(self, context: TerminationContext) -> bool:
        hv = hypervolume(context.front_points, self.reference)
        if hv > self._best * (1.0 + self.rel_epsilon) or self._best == 0.0:
            self._best = max(hv, self._best)
            self._stalled = 0
        else:
            self._stalled += 1
        if context.generation < self.min_generations:
            return False
        return self._stalled >= self.window


@dataclass
class AnyOf(TerminationCriterion):
    """Stop as soon as any child criterion fires."""

    criteria: Sequence[TerminationCriterion]

    def __post_init__(self) -> None:
        if not self.criteria:
            raise OptimizationError("AnyOf requires at least one criterion")

    def reset(self) -> None:
        for criterion in self.criteria:
            criterion.reset()

    def should_stop(self, context: TerminationContext) -> bool:
        return any(c.should_stop(context) for c in self.criteria)
