"""All-time external Pareto archive.

NSGA-II's elitism keeps good solutions *probabilistically*; an external
archive keeps the union of every nondominated point ever seen, which is
what the convergence analyses report against ("has the population
reached the best front any run has found?").  The archive stores
objective points and an opaque payload (e.g. ``(assignment, order)``
tuples) per point.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.dominance import nondominated_mask
from repro.core.objectives import BiObjectiveSpace, ENERGY_UTILITY
from repro.errors import OptimizationError
from repro.types import FloatArray

__all__ = ["ParetoArchive"]


class ParetoArchive:
    """Maintains the nondominated set over every update.

    Duplicate objective points are collapsed to the first payload seen
    (they carry no additional front information).
    """

    def __init__(self, space: BiObjectiveSpace = ENERGY_UTILITY) -> None:
        self.space = space
        self._points = np.empty((0, 2), dtype=np.float64)
        self._payloads: list[Any] = []

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def points(self) -> FloatArray:
        """``(K, 2)`` archived objective points (copy)."""
        return self._points.copy()

    @property
    def payloads(self) -> list[Any]:
        """Payloads aligned with :attr:`points`."""
        return list(self._payloads)

    def update(
        self,
        points: FloatArray,
        payloads: Optional[Sequence[Any]] = None,
    ) -> int:
        """Merge *points* into the archive; returns the new archive size.

        Payloads default to ``None`` per point.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise OptimizationError(f"points must have shape (N, 2); got {pts.shape}")
        if payloads is None:
            payloads = [None] * pts.shape[0]
        if len(payloads) != pts.shape[0]:
            raise OptimizationError(
                f"{len(payloads)} payloads for {pts.shape[0]} points"
            )
        merged = np.vstack([self._points, pts])
        merged_payloads = self._payloads + list(payloads)
        mask = nondominated_mask(merged, self.space)
        keep = np.flatnonzero(mask)
        # Collapse duplicate surviving points, first occurrence wins.
        seen: dict[tuple[float, float], int] = {}
        unique_rows: list[int] = []
        for idx in keep:
            key = (float(merged[idx, 0]), float(merged[idx, 1]))
            if key not in seen:
                seen[key] = idx
                unique_rows.append(idx)
        self._points = merged[unique_rows]
        self._payloads = [merged_payloads[i] for i in unique_rows]
        return len(self)

    def front(self) -> FloatArray:
        """Archive points sorted by the first axis (ascending)."""
        order = np.lexsort((self._points[:, 1], self._points[:, 0]))
        return self._points[order]

    def dominates_point(self, point: Sequence[float]) -> bool:
        """Whether any archived point dominates *point*."""
        if len(self) == 0:
            return False
        p = np.asarray(point, dtype=np.float64)
        at_least = self.space.better_or_equal(self._points, p[None, :])
        strictly = self.space.strictly_better(self._points, p[None, :])
        return bool(np.any(at_least.all(axis=1) & strictly.any(axis=1)))
