"""All-time external Pareto archive.

NSGA-II's elitism keeps good solutions *probabilistically*; an external
archive keeps the union of every nondominated point ever seen, which is
what the convergence analyses report against ("has the population
reached the best front any run has found?").  The archive stores
objective points and an opaque payload (e.g. ``(assignment, order)``
tuples) per point.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.dominance import nondominated_mask
from repro.core.objectives import BiObjectiveSpace, ENERGY_UTILITY
from repro.errors import OptimizationError
from repro.types import FloatArray

__all__ = ["ParetoArchive", "EpsilonParetoArchive"]


class ParetoArchive:
    """Maintains the nondominated set over every update.

    Duplicate objective points are collapsed to the first payload seen
    (they carry no additional front information).
    """

    def __init__(self, space: BiObjectiveSpace = ENERGY_UTILITY) -> None:
        self.space = space
        self._points = np.empty((0, 2), dtype=np.float64)
        self._payloads: list[Any] = []

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def points(self) -> FloatArray:
        """``(K, 2)`` archived objective points (copy)."""
        return self._points.copy()

    @property
    def payloads(self) -> list[Any]:
        """Payloads aligned with :attr:`points`."""
        return list(self._payloads)

    def update(
        self,
        points: FloatArray,
        payloads: Optional[Sequence[Any]] = None,
    ) -> int:
        """Merge *points* into the archive; returns the new archive size.

        Payloads default to ``None`` per point.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise OptimizationError(f"points must have shape (N, 2); got {pts.shape}")
        if payloads is None:
            payloads = [None] * pts.shape[0]
        if len(payloads) != pts.shape[0]:
            raise OptimizationError(
                f"{len(payloads)} payloads for {pts.shape[0]} points"
            )
        merged = np.vstack([self._points, pts])
        merged_payloads = self._payloads + list(payloads)
        mask = nondominated_mask(merged, self.space)
        keep = np.flatnonzero(mask)
        # Collapse duplicate surviving points, first occurrence wins.
        seen: dict[tuple[float, float], int] = {}
        unique_rows: list[int] = []
        for idx in keep:
            key = (float(merged[idx, 0]), float(merged[idx, 1]))
            if key not in seen:
                seen[key] = idx
                unique_rows.append(idx)
        self._points = merged[unique_rows]
        self._payloads = [merged_payloads[i] for i in unique_rows]
        return len(self)

    def front(self) -> FloatArray:
        """Archive points sorted by the first axis (ascending)."""
        order = np.lexsort((self._points[:, 1], self._points[:, 0]))
        return self._points[order]

    def dominates_point(self, point: Sequence[float]) -> bool:
        """Whether any archived point dominates *point*."""
        if len(self) == 0:
            return False
        p = np.asarray(point, dtype=np.float64)
        at_least = self.space.better_or_equal(self._points, p[None, :])
        strictly = self.space.strictly_better(self._points, p[None, :])
        return bool(np.any(at_least.all(axis=1) & strictly.any(axis=1)))


class EpsilonParetoArchive:
    """Bounded ε-dominance archive (Laumanns et al. 2002).

    Objective space is partitioned into axis-aligned ε-boxes (in
    minimization coordinates, box index ``floor(f / ε)`` per axis); the
    archive keeps at most one representative per box, and only boxes
    that are not dominated by another occupied box.  Within a box the
    point closer to the box's utopia corner wins (Pareto-dominance
    first, corner distance as the tiebreak).  This yields the two
    ε-approximation guarantees the analyses rely on: every point ever
    offered is ε-dominated by some archived point, and archived points
    are mutually non-ε-dominated — so the archive size is bounded by
    the objective ranges divided by ε, independent of run length.
    """

    def __init__(
        self,
        epsilons: Sequence[float],
        space: BiObjectiveSpace = ENERGY_UTILITY,
    ) -> None:
        eps = tuple(float(e) for e in epsilons)
        if len(eps) != 2 or any(e <= 0 for e in eps):
            raise OptimizationError(
                f"epsilons must be two positive box sizes; got {epsilons!r}"
            )
        self.epsilons = eps
        self.space = space
        # box index -> (minimization point, raw point, payload)
        self._boxes: dict[tuple[int, int], tuple[np.ndarray, np.ndarray, Any]] = {}

    def __len__(self) -> int:
        return len(self._boxes)

    @property
    def points(self) -> FloatArray:
        """``(K, 2)`` archived raw objective points."""
        if not self._boxes:
            return np.empty((0, 2), dtype=np.float64)
        return np.stack([raw for _, raw, _ in self._boxes.values()])

    @property
    def payloads(self) -> list[Any]:
        """Payloads aligned with :attr:`points`."""
        return [payload for _, _, payload in self._boxes.values()]

    def _box(self, fmin: np.ndarray) -> tuple[int, int]:
        eps = self.epsilons
        return (int(np.floor(fmin[0] / eps[0])), int(np.floor(fmin[1] / eps[1])))

    def update(
        self,
        points: FloatArray,
        payloads: Optional[Sequence[Any]] = None,
    ) -> int:
        """Offer *points* to the archive; returns the new archive size."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise OptimizationError(f"points must have shape (N, 2); got {pts.shape}")
        if payloads is None:
            payloads = [None] * pts.shape[0]
        if len(payloads) != pts.shape[0]:
            raise OptimizationError(
                f"{len(payloads)} payloads for {pts.shape[0]} points"
            )
        fmins = self.space.to_minimization(pts)
        for fmin, raw, payload in zip(fmins, pts, payloads):
            self._offer(fmin, raw.copy(), payload)
        return len(self)

    def _offer(self, fmin: np.ndarray, raw: np.ndarray, payload: Any) -> None:
        box = self._box(fmin)
        incumbent = self._boxes.get(box)
        if incumbent is not None:
            inc_fmin = incumbent[0]
            if (inc_fmin <= fmin).all():
                return  # incumbent Pareto-dominates (or equals) the candidate
            if not (fmin <= inc_fmin).all():
                # Incomparable within the box: closer to the box corner wins.
                eps = np.asarray(self.epsilons)
                corner = np.floor(fmin / eps) * eps
                if np.linalg.norm(fmin - corner) >= np.linalg.norm(
                    inc_fmin - corner
                ):
                    return
            self._boxes[box] = (fmin, raw, payload)
            return
        # New box: reject if any occupied box dominates it; otherwise
        # evict every box it dominates.
        for other, entry in list(self._boxes.items()):
            if other == box:
                continue
            if other[0] <= box[0] and other[1] <= box[1]:
                return
            if box[0] <= other[0] and box[1] <= other[1]:
                del self._boxes[other]
        self._boxes[box] = (fmin, raw, payload)

    def front(self) -> FloatArray:
        """Archive points sorted by the first axis (ascending)."""
        pts = self.points
        if pts.shape[0] == 0:
            return pts
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        return pts[order]
