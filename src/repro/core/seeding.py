"""Seeded initial populations (paper Section V-B).

"To use a seed within a population, we generate a new chromosome from
one of the ... heuristics.  We place this chromosome into the
population and create the rest of the chromosomes for that population
randomly."

:func:`seeded_initial_population` implements exactly that, accepting
any number of seed allocations (0 = the all-random population of the
paper's star-marker series; 4 = the all-four-seeds population of the
A5 ablation).
"""

from __future__ import annotations

from typing import Sequence


from repro.core.operators import FeasibleMachines
from repro.core.population import Population
from repro.errors import OptimizationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.schedule import ResourceAllocation

__all__ = ["seeded_initial_population"]


def seeded_initial_population(
    feasible: FeasibleMachines,
    size: int,
    seeds: Sequence[ResourceAllocation],
    rng_seed: SeedLike = None,
    order_sampling: str = "legacy",
) -> Population:
    """Random population of *size* with *seeds* occupying the first rows.

    Parameters
    ----------
    feasible:
        Per-task feasible machine table (for the random fill).
    size:
        Total population size ``N``.
    seeds:
        Heuristic allocations to inject (must fit: ``len(seeds) <= size``).
    rng_seed:
        Randomness for the non-seed rows.
    order_sampling:
        Passed through to :meth:`Population.random` — ``"legacy"``
        (default, historical RNG stream) or ``"vectorized"``.
    """
    if len(seeds) > size:
        raise OptimizationError(
            f"{len(seeds)} seeds do not fit in a population of {size}"
        )
    rng = ensure_rng(rng_seed)
    population = Population.random(feasible, size, rng, order_sampling=order_sampling)
    for row, seed in enumerate(seeds):
        if seed.num_tasks != feasible.num_tasks:
            raise OptimizationError(
                f"seed {row} covers {seed.num_tasks} tasks; the trace has "
                f"{feasible.num_tasks}"
            )
        population.assignments[row] = seed.machine_assignment
        population.orders[row] = seed.scheduling_order
    return population
