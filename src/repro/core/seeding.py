"""Seeded initial populations (paper Section V-B).

"To use a seed within a population, we generate a new chromosome from
one of the ... heuristics.  We place this chromosome into the
population and create the rest of the chromosomes for that population
randomly."

:func:`seeded_initial_population` implements exactly that, accepting
any number of seed allocations (0 = the all-random population of the
paper's star-marker series; 4 = the all-four-seeds population of the
A5 ablation).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.operators import FeasibleMachines
from repro.core.population import Population
from repro.errors import OptimizationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.schedule import ResourceAllocation
from repro.types import IntArray

__all__ = ["seeded_initial_population", "repair_mapped_seeds"]


def seeded_initial_population(
    feasible: FeasibleMachines,
    size: int,
    seeds: Sequence[ResourceAllocation],
    rng_seed: SeedLike = None,
    order_sampling: str = "legacy",
) -> Population:
    """Random population of *size* with *seeds* occupying the first rows.

    Parameters
    ----------
    feasible:
        Per-task feasible machine table (for the random fill).
    size:
        Total population size ``N``.
    seeds:
        Heuristic allocations to inject (must fit: ``len(seeds) <= size``).
    rng_seed:
        Randomness for the non-seed rows.
    order_sampling:
        Passed through to :meth:`Population.random` — ``"legacy"``
        (default, historical RNG stream) or ``"vectorized"``.
    """
    if len(seeds) > size:
        raise OptimizationError(
            f"{len(seeds)} seeds do not fit in a population of {size}"
        )
    rng = ensure_rng(rng_seed)
    population = Population.random(feasible, size, rng, order_sampling=order_sampling)
    for row, seed in enumerate(seeds):
        if seed.num_tasks != feasible.num_tasks:
            raise OptimizationError(
                f"seed {row} covers {seed.num_tasks} tasks; the trace has "
                f"{feasible.num_tasks}"
            )
        population.assignments[row] = seed.machine_assignment
        population.orders[row] = seed.scheduling_order
    return population


def repair_mapped_seeds(
    donor_task_types: IntArray,
    donor_assignments: IntArray,
    task_types: IntArray,
    feasible: FeasibleMachines,
    rng_seed: SeedLike = None,
    max_seeds: int | None = None,
    arrival_order_first: bool = False,
) -> list[ResourceAllocation]:
    """Warm-start seeds for a *new* task set from a previous window's
    survivors (online service carryover).

    Machine feasibility is a pure function of the task *type*
    (``system.feasible_task_machine[task_types]``), so a machine chosen
    for one task transfers feasibly to any other task of the same type.
    Each donor chromosome becomes one seed: every new task copies the
    machine of a uniformly drawn donor task of its own type (a "repair
    map"); types the donor window never saw fall back to a random
    feasible machine.  Scheduling orders are fresh random permutations
    — the previous window's order keys rank *its* tasks and carry no
    meaning for the new ones.

    Parameters
    ----------
    donor_task_types:
        ``(D,)`` task types of the previous window's trace.
    donor_assignments:
        ``(S, D)`` machine assignments — one donor chromosome per row
        (e.g. the previous window's final front rows).
    task_types:
        ``(T,)`` task types of the new window.
    feasible:
        The new window's :class:`FeasibleMachines` (random fallback and
        seed-size validation).
    rng_seed:
        Randomness for donor draws, fallbacks, and orders.
    max_seeds:
        Keep at most this many donor rows (first rows win — callers
        should order donors best-first).
    arrival_order_first:
        Give the *first* seed the identity scheduling order (tasks in
        arrival order — the FIFO heuristic) instead of a random
        permutation.  Subsequent seeds keep random orders for
        diversity.
    """
    donor_types = np.asarray(donor_task_types, dtype=np.int64)
    donors = np.atleast_2d(np.asarray(donor_assignments, dtype=np.int64))
    types = np.asarray(task_types, dtype=np.int64)
    if donors.shape[1] != donor_types.shape[0]:
        raise OptimizationError(
            f"donor chromosomes cover {donors.shape[1]} tasks; donor trace "
            f"has {donor_types.shape[0]}"
        )
    if types.shape[0] != feasible.num_tasks:
        raise OptimizationError(
            f"task_types covers {types.shape[0]} tasks; feasible table has "
            f"{feasible.num_tasks}"
        )
    if max_seeds is not None:
        donors = donors[:max_seeds]
    rng = ensure_rng(rng_seed)
    S, T = donors.shape[0], types.shape[0]
    assignments = np.empty((S, T), dtype=np.int64)
    rows = np.arange(S)[:, None]
    for t in np.unique(types):
        at = np.flatnonzero(types == t)
        pool = np.flatnonzero(donor_types == t)
        if pool.size:
            # One draw matrix covers every seed row at once.
            picks = rng.integers(0, pool.size, size=(S, at.size))
            assignments[:, at] = donors[rows, pool[picks]]
        else:
            for s in range(S):
                assignments[s, at] = feasible.sample(at, rng)
    seeds: list[ResourceAllocation] = []
    for s in range(S):
        if s == 0 and arrival_order_first:
            order = np.arange(T, dtype=np.int64)
        else:
            order = rng.permutation(T).astype(np.int64)
        seeds.append(ResourceAllocation(
            machine_assignment=assignments[s], scheduling_order=order,
        ))
    return seeds
