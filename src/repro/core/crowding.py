"""Crowding distance (Deb et al. 2002; paper Algorithm 1, step 10).

"Crowding distance is a metric that penalizes chromosomes that are
densely packed together, and rewards chromosomes that are in remote
sections of the solution space" — used to truncate the last front that
fits into the next parent population, producing a more evenly spread
Pareto front.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OptimizationError
from repro.types import FloatArray

__all__ = ["crowding_distance", "crowding_by_front", "crowding_truncate"]


def crowding_distance(points: FloatArray) -> FloatArray:
    """Crowding distance of each point within one front.

    Boundary points on each objective get infinite distance; interior
    points get the sum over objectives of the normalized gap between
    their neighbours in that objective's sorted order.  Senses do not
    matter (distances are symmetric under axis negation), so raw
    objective values can be passed directly.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise OptimizationError(f"points must be 2-D; got shape {pts.shape}")
    n, m = pts.shape
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n, dtype=np.float64)
    for k in range(m):  # loop over the 2 objectives only
        order = np.argsort(pts[:, k], kind="stable")
        vals = pts[order, k]
        span = vals[-1] - vals[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue  # all equal on this axis: contributes nothing
        gaps = (vals[2:] - vals[:-2]) / span
        distance[order[1:-1]] += gaps
    return distance


def crowding_by_front(points: FloatArray, ranks) -> FloatArray:
    """Per-point crowding distance, computed within each front of *ranks*.

    The NSGA-II tournament comparator needs every point's crowding
    distance relative to its own front.  Infinite boundary distances are
    kept; NaNs (possible only with non-finite objectives) are mapped to
    0 so the comparator stays total.  Equals, number for number, the
    per-front ``crowding_distance`` calls the engine used before ranks
    and crowding were shared across selection stages.
    """
    from repro.core.sorting import fronts_from_ranks

    pts = np.asarray(points, dtype=np.float64)
    crowding = np.zeros(pts.shape[0], dtype=np.float64)
    for front in fronts_from_ranks(ranks):
        crowding[front] = np.nan_to_num(
            crowding_distance(pts[front]), posinf=np.inf
        )
    return crowding


def crowding_truncate(points: FloatArray, keep: int) -> np.ndarray:
    """Indices of the *keep* most-spread points of one front.

    Used in Algorithm 1 step 10: "for solutions from the highest rank
    number used, take a subset based on crowding distance".  Ties are
    broken by index for determinism.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if keep < 0:
        raise OptimizationError(f"keep must be >= 0, got {keep}")
    if keep >= n:
        return np.arange(n)
    dist = crowding_distance(pts)
    # Descending distance, ties by ascending index (stable sort of -dist).
    order = np.argsort(-dist, kind="stable")
    return np.sort(order[:keep])
