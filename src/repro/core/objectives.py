"""Objective-space conventions for the bi-objective problem.

The paper's two objectives pull in opposite directions: **minimize**
total energy consumed and **maximize** total utility earned.  All core
algorithms (dominance, sorting, crowding, indicators) operate on raw
``(energy, utility)`` pairs through :class:`BiObjectiveSpace`, which
owns the sense of each axis — so no ``-utility`` sign-flipping leaks
into calling code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizationError
from repro.types import FloatArray

__all__ = ["ObjectiveSense", "BiObjectiveSpace", "ENERGY_UTILITY"]


class ObjectiveSense(enum.Enum):
    """Direction of improvement for one objective axis."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"

    @property
    def sign(self) -> float:
        """Multiplier mapping the axis onto a minimization axis."""
        return 1.0 if self is ObjectiveSense.MINIMIZE else -1.0


@dataclass(frozen=True, slots=True)
class BiObjectiveSpace:
    """A two-axis objective space with per-axis senses and names.

    Attributes
    ----------
    senses:
        Improvement direction of each axis.
    names:
        Axis labels for reports.
    """

    senses: tuple[ObjectiveSense, ObjectiveSense]
    names: tuple[str, str] = ("f0", "f1")

    def to_minimization(self, points: FloatArray) -> FloatArray:
        """Map raw points onto all-minimization axes (for generic math).

        Parameters
        ----------
        points:
            ``(N, 2)`` raw objective values.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise OptimizationError(
                f"points must have shape (N, 2); got {pts.shape}"
            )
        signs = np.array([s.sign for s in self.senses])
        return pts * signs

    def better_or_equal(self, a: FloatArray, b: FloatArray) -> np.ndarray:
        """Per-axis 'a at least as good as b' (broadcasting ok)."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        signs = np.array([s.sign for s in self.senses])
        return a * signs <= b * signs

    def strictly_better(self, a: FloatArray, b: FloatArray) -> np.ndarray:
        """Per-axis 'a strictly better than b' (broadcasting ok)."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        signs = np.array([s.sign for s in self.senses])
        return a * signs < b * signs

    def ideal_point(self, points: FloatArray) -> FloatArray:
        """Componentwise best over *points* (in raw units)."""
        mins = self.to_minimization(points).min(axis=0)
        signs = np.array([s.sign for s in self.senses])
        return mins * signs

    def nadir_point(self, points: FloatArray) -> FloatArray:
        """Componentwise worst over *points* (in raw units)."""
        maxs = self.to_minimization(points).max(axis=0)
        signs = np.array([s.sign for s in self.senses])
        return maxs * signs


#: The paper's objective space: (energy minimized, utility maximized).
ENERGY_UTILITY = BiObjectiveSpace(
    senses=(ObjectiveSense.MINIMIZE, ObjectiveSense.MAXIMIZE),
    names=("energy (J)", "utility"),
)
