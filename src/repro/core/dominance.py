"""Solution dominance (paper Section IV-C, Figure 2).

"For one solution to dominate another, it must be better than the other
solution in at least one objective, and better than or equal in the
other objective."  All functions default to the paper's
energy-minimize/utility-maximize space but accept any
:class:`~repro.core.objectives.BiObjectiveSpace`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.objectives import BiObjectiveSpace, ENERGY_UTILITY
from repro.errors import OptimizationError
from repro.types import BoolArray, FloatArray

__all__ = ["dominates", "dominance_matrix", "nondominated_mask", "pareto_filter"]


def dominates(
    a: Sequence[float],
    b: Sequence[float],
    space: BiObjectiveSpace = ENERGY_UTILITY,
) -> bool:
    """Whether solution *a* dominates solution *b*.

    With the default space, ``a = (energy_a, utility_a)`` dominates
    ``b`` iff ``energy_a <= energy_b`` and ``utility_a >= utility_b``
    with at least one inequality strict (Figure 2's A-dominates-B).
    """
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != (2,) or b_arr.shape != (2,):
        raise OptimizationError(
            f"dominates expects two points of shape (2,); got {a_arr.shape} "
            f"and {b_arr.shape}"
        )
    at_least = space.better_or_equal(a_arr, b_arr)
    strictly = space.strictly_better(a_arr, b_arr)
    return bool(at_least.all() and strictly.any())


def dominance_matrix(
    points: FloatArray, space: BiObjectiveSpace = ENERGY_UTILITY
) -> BoolArray:
    """``D[i, j] = True`` iff point *i* dominates point *j* (O(N²) memory).

    Vectorized with broadcasting; intended for population-size inputs
    (the NSGA-II meta-population), not for whole archives.
    """
    pts = space.to_minimization(points)
    n = pts.shape[0]
    le = (pts[:, None, :] <= pts[None, :, :]).all(axis=2)
    lt = (pts[:, None, :] < pts[None, :, :]).any(axis=2)
    dom = le & lt
    np.fill_diagonal(dom, False)
    return dom


def nondominated_mask(
    points: FloatArray, space: BiObjectiveSpace = ENERGY_UTILITY
) -> BoolArray:
    """Boolean mask of points not dominated by any other point.

    Uses an O(N log N) sweep specialized to two objectives: sort by the
    first minimization axis (ties: second axis), then a prefix-minimum
    scan of the second axis identifies dominated points.  Duplicate
    points are all retained (none dominates its copy).
    """
    pts = space.to_minimization(points)
    if pts.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    n = pts.shape[0]
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    sorted_pts = pts[order]
    mask_sorted = np.ones(n, dtype=bool)

    # A point is dominated iff some point earlier in the sort (<= on
    # axis 0) has a strictly smaller axis-1 value, or has an equal
    # axis-1 value with a strictly smaller axis-0 value.
    best1 = np.minimum.accumulate(sorted_pts[:, 1])
    prev_best1 = np.concatenate(([np.inf], best1[:-1]))
    strictly_worse1 = sorted_pts[:, 1] > prev_best1
    # Equal axis-1 to the running best: dominated only if some earlier
    # point achieving that best had a strictly smaller axis-0 value.
    eq_best = sorted_pts[:, 1] == prev_best1
    # First index achieving each running-best value of axis 1.
    first_idx_of_best = np.zeros(n, dtype=np.int64)
    cur_first = 0
    for i in range(1, n):  # small scalar loop only over N (population size)
        if best1[i] < best1[i - 1]:
            cur_first = i
        first_idx_of_best[i] = cur_first
    axis0_of_best = sorted_pts[first_idx_of_best, 0]
    dominated_eq = eq_best & (axis0_of_best < sorted_pts[:, 0])
    mask_sorted &= ~(strictly_worse1 | dominated_eq)

    mask = np.empty(n, dtype=bool)
    mask[order] = mask_sorted
    return mask


def pareto_filter(
    points: FloatArray,
    space: BiObjectiveSpace = ENERGY_UTILITY,
    return_indices: bool = False,
):
    """The nondominated subset of *points* (optionally with indices)."""
    pts = np.asarray(points, dtype=np.float64)
    mask = nondominated_mask(pts, space)
    if return_indices:
        return pts[mask], np.flatnonzero(mask)
    return pts[mask]
