"""Gene/chromosome encoding (paper Section IV-D).

"Genes represent the basic data structure of the genetic algorithm.
For our problem, a gene represents a task. Each gene contains: the
machine the gene will operate on, the arrival time of the task, and
the global scheduling order of the task."

The engine itself works on packed arrays (one ``(N, T)`` matrix per
gene field — struct-of-arrays, per the HPC guides); these classes are
the API-level view used by examples, seed construction, and tests, and
convert losslessly to/from :class:`~repro.sim.schedule.ResourceAllocation`.
Arrival times are a property of the *trace*, not of the individual
chromosome (every chromosome of a run shares them), so they are carried
by reference here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import OptimizationError
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray, IntArray
from repro.workload.trace import Trace

__all__ = ["Gene", "Chromosome"]


@dataclass(frozen=True, slots=True)
class Gene:
    """One task's allele: machine, arrival time, global scheduling order."""

    task: int
    machine: int
    arrival_time: float
    scheduling_order: int


@dataclass(frozen=True)
class Chromosome:
    """A complete resource allocation in GA clothing.

    Attributes
    ----------
    machine_assignment, scheduling_order:
        ``(T,)`` arrays; gene *i* corresponds to the *i*-th task of the
        trace ordered by arrival (the paper's positional convention).
    trace:
        The shared workload trace (supplies arrival times).
    """

    machine_assignment: IntArray
    scheduling_order: IntArray
    trace: Trace

    def __post_init__(self) -> None:
        assignment = np.asarray(self.machine_assignment, dtype=np.int64)
        order = np.asarray(self.scheduling_order, dtype=np.int64)
        if assignment.shape != (self.trace.num_tasks,):
            raise OptimizationError(
                f"chromosome assignment shape {assignment.shape} does not "
                f"match trace size {self.trace.num_tasks}"
            )
        if order.shape != assignment.shape:
            raise OptimizationError("order and assignment shapes differ")
        object.__setattr__(self, "machine_assignment", assignment)
        object.__setattr__(self, "scheduling_order", order)

    @property
    def num_genes(self) -> int:
        """Number of genes (== tasks in the trace)."""
        return self.trace.num_tasks

    def gene(self, i: int) -> Gene:
        """The *i*-th gene."""
        if not (0 <= i < self.num_genes):
            raise OptimizationError(
                f"gene index {i} out of range [0, {self.num_genes})"
            )
        return Gene(
            task=i,
            machine=int(self.machine_assignment[i]),
            arrival_time=float(self.trace.arrival_times[i]),
            scheduling_order=int(self.scheduling_order[i]),
        )

    def __iter__(self) -> Iterator[Gene]:
        for i in range(self.num_genes):
            yield self.gene(i)

    def to_allocation(self) -> ResourceAllocation:
        """The phenotype consumed by the simulator."""
        return ResourceAllocation(
            machine_assignment=self.machine_assignment,
            scheduling_order=self.scheduling_order,
        )

    @classmethod
    def from_allocation(
        cls, allocation: ResourceAllocation, trace: Trace
    ) -> "Chromosome":
        """Wrap an allocation produced by a heuristic."""
        return cls(
            machine_assignment=allocation.machine_assignment,
            scheduling_order=allocation.scheduling_order,
            trace=trace,
        )
