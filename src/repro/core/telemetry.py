"""Per-generation telemetry for NSGA-II runs.

A :class:`TelemetryRecorder` is a progress callback (``run(...,
progress=recorder)``) that samples the engine every generation:
front size, hypervolume against a fixed reference, best/worst
objective values, and wall-clock pacing.  Rows export to CSV for
convergence plots finer-grained than the checkpoint snapshots.

Kept separate from the engine on purpose: the engine's loop stays
minimal, and recorders compose (wrap several with :func:`compose`).
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.analysis.indicators import hypervolume
from repro.errors import OptimizationError
from repro.types import FloatArray

__all__ = ["GenerationStats", "StageTimings", "TelemetryRecorder", "compose"]


class StageTimings:
    """Accumulated wall-clock per named hot-loop stage.

    The engine records the duration of each generation stage
    (``selection`` / ``variation`` / ``evaluate`` / ``environmental``)
    into one of these; benchmarks and recorders read the aggregate.
    Overhead is two ``perf_counter`` calls and one dict update per
    stage per generation — negligible against the stages themselves.
    """

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def record(self, stage: str, seconds: float) -> None:
        """Add one timed occurrence of *stage*."""
        self.totals[stage] = self.totals.get(stage, 0.0) + seconds
        self.counts[stage] = self.counts.get(stage, 0) + 1

    def mean_ms(self, stage: str) -> float:
        """Mean duration of *stage* in milliseconds (0.0 if never seen)."""
        count = self.counts.get(stage, 0)
        if count == 0:
            return 0.0
        return self.totals[stage] / count * 1000.0

    def as_dict(self) -> dict:
        """``{stage: {"total_s", "count", "mean_ms"}}`` for serialization.

        Keys are sorted by stage name so serialized timings are stable
        across runs (diff-friendly artifacts, deterministic JSON).
        """
        return {
            stage: {
                "total_s": self.totals[stage],
                "count": self.counts[stage],
                "mean_ms": self.mean_ms(stage),
            }
            for stage in sorted(self.totals)
        }

    def reset(self) -> None:
        """Drop all accumulated timings."""
        self.totals.clear()
        self.counts.clear()


@dataclass(frozen=True, slots=True)
class GenerationStats:
    """One sampled generation."""

    generation: int
    front_size: int
    hypervolume: float
    min_energy: float
    max_utility: float
    mean_energy: float
    mean_utility: float
    seconds_since_start: float


class TelemetryRecorder:
    """Progress callback recording per-generation statistics.

    Parameters
    ----------
    reference:
        Fixed hypervolume reference point (energy, utility), worse than
        anything reachable.
    every:
        Sample every this-many generations (1 = all).
    start:
        Epoch for ``seconds_since_start`` as a ``time.perf_counter()``
        value; defaults to construction time.  Pass the original
        recorder's ``started_at`` when rebuilding one mid-run (e.g.
        around a checkpoint resume) so the pacing column stays on one
        clock instead of silently re-anchoring at the first callback.
    """

    def __init__(
        self,
        reference: tuple[float, float],
        every: int = 1,
        start: Optional[float] = None,
    ) -> None:
        if every < 1:
            raise OptimizationError(f"every must be >= 1, got {every}")
        self.reference = reference
        self.every = every
        self.rows: list[GenerationStats] = []
        self._t0: float = time.perf_counter() if start is None else start

    @property
    def started_at(self) -> float:
        """The ``perf_counter`` epoch pacing is measured from."""
        return self._t0

    def __call__(self, generation: int, engine) -> None:
        """The progress-callback protocol: (generation, engine)."""
        if generation % self.every != 0:
            return
        pts, _ = engine.current_front()
        objectives = engine.population.objectives
        self.rows.append(
            GenerationStats(
                generation=generation,
                front_size=int(pts.shape[0]),
                hypervolume=hypervolume(pts, self.reference),
                min_energy=float(pts[:, 0].min()),
                max_utility=float(pts[:, 1].max()),
                mean_energy=float(objectives[:, 0].mean()),
                mean_utility=float(objectives[:, 1].mean()),
                seconds_since_start=time.perf_counter() - self._t0,
            )
        )

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def series(self, field: str) -> FloatArray:
        """One column across generations (e.g. ``"hypervolume"``)."""
        if not self.rows:
            raise OptimizationError("no telemetry recorded yet")
        try:
            return np.array([getattr(r, field) for r in self.rows])
        except AttributeError as exc:
            available = [f.name for f in fields(GenerationStats)]
            raise OptimizationError(
                f"unknown telemetry field {field!r}; available: {available}"
            ) from exc

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write all rows as CSV."""
        names = [f.name for f in fields(GenerationStats)]
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(names)
            for row in self.rows:
                writer.writerow([getattr(row, f) for f in names])


def compose(*callbacks: Callable[[int, object], None]):
    """Combine several progress callbacks into one.

    Callbacks run in the order given and the combination is
    **fail-fast**: if one raises, the exception propagates to the
    engine's loop and the *remaining* callbacks are skipped for that
    generation.  A telemetry sink that should never abort a run must
    catch its own exceptions.
    """
    if not callbacks:
        raise OptimizationError("compose requires at least one callback")

    def combined(generation: int, engine) -> None:
        for callback in callbacks:
            callback(generation, engine)

    return combined
