"""SPEA2 — Strength Pareto Evolutionary Algorithm 2 (Zitzler et al. 2001).

A second MOEA over the paper's chromosome encoding, plugged into the
:class:`~repro.core.algorithm.EvolutionaryAlgorithm` template:

* **Fitness** — every individual's *strength* is the number of
  individuals it dominates; its *raw fitness* is the summed strength of
  its dominators (0 ⇔ nondominated).  A k-nearest-neighbour *density*
  term ``1 / (σ_k + 2) ∈ (0, 0.5)`` breaks ties among equally ranked
  points, with ``k = floor(sqrt(N))`` and distances measured in
  range-normalized objective space.
* **Mating selection** — binary tournament on fitness (lower is
  better, ties broken by index for determinism).
* **Replacement** — the next population is the nondominated set of the
  parent+offspring meta-population; if it overflows, it is truncated by
  iteratively removing the point with the smallest distance to its
  nearest neighbour (lexicographic on the sorted distance vector),
  which preserves boundary points; if it underflows, the best-fitness
  dominated points fill the remainder.

The population doubles as SPEA2's archive (the common
"archive-as-population" formulation), so the engine state remains
exactly a population plus counters — pre-existing checkpoint and
parallel-engine machinery applies unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.algorithm import EvolutionaryAlgorithm
from repro.core.objectives import BiObjectiveSpace, ENERGY_UTILITY
from repro.core.population import Population
from repro.errors import OptimizationError
from repro.types import FloatArray, IntArray

__all__ = ["SPEA2", "spea2_fitness"]


def spea2_fitness(
    objectives: FloatArray, space: BiObjectiveSpace = ENERGY_UTILITY
) -> FloatArray:
    """SPEA2 fitness (raw dominance fitness + k-NN density) per point.

    Values below 1 identify the nondominated set; lower is better.
    """
    pts = space.to_minimization(np.asarray(objectives, dtype=np.float64))
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise OptimizationError(
            f"objectives must have shape (N, 2); got {pts.shape}"
        )
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.float64)
    # dominates[i, j]: i dominates j (componentwise <=, somewhere <).
    le = (pts[:, None, :] <= pts[None, :, :]).all(axis=2)
    lt = (pts[:, None, :] < pts[None, :, :]).any(axis=2)
    dominates = le & lt
    strength = dominates.sum(axis=1).astype(np.float64)
    raw = (strength[:, None] * dominates).sum(axis=0)
    # Density: distance to the k-th nearest neighbour in normalized space.
    span = pts.max(axis=0) - pts.min(axis=0)
    span = np.where(span > 0, span, 1.0)
    norm = pts / span
    dist = np.sqrt(((norm[:, None, :] - norm[None, :, :]) ** 2).sum(axis=2))
    k = min(int(np.sqrt(n)), n - 1)
    sigma = np.sort(dist, axis=1)[:, k] if n > 1 else np.zeros(1)
    density = 1.0 / (sigma + 2.0)
    return raw + density


def _truncate_by_nearest_neighbor(
    objectives: FloatArray, keep: int, space: BiObjectiveSpace
) -> np.ndarray:
    """SPEA2 archive truncation: drop the most crowded points one by one.

    Returns the (sorted, ascending) indices of the *keep* survivors.
    Each iteration removes the point whose sorted distance vector to
    the remaining points is lexicographically smallest — the canonical
    SPEA2 rule, which never removes boundary points first.
    """
    pts = space.to_minimization(np.asarray(objectives, dtype=np.float64))
    n = pts.shape[0]
    span = pts.max(axis=0) - pts.min(axis=0)
    span = np.where(span > 0, span, 1.0)
    norm = pts / span
    dist = np.sqrt(((norm[:, None, :] - norm[None, :, :]) ** 2).sum(axis=2))
    np.fill_diagonal(dist, np.inf)
    alive = np.ones(n, dtype=bool)
    for _ in range(n - keep):
        rows = np.flatnonzero(alive)
        sub = np.sort(dist[np.ix_(rows, rows)], axis=1)
        # Lexicographic comparison of sorted distance vectors: find the
        # minimum row.  np.lexsort sorts by last key first, so feed the
        # columns in reverse significance order.
        order = np.lexsort(tuple(sub[:, c] for c in range(sub.shape[1] - 1, -1, -1)))
        alive[rows[order[0]]] = False
    return np.flatnonzero(alive)


class SPEA2(EvolutionaryAlgorithm):
    """SPEA2 bound to a schedule evaluator.

    Constructor parameters are those of
    :class:`~repro.core.algorithm.Algorithm`; ``config.operators``
    drives the shared crossover/mutation operators while
    ``parent_selection`` is ignored (SPEA2's mating selection is always
    a fitness tournament).
    """

    name = "spea2"

    # -- hooks -----------------------------------------------------------------

    def _mating_selection(self, parents: Population) -> Optional[IntArray]:
        fitness = spea2_fitness(parents.objectives)
        n = parents.size
        n_ops = self._offspring_pairs()
        candidates = self._rng.integers(0, n, size=(n_ops, 2, 2))
        a = candidates[..., 0]
        b = candidates[..., 1]
        a_wins = (fitness[a] < fitness[b]) | (
            (fitness[a] == fitness[b]) & (a <= b)
        )
        return np.where(a_wins, a, b)

    def _replacement(
        self, parents: Population, offspring: Population
    ) -> Population:
        meta = parents.concatenate(offspring)
        fitness = spea2_fitness(meta.objectives)
        N = self.config.population_size
        nondominated = np.flatnonzero(fitness < 1.0)
        if nondominated.size > N:
            survivors = _truncate_by_nearest_neighbor(
                meta.objectives[nondominated], N, ENERGY_UTILITY
            )
            indices = nondominated[survivors]
        elif nondominated.size < N:
            dominated = np.flatnonzero(fitness >= 1.0)
            fill = dominated[
                np.argsort(fitness[dominated], kind="stable")[: N - nondominated.size]
            ]
            indices = np.sort(np.concatenate([nondominated, fill]))
        else:
            indices = nondominated
        return meta.select(indices)
