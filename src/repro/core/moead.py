"""MOEA/D — decomposition-based multi-objective optimization (Zhang & Li 2007).

The bi-objective problem is decomposed into ``N`` scalar subproblems,
one per population slot, each minimizing the Tchebycheff aggregation

    g(x | w, z*) = max_i  w_i * (f_i(x) - z*_i)

of the minimization-space objectives against the running ideal point
``z*``, under uniformly spread weight vectors ``w_i = (i/(N-1),
1-i/(N-1))``.  Each subproblem mates within a neighbourhood of the
``T`` closest weight vectors and an accepted child may replace at most
``nr`` neighbouring incumbents — the locality that gives MOEA/D its
even front coverage.

This implementation is the *batch-generational* variant: all N
offspring are produced first (parents drawn from each subproblem's
neighbourhood, range-swap crossover + mutation from the shared operator
pool) and evaluated in one vectorized batch — matching the repo's
batch-evaluation architecture — then replacement scans the offspring in
subproblem order applying the bounded neighbourhood updates.  Because
crossover produces two children per operation, operation ``j`` mates
within the neighbourhood of subproblem ``2j`` and its children serve
subproblems ``2j`` and ``2j+1`` (adjacent weight vectors share most of
their neighbourhoods).

The running ideal point is the only state outside the population, and
is persisted through the ``algo_state`` checkpoint hook so resumed runs
stay bit-identical.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

import numpy as np

from repro.core.algorithm import EvolutionaryAlgorithm
from repro.core.objectives import ENERGY_UTILITY
from repro.core.population import Population
from repro.errors import OptimizationError
from repro.types import IntArray

__all__ = ["MOEAD"]


class MOEAD(EvolutionaryAlgorithm):
    """MOEA/D with Tchebycheff decomposition over (energy, utility).

    Parameters
    ----------
    neighborhood_size:
        Subproblems mate and replace within this many nearest weight
        vectors (default ``min(20, N)``).
    replace_limit:
        ``nr`` — at most this many neighbourhood incumbents may be
        replaced per offspring (default 2), preventing one strong child
        from colonizing a whole neighbourhood.
    Other parameters are those of
    :class:`~repro.core.algorithm.Algorithm`.  ``offspring_size`` is
    pinned to the population size (one child per subproblem);
    ``operators.parent_selection`` is ignored.
    """

    name = "moead"

    def __init__(
        self,
        *args,
        neighborhood_size: int = 20,
        replace_limit: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        # One offspring per subproblem, produced via the explicit
        # crossover path (ceil(N/2) operations truncated to N).
        self.config = replace(
            self.config, offspring_size=self.config.population_size
        )
        N = self.config.population_size
        if replace_limit < 1:
            raise OptimizationError(
                f"replace_limit must be >= 1, got {replace_limit}"
            )
        self.neighborhood_size = max(2, min(int(neighborhood_size), N))
        self.replace_limit = int(replace_limit)
        # Uniform weights; a small floor keeps the Tchebycheff term of
        # both axes active at the extremes.
        t = np.linspace(0.0, 1.0, N)
        self.weights = np.column_stack([t, 1.0 - t])
        self.weights = np.maximum(self.weights, 1e-6)
        # Neighbourhoods: indices of the T nearest weight vectors.
        d = np.abs(self.weights[:, None, 0] - self.weights[None, :, 0])
        self.neighborhoods = np.argsort(d, axis=1, kind="stable")[
            :, : self.neighborhood_size
        ]
        # Running ideal point in minimization space, seeded from the
        # initial population.
        self._ideal = ENERGY_UTILITY.to_minimization(
            self.population.objectives
        ).min(axis=0)

    # -- decomposition ---------------------------------------------------------

    def _tchebycheff(self, fmin: np.ndarray, subproblems: np.ndarray) -> np.ndarray:
        """g(x | w, z*) for minimization-space points against subproblems.

        ``fmin``: ``(K, 2)`` points; ``subproblems``: ``(K,)`` weight
        indices; returns ``(K,)`` scalarized values.
        """
        w = self.weights[subproblems]
        return (w * (fmin - self._ideal[None, :])).max(axis=1)

    # -- hooks -----------------------------------------------------------------

    def _mating_selection(self, parents: Population) -> Optional[IntArray]:
        n_ops = self._offspring_pairs()
        # Operation j draws both parents from the neighbourhood of
        # subproblem 2j.
        subproblems = np.minimum(
            2 * np.arange(n_ops), self.config.population_size - 1
        )
        picks = self._rng.integers(
            0, self.neighborhood_size, size=(n_ops, 2)
        )
        return self.neighborhoods[subproblems[:, None], picks]

    def _replacement(
        self, parents: Population, offspring: Population
    ) -> Population:
        space = ENERGY_UTILITY
        child_fmin = space.to_minimization(offspring.objectives)
        # Update the ideal point from the whole offspring batch first —
        # every comparison below then uses one consistent z*.
        self._ideal = np.minimum(self._ideal, child_fmin.min(axis=0))
        assignments = parents.assignments.copy()
        orders = parents.orders.copy()
        energies = parents.energies.copy()
        utilities = parents.utilities.copy()
        fmin = space.to_minimization(
            np.column_stack([energies, utilities])
        )
        for i in range(offspring.size):
            neighborhood = self.neighborhoods[i]
            g_child = self._tchebycheff(
                np.broadcast_to(child_fmin[i], (neighborhood.size, 2)),
                neighborhood,
            )
            g_incumbent = self._tchebycheff(fmin[neighborhood], neighborhood)
            better = np.flatnonzero(g_child < g_incumbent)
            for j in neighborhood[better[: self.replace_limit]]:
                assignments[j] = offspring.assignments[i]
                orders[j] = offspring.orders[i]
                energies[j] = offspring.energies[i]
                utilities[j] = offspring.utilities[i]
                fmin[j] = child_fmin[i]
        return Population(
            assignments=assignments,
            orders=orders,
            energies=energies,
            utilities=utilities,
        )

    # -- checkpointing ---------------------------------------------------------

    def _capture_algo_state(self) -> dict[str, Any]:
        return {"ideal": [float(self._ideal[0]), float(self._ideal[1])]}

    def _restore_algo_state(self, doc: dict[str, Any]) -> None:
        if "ideal" in doc:
            self._ideal = np.asarray(doc["ideal"], dtype=np.float64)
        else:
            # Pre-redesign checkpoint: rebuild z* from the restored
            # population (the best reconstruction available).
            self._ideal = ENERGY_UTILITY.to_minimization(
                self.population.objectives
            ).min(axis=0)
