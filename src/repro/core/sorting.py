"""Nondominated sorting (paper Section IV-D, step 7 of Algorithm 1).

Two rankings are provided:

* :func:`fast_nondominated_sort` — Deb's front-peeling ranks as used by
  NSGA-II proper: front 1 is the nondominated set; front *k* is the set
  nondominated once fronts ``< k`` are removed.  This is what the
  engine uses for environmental selection.
* :func:`domination_count_ranks` — the paper's literal sentence "a
  solution's rank can be found by taking 1 + the number of solutions
  that dominate it".  For two-objective populations both rankings agree
  on rank 1 (the Pareto set) but may differ beyond it; tests pin down
  the relationship (front rank <= domination-count rank).

For two objectives the front-peeling ranks admit an O(N log N)
sort-and-sweep formulation (Jensen 2003): sorted lexicographically on
the minimization axes, an earlier point dominates a later one iff its
second axis is <= the later point's, so each point's rank is the length
of the longest weakly-increasing second-axis subsequence ending at it —
a patience-sorting sweep.  :func:`fast_nondominated_sort` uses the
sweep by default and keeps the O(N²) dominance-matrix path as a
cross-checked reference (``method="matrix"``); both produce identical
ranks (front peeling has a unique result), asserted by
``tests/test_core_sorting_sweep.py``.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.core.dominance import dominance_matrix
from repro.core.objectives import BiObjectiveSpace, ENERGY_UTILITY
from repro.errors import OptimizationError
from repro.types import FloatArray, IntArray

__all__ = ["fast_nondominated_sort", "domination_count_ranks", "fronts_from_ranks"]


def _sweep_ranks(pts_min: FloatArray) -> IntArray:
    """Front ranks of minimization-oriented ``(N, 2)`` points, O(N log N).

    Duplicate points never dominate each other, so exact duplicates are
    collapsed first and share one rank.  For the deduplicated points in
    lexicographic ``(x asc, y asc)`` order, an earlier point dominates a
    later one iff its y is <= the later y; the rank of each point is
    therefore ``1 + max(rank of earlier points with y <= its y)``,
    computed by a patience sweep over ``front_min_y`` — the per-front
    minimum y seen so far, which stays sorted ascending.
    """
    n = pts_min.shape[0]
    order = np.lexsort((pts_min[:, 1], pts_min[:, 0]))
    sp = pts_min[order]
    is_new = np.empty(n, dtype=bool)
    is_new[0] = True
    np.any(sp[1:] != sp[:-1], axis=1, out=is_new[1:])
    uid = np.cumsum(is_new) - 1  # unique-point id per sorted position
    y_unique = sp[is_new, 1].tolist()  # python floats: fast bisect
    ranks_unique = np.empty(len(y_unique), dtype=np.int64)
    front_min_y: list[float] = []
    for i, yi in enumerate(y_unique):
        # Number of fronts whose minimum y is <= yi == number of fronts
        # containing a dominator of this point.
        r = bisect_right(front_min_y, yi)
        if r == len(front_min_y):
            front_min_y.append(yi)
        else:
            front_min_y[r] = yi  # yi < current minimum of front r
        ranks_unique[i] = r + 1
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = ranks_unique[uid]
    return ranks


def _matrix_ranks(pts: FloatArray, space: BiObjectiveSpace) -> IntArray:
    """Front ranks via the O(N²) dominance matrix (reference path)."""
    n = pts.shape[0]
    dom = dominance_matrix(pts, space)  # dom[i, j]: i dominates j
    counts = dom.sum(axis=0).astype(np.int64)  # dominators of each point
    ranks = np.zeros(n, dtype=np.int64)
    current = np.flatnonzero(counts == 0)
    rank = 1
    assigned = 0
    while current.size:
        ranks[current] = rank
        assigned += current.size
        # Remove the current front: decrement counts of points they
        # dominate, then the next front is the newly count-zero set.
        counts[current] = -1  # never selected again
        decrement = dom[current].sum(axis=0)
        counts = counts - decrement
        current = np.flatnonzero(counts == 0)
        rank += 1
    if assigned != n:
        raise OptimizationError(
            "nondominated sort failed to assign every point a rank "
            f"({assigned}/{n}); this indicates a dominance-matrix bug"
        )
    return ranks


def fast_nondominated_sort(
    points: FloatArray,
    space: BiObjectiveSpace = ENERGY_UTILITY,
    method: str = "auto",
) -> IntArray:
    """Front ranks (1-based) of *points* by Deb's fast nondominated sort.

    Parameters
    ----------
    points:
        ``(N, 2)`` raw objective values.
    space:
        Axis senses (default: energy minimized, utility maximized).
    method:
        ``"auto"`` (default) — the O(N log N) bi-objective sweep, falling
        back to the matrix for non-finite inputs; ``"sweep"`` — force
        the sweep; ``"matrix"`` — the O(N²) dominance-matrix reference.

    Returns
    -------
    ``(N,)`` int array; rank 1 is the current Pareto-optimal set.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise OptimizationError(f"points must have shape (N, 2); got {pts.shape}")
    if method not in ("auto", "sweep", "matrix"):
        raise OptimizationError(
            f"method must be 'auto', 'sweep', or 'matrix'; got {method!r}"
        )
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if method == "matrix":
        return _matrix_ranks(pts, space)
    pts_min = space.to_minimization(pts)
    if method == "auto" and np.isnan(pts_min).any():
        # NaN has no lexicographic position; preserve the matrix path's
        # (comparison-based) behaviour for degenerate inputs.
        return _matrix_ranks(pts, space)
    return _sweep_ranks(pts_min)


def domination_count_ranks(
    points: FloatArray, space: BiObjectiveSpace = ENERGY_UTILITY
) -> IntArray:
    """The paper's literal rank: 1 + number of dominating solutions."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    dom = dominance_matrix(pts, space)
    return 1 + dom.sum(axis=0).astype(np.int64)


def fronts_from_ranks(ranks: IntArray) -> list[IntArray]:
    """Group point indices by rank, ascending (front 1 first)."""
    ranks = np.asarray(ranks, dtype=np.int64)
    if ranks.size == 0:
        return []
    return [
        np.flatnonzero(ranks == r) for r in range(1, int(ranks.max()) + 1)
        if np.any(ranks == r)
    ]
