"""Nondominated sorting (paper Section IV-D, step 7 of Algorithm 1).

Two rankings are provided:

* :func:`fast_nondominated_sort` — Deb's front-peeling ranks as used by
  NSGA-II proper: front 1 is the nondominated set; front *k* is the set
  nondominated once fronts ``< k`` are removed.  This is what the
  engine uses for environmental selection.
* :func:`domination_count_ranks` — the paper's literal sentence "a
  solution's rank can be found by taking 1 + the number of solutions
  that dominate it".  For two-objective populations both rankings agree
  on rank 1 (the Pareto set) but may differ beyond it; tests pin down
  the relationship (front rank <= domination-count rank).
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import dominance_matrix
from repro.core.objectives import BiObjectiveSpace, ENERGY_UTILITY
from repro.errors import OptimizationError
from repro.types import FloatArray, IntArray

__all__ = ["fast_nondominated_sort", "domination_count_ranks", "fronts_from_ranks"]


def fast_nondominated_sort(
    points: FloatArray, space: BiObjectiveSpace = ENERGY_UTILITY
) -> IntArray:
    """Front ranks (1-based) of *points* by Deb's fast nondominated sort.

    Returns
    -------
    ``(N,)`` int array; rank 1 is the current Pareto-optimal set.

    Implementation: the O(N²) dominance matrix once (vectorized), then
    iterative peeling with domination counts — the standard NSGA-II
    bookkeeping, loop only over fronts.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise OptimizationError(f"points must have shape (N, 2); got {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    dom = dominance_matrix(pts, space)  # dom[i, j]: i dominates j
    counts = dom.sum(axis=0).astype(np.int64)  # dominators of each point
    ranks = np.zeros(n, dtype=np.int64)
    current = np.flatnonzero(counts == 0)
    rank = 1
    assigned = 0
    while current.size:
        ranks[current] = rank
        assigned += current.size
        # Remove the current front: decrement counts of points they
        # dominate, then the next front is the newly count-zero set.
        counts[current] = -1  # never selected again
        decrement = dom[current].sum(axis=0)
        counts = counts - decrement
        current = np.flatnonzero(counts == 0)
        rank += 1
    if assigned != n:
        raise OptimizationError(
            "nondominated sort failed to assign every point a rank "
            f"({assigned}/{n}); this indicates a dominance-matrix bug"
        )
    return ranks


def domination_count_ranks(
    points: FloatArray, space: BiObjectiveSpace = ENERGY_UTILITY
) -> IntArray:
    """The paper's literal rank: 1 + number of dominating solutions."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    dom = dominance_matrix(pts, space)
    return 1 + dom.sum(axis=0).astype(np.int64)


def fronts_from_ranks(ranks: IntArray) -> list[IntArray]:
    """Group point indices by rank, ascending (front 1 first)."""
    ranks = np.asarray(ranks, dtype=np.int64)
    if ranks.size == 0:
        return []
    return [
        np.flatnonzero(ranks == r) for r in range(1, int(ranks.max()) + 1)
        if np.any(ranks == r)
    ]
