"""Pluggable multi-objective algorithm interface (template-method style).

The optimization core is organized the way jMetalPy organizes its
evolutionary templates: an :class:`Algorithm` owns the problem binding
(evaluator, feasibility tables, RNG stream, observability context) and
the run machinery (checkpointed :meth:`Algorithm.run`, criterion-driven
:meth:`Algorithm.run_until`, front snapshots), while
:class:`EvolutionaryAlgorithm` fixes the generational skeleton

    mating selection -> variation -> evaluation -> replacement

as four overridable hooks.  Concrete algorithms — NSGA-II
(:mod:`repro.core.nsga2`), SPEA2 (:mod:`repro.core.spea2`), MOEA/D
(:mod:`repro.core.moead`), the ε-dominance archive variant — are thin
compositions of those hooks; steady-state NSGA-II is nothing but
``offspring_size=1``.

Every hook draws from the single engine RNG in a fixed order, so a
composition that reproduces the legacy NSGA-II hook-for-hook is
bit-identical to the pre-refactor engine (asserted against golden
pre-refactor artifacts by ``tests/test_core_algorithm.py``).

Checkpointing is algorithm-agnostic: :mod:`repro.core.checkpoint`
captures the base state (population, counters, RNG) plus whatever the
algorithm reports from :meth:`Algorithm._capture_algo_state`; restoring
feeds that document back through
:meth:`Algorithm._restore_algo_state`.  Algorithms with no auxiliary
state (NSGA-II, SPEA2) inherit the empty default, which keeps
pre-refactor checkpoint files loading unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.dominance import nondominated_mask
from repro.core.operators import (
    FeasibleMachines,
    OperatorConfig,
    VariationOperators,
)
from repro.core.population import Population
from repro.core.seeding import seeded_initial_population
from repro.core.telemetry import StageTimings
from repro.errors import CheckpointError, OptimizationError
from repro.obs.context import NULL_CONTEXT, RunContext
from repro.rng import SeedLike, ensure_rng
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray, IntArray

__all__ = [
    "AlgorithmConfig",
    "GenerationSnapshot",
    "RunHistory",
    "Algorithm",
    "EvolutionaryAlgorithm",
]


@dataclass(frozen=True, slots=True, kw_only=True)
class AlgorithmConfig:
    """Parameters shared by every population-based algorithm.

    Replaces the old ``NSGA2Config`` (kept as a deprecation shim in
    :mod:`repro.core.nsga2`) and absorbs the driver-level
    ``mutation_probability`` knob that used to be duplicated between
    engine and experiment configs.  Keyword-only: every field must be
    named at the call site.

    Attributes
    ----------
    population_size:
        N — parent population size (paper example: 100).
    offspring_size:
        Offspring produced per generation.  ``None`` (default) keeps
        the legacy generational behaviour — ``N // 2`` crossover
        operations yielding N offspring (odd N clones one extra parent)
        on the historical RNG stream.  ``1`` gives steady-state
        evolution; any explicit value k runs ``ceil(k / 2)`` crossover
        operations truncated to k children.
    operators:
        Crossover/mutation configuration.
    mutation_probability:
        Convenience override: when set, replaces
        ``operators.mutation_probability`` (the knob experiment drivers
        expose).  ``None`` leaves the operator config untouched.
    store_front_solutions:
        Keep the chromosomes (not just objective points) of each
        checkpoint front.  Off by default to bound memory for long
        runs; the final front's chromosomes are always kept.
    fast_path:
        Use the O(N log N) bi-objective machinery: sweep nondominated
        sorting, vectorized environmental selection, and one shared
        ranks computation per generation (tournament selection reuses
        the ranks derived during the previous environmental selection).
        ``False`` runs the O(N²) dominance-matrix reference path; both
        produce bit-identical fronts for the same seed, asserted by
        ``tests/test_core_nsga2_fastpath.py``.
    order_sampling:
        How the initial population draws scheduling orders: ``"legacy"``
        (default) preserves the historical per-row ``rng.permutation``
        stream (checkpoint/seed compatible); ``"vectorized"`` draws one
        key matrix and argsorts it (faster, different stream).
    """

    population_size: int = 100
    offspring_size: Optional[int] = None
    operators: OperatorConfig = field(default_factory=OperatorConfig)
    mutation_probability: Optional[float] = None
    store_front_solutions: bool = False
    fast_path: bool = True
    order_sampling: str = "legacy"

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.offspring_size is not None and self.offspring_size < 1:
            raise OptimizationError(
                f"offspring_size must be >= 1, got {self.offspring_size}"
            )
        if self.order_sampling not in ("legacy", "vectorized"):
            raise OptimizationError(
                "order_sampling must be 'legacy' or 'vectorized'; got "
                f"{self.order_sampling!r}"
            )
        if self.mutation_probability is not None:
            object.__setattr__(
                self,
                "operators",
                replace(
                    self.operators,
                    mutation_probability=self.mutation_probability,
                ),
            )


@dataclass(frozen=True)
class GenerationSnapshot:
    """The rank-1 (Pareto) front of the population at one checkpoint.

    Attributes
    ----------
    generation:
        Generation count at the snapshot (0 = initial population).
    front_points:
        ``(F, 2)`` (energy, utility) points, sorted by energy.
    front_assignments, front_orders:
        ``(F, T)`` chromosome arrays when stored, else ``None``.
    evaluations:
        Cumulative chromosome evaluations at the snapshot.
    """

    generation: int
    front_points: FloatArray
    front_assignments: Optional[IntArray]
    front_orders: Optional[IntArray]
    evaluations: int

    @property
    def front_size(self) -> int:
        """Number of points on the snapshot front."""
        return int(self.front_points.shape[0])

    def best_utility_point(self) -> tuple[float, float]:
        """The (energy, utility) point with maximum utility."""
        i = int(np.argmax(self.front_points[:, 1]))
        return tuple(self.front_points[i])  # type: ignore[return-value]

    def best_energy_point(self) -> tuple[float, float]:
        """The (energy, utility) point with minimum energy."""
        i = int(np.argmin(self.front_points[:, 0]))
        return tuple(self.front_points[i])  # type: ignore[return-value]


@dataclass(frozen=True)
class RunHistory:
    """Everything one algorithm run produced."""

    label: str
    snapshots: tuple[GenerationSnapshot, ...]
    total_generations: int
    total_evaluations: int
    wall_seconds: float

    def snapshot_at(self, generation: int) -> GenerationSnapshot:
        """The snapshot recorded at exactly *generation*."""
        for snap in self.snapshots:
            if snap.generation == generation:
                return snap
        raise OptimizationError(
            f"no snapshot at generation {generation}; available: "
            f"{[s.generation for s in self.snapshots]}"
        )

    @property
    def final(self) -> GenerationSnapshot:
        """The last snapshot (the run's final Pareto front)."""
        return self.snapshots[-1]


class Algorithm:
    """One population-based optimization bound to an evaluator.

    The base class owns everything that is not algorithm-specific: the
    seeded initial population, the RNG stream, the snapshot machinery,
    the checkpointed :meth:`run` loop and the criterion-driven
    :meth:`run_until` loop, stage timings, and observability spans.
    Subclasses implement :meth:`step` (one generation) and may override
    the checkpoint hooks when they carry auxiliary state.

    Parameters
    ----------
    evaluator:
        The (system, trace) schedule evaluator.
    config:
        Engine parameters (default :class:`AlgorithmConfig`).
    seeds:
        Heuristic seed allocations injected into the initial population.
    rng:
        Seed or generator driving all stochastic choices of this run.
    label:
        Name used in reports (defaults to the algorithm's
        :attr:`name`).
    obs:
        Optional :class:`~repro.obs.context.RunContext`.  When enabled
        the engine records spans around the run and its stages
        (absorbing the :class:`~repro.core.telemetry.StageTimings`
        measurements — the very same ``perf_counter`` deltas, so trace
        totals reconcile with ``stage_timings`` exactly), emits
        run/generation/checkpoint events, and feeds the metrics
        registry.  When disabled (default) the hot loop pays one
        predicate per generation; RNG streams are untouched either way.
    """

    #: Registry/reporting name of the algorithm (subclasses override).
    name: str = "algorithm"

    def __init__(
        self,
        evaluator: ScheduleEvaluator,
        config: Optional[AlgorithmConfig] = None,
        seeds: Sequence[ResourceAllocation] = (),
        rng: SeedLike = None,
        label: Optional[str] = None,
        obs: Optional[RunContext] = None,
    ) -> None:
        self.evaluator = evaluator
        self.config = config if config is not None else AlgorithmConfig()
        self.label = label if label is not None else self.name
        self.obs = (obs if obs is not None else NULL_CONTEXT).bind(
            label=self.label
        )
        self._rng = ensure_rng(rng)
        self.feasible = FeasibleMachines.from_system_trace(
            evaluator.system, evaluator.trace
        )
        self.operators = VariationOperators(self.feasible, self.config.operators)
        with self.obs.span("ga.initial_population", seeds=len(seeds)):
            self.population = seeded_initial_population(
                self.feasible, self.config.population_size, list(seeds),
                self._rng, order_sampling=self.config.order_sampling,
            )
            self.population.evaluate(evaluator)
        self._evaluations = self.population.size
        self.generation = 0
        #: Per-stage wall-clock accumulator (selection / variation /
        #: evaluate / environmental), read by benchmarks and telemetry.
        self.stage_timings = StageTimings()

    # -- one generation -------------------------------------------------------

    def step(self) -> None:
        """Advance one generation.  Subclasses must implement."""
        raise NotImplementedError

    # -- checkpoint hooks -----------------------------------------------------

    def _capture_algo_state(self) -> dict[str, Any]:
        """JSON-serializable auxiliary state beyond the base engine state.

        The default (no auxiliary state) keeps checkpoint documents
        identical to the pre-refactor format.  Algorithms that carry
        run-dependent state outside the population — MOEA/D's ideal
        point, the ε-archive's contents — return it here.
        """
        return {}

    def _restore_algo_state(self, doc: dict[str, Any]) -> None:
        """Restore what :meth:`_capture_algo_state` captured.

        Called with ``{}`` for checkpoints written before auxiliary
        state existed; implementations must treat missing keys as the
        initial state.
        """

    def _on_restore(self) -> None:
        """Invalidate derived caches after a checkpoint restore."""

    # -- snapshots -------------------------------------------------------------

    def current_front(self) -> tuple[FloatArray, np.ndarray]:
        """Current rank-1 points (sorted by energy) and their row indices."""
        objectives = self.population.objectives
        mask = nondominated_mask(objectives)
        rows = np.flatnonzero(mask)
        pts = objectives[rows]
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        return pts[order], rows[order]

    def _front_solutions(
        self, rows: np.ndarray
    ) -> tuple[IntArray, IntArray]:
        """Chromosome arrays backing the *rows* of :meth:`current_front`."""
        return (
            self.population.assignments[rows].copy(),
            self.population.orders[rows].copy(),
        )

    def _snapshot(self, store_solutions: bool) -> GenerationSnapshot:
        pts, rows = self.current_front()
        assignments = orders = None
        if store_solutions:
            assignments, orders = self._front_solutions(rows)
        if self.obs.enabled:
            self.obs.metrics.gauge(
                "ga_front_size", help="rank-1 front size at last snapshot"
            ).set(pts.shape[0])
            self.obs.event(
                "generation.sampled",
                generation=self.generation,
                front_size=int(pts.shape[0]),
                evaluations=self._evaluations,
            )
        return GenerationSnapshot(
            generation=self.generation,
            front_points=pts,
            front_assignments=assignments,
            front_orders=orders,
            evaluations=self._evaluations,
        )

    # -- full run ---------------------------------------------------------------

    def run(
        self,
        generations: int,
        checkpoints: Optional[Sequence[int]] = None,
        progress: Optional[Callable[[int, "Algorithm"], None]] = None,
        *,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
    ) -> RunHistory:
        """Run for *generations*, snapshotting at *checkpoints*.

        Parameters
        ----------
        generations:
            Total generations to run ("iterations" in the paper's
            figures).
        checkpoints:
            Sorted generation counts to snapshot; the final generation
            is always snapshotted (with solutions).  Defaults to just
            the final generation.
        progress:
            Optional callback invoked after every generation.
        checkpoint_dir:
            When set, the full engine state is durably persisted into
            this directory (one atomically replaced file per run label)
            so a killed process can resume without losing progress.
        checkpoint_every:
            Persist every this-many generations (default 1: at most one
            generation of work is ever lost).  Raise it when disk IO is
            a measurable fraction of generation time.
        resume:
            Load the label's checkpoint from *checkpoint_dir* (if one
            exists) and continue from it.  The resumed run's objective
            points are bit-identical to an uninterrupted run with the
            same seed.  A checkpoint saved under different run
            parameters raises :class:`~repro.errors.CheckpointError`;
            a damaged checkpoint raises
            :class:`~repro.errors.CorruptArtifactError`.
        """
        if generations < 0:
            raise OptimizationError(f"generations must be >= 0, got {generations}")
        wanted = sorted(set(checkpoints or [])) if checkpoints else []
        for c in wanted:
            if c < 0 or c > generations:
                raise OptimizationError(
                    f"checkpoint {c} outside [0, {generations}]"
                )
        store = None
        if checkpoint_dir is not None:
            if checkpoint_every < 1:
                raise OptimizationError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            from repro.core.checkpoint import CheckpointStore

            store = CheckpointStore(checkpoint_dir, self.label, obs=self.obs)
        run_params = {
            "generations": int(generations),
            "checkpoints": [int(c) for c in wanted],
            "population_size": int(self.config.population_size),
        }
        snapshots: list[GenerationSnapshot] = []
        elapsed_before = 0.0
        obs = self.obs
        resumed = False
        if store is not None and resume and store.exists():
            from repro.core.checkpoint import restore_state

            state = store.load()
            if dict(state.run_params) != run_params:
                raise CheckpointError(
                    f"checkpoint for {self.label!r} was saved under run "
                    f"parameters {dict(state.run_params)}; this run asked for "
                    f"{run_params}"
                )
            restore_state(self, state)
            snapshots = list(state.snapshots)
            elapsed_before = state.elapsed_seconds
            resumed = True
        if obs.enabled:
            # Stage totals accumulated before this run (resume of the
            # same engine): subtracted when emitting this run's
            # aggregate spans so trace totals reconcile per run.
            stage_base = dict(self.stage_timings.totals)
            count_base = dict(self.stage_timings.counts)
            obs.event(
                "run.resumed" if resumed else "run.started",
                generation=self.generation,
                generations=generations,
                evaluations=self._evaluations,
            )
        t0 = time.perf_counter()
        with obs.span("ga.run", generations=generations, resumed=resumed):
            if self.generation == 0 and 0 in wanted and generations > 0:
                snapshots.append(
                    self._snapshot(self.config.store_front_solutions)
                )
            while self.generation < generations:
                self.step()
                if self.generation in wanted and self.generation != generations:
                    snapshots.append(
                        self._snapshot(self.config.store_front_solutions)
                    )
                if progress is not None:
                    progress(self.generation, self)
                if store is not None and (
                    self.generation % checkpoint_every == 0
                    or self.generation == generations
                ):
                    from repro.core.checkpoint import capture_state

                    store.save(
                        capture_state(
                            self,
                            snapshots,
                            elapsed_before + (time.perf_counter() - t0),
                            run_params,
                        )
                    )
            # Final snapshot always, always with solutions.
            snapshots.append(self._snapshot(store_solutions=True))
        wall = elapsed_before + (time.perf_counter() - t0)
        if obs.enabled:
            for stage in sorted(self.stage_timings.totals):
                delta = (
                    self.stage_timings.totals[stage]
                    - stage_base.get(stage, 0.0)
                )
                count = (
                    self.stage_timings.counts[stage]
                    - count_base.get(stage, 0)
                )
                if count:
                    obs.record_span(
                        f"ga.stage_total.{stage}", delta, count=count,
                        aggregate=True,
                    )
            obs.event(
                "run.finished",
                generation=self.generation,
                evaluations=self._evaluations,
                wall_seconds=wall,
            )
            obs.sample_rss()
        return RunHistory(
            label=self.label,
            snapshots=tuple(snapshots),
            total_generations=self.generation,
            total_evaluations=self._evaluations,
            wall_seconds=wall,
        )

    def run_until(
        self,
        criterion,
        snapshot_every: int = 0,
        max_generations: int = 1_000_000,
    ) -> RunHistory:
        """Run until a :class:`~repro.core.termination.TerminationCriterion`
        fires (Algorithm 1's "while termination criterion is not met").

        Parameters
        ----------
        criterion:
            The stopping rule; consulted after every generation with a
            :class:`~repro.core.termination.TerminationContext`.
        snapshot_every:
            Record a front snapshot every this-many generations
            (0 = final only).
        max_generations:
            Hard safety bound.
        """
        from repro.core.termination import TerminationContext

        criterion.reset()
        snapshots: list[GenerationSnapshot] = []
        t0 = time.perf_counter()
        start_generation = self.generation
        while self.generation - start_generation < max_generations:
            self.step()
            completed = self.generation - start_generation
            if snapshot_every and completed % snapshot_every == 0:
                snapshots.append(
                    self._snapshot(self.config.store_front_solutions)
                )
            pts, _ = self.current_front()
            context = TerminationContext(
                generation=completed,
                evaluations=self._evaluations,
                elapsed_seconds=time.perf_counter() - t0,
                front_points=pts,
            )
            if criterion.should_stop(context):
                break
        if snapshots and snapshots[-1].generation == self.generation:
            snapshots.pop()  # replace with a solutions-bearing snapshot
        snapshots.append(self._snapshot(store_solutions=True))
        return RunHistory(
            label=self.label,
            snapshots=tuple(snapshots),
            total_generations=self.generation,
            total_evaluations=self._evaluations,
            wall_seconds=time.perf_counter() - t0,
        )


class EvolutionaryAlgorithm(Algorithm):
    """The generational template: select, vary, evaluate, replace.

    :meth:`step` fixes the stage order and the RNG draw discipline
    (selection draws strictly before variation draws); subclasses slot
    in behaviour through three hooks:

    * :meth:`_mating_selection` — choose crossover parent pairs (or
      ``None`` for the paper's uniform-random parents);
    * :meth:`_variation` — produce offspring chromosomes (default: the
      paper's range-swap crossover + machine/order mutation, honouring
      ``config.offspring_size``);
    * :meth:`_replacement` — build the next parent population from
      parents and evaluated offspring (environmental selection).

    The stage timings and observability spans recorded here are the
    contract the benchmarks and the trace CLI consume; subclasses
    should not re-implement :meth:`step`.
    """

    def _offspring_pairs(self) -> int:
        """Crossover operations needed for one generation's offspring.

        ``offspring_size=None`` reproduces the legacy generational
        count (``N // 2``; odd N is completed by a cloned parent inside
        the crossover), an explicit k needs ``ceil(k / 2)`` operations.
        """
        k = self.config.offspring_size
        if k is None:
            return self.population.size // 2
        return (k + 1) // 2

    # -- hooks -----------------------------------------------------------------

    def _mating_selection(self, parents: Population) -> Optional[IntArray]:
        """Parent pairs for crossover, or ``None`` for uniform draws."""
        return None

    def _variation(
        self, parents: Population, parent_pairs: Optional[IntArray]
    ) -> tuple[IntArray, IntArray]:
        """Offspring chromosomes from *parents* (crossover + mutation)."""
        child_assign, child_order = self.operators.crossover_population(
            parents.assignments, parents.orders, self._rng,
            parent_pairs=parent_pairs,
            n_offspring=self.config.offspring_size,
        )
        return self.operators.mutate_population(
            child_assign, child_order, self._rng
        )

    def _replacement(
        self, parents: Population, offspring: Population
    ) -> Population:
        """Next parent population from *parents* and evaluated *offspring*."""
        raise NotImplementedError

    # -- the template ----------------------------------------------------------

    def step(self) -> None:
        """Advance one generation through the four-stage template."""
        timings = self.stage_timings
        parents = self.population
        t0 = time.perf_counter()
        parent_pairs = self._mating_selection(parents)
        t1 = time.perf_counter()
        child_assign, child_order = self._variation(parents, parent_pairs)
        t2 = time.perf_counter()
        offspring = Population(assignments=child_assign, orders=child_order)
        offspring.evaluate(self.evaluator)
        self._evaluations += offspring.size
        t3 = time.perf_counter()

        self.population = self._replacement(parents, offspring)
        self.generation += 1
        t4 = time.perf_counter()
        timings.record("selection", t1 - t0)
        timings.record("variation", t2 - t1)
        timings.record("evaluate", t3 - t2)
        timings.record("environmental", t4 - t3)
        obs = self.obs
        if obs.enabled:
            # The generation span reuses the stage perf_counter deltas —
            # no extra clock reads on the hot path.
            obs.record_span(
                "ga.generation", t4 - t0, generation=self.generation
            )
            if obs.debug:
                gen = self.generation
                obs.record_span("ga.stage.selection", t1 - t0, generation=gen)
                obs.record_span("ga.stage.variation", t2 - t1, generation=gen)
                obs.record_span("ga.stage.evaluate", t3 - t2, generation=gen)
                obs.record_span(
                    "ga.stage.environmental", t4 - t3, generation=gen
                )
            obs.metrics.counter(
                "ga_generations_total", help="generations advanced"
            ).inc()
