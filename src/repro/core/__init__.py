"""Bi-objective optimization core (paper Section IV).

From-scratch implementation of the paper's adapted NSGA-II: solution
dominance for (minimize energy, maximize utility), fast nondominated
sorting, crowding distance, the gene/chromosome encoding of Section
IV-D, the range-swap crossover and machine/order mutation operators,
elitist generational loop (Algorithm 1), seeded initial populations,
and an all-time external Pareto archive.
"""

from repro.core.algorithm import (
    Algorithm,
    AlgorithmConfig,
    EvolutionaryAlgorithm,
    GenerationSnapshot,
    RunHistory,
)
from repro.core.archive import EpsilonParetoArchive, ParetoArchive
from repro.core.checkpoint import (
    CheckpointStore,
    EngineState,
    capture_state,
    restore_state,
)
from repro.core.chromosome import Chromosome, Gene
from repro.core.crowding import crowding_by_front, crowding_distance
from repro.core.dominance import (
    dominates,
    nondominated_mask,
    pareto_filter,
)
from repro.core.moead import MOEAD
from repro.core.nsga2 import NSGA2, EpsilonArchiveNSGA2, NSGA2Config
from repro.core.objectives import BiObjectiveSpace, ObjectiveSense
from repro.core.operators import OperatorConfig, VariationOperators
from repro.core.population import Population
from repro.core.registry import (
    ALGORITHMS,
    available_algorithms,
    make_algorithm,
)
from repro.core.seeding import seeded_initial_population
from repro.core.spea2 import SPEA2, spea2_fitness
from repro.core.sorting import domination_count_ranks, fast_nondominated_sort
from repro.core.telemetry import (
    GenerationStats,
    StageTimings,
    TelemetryRecorder,
    compose,
)
from repro.core.termination import (
    AnyOf,
    HypervolumeStagnation,
    MaxEvaluations,
    MaxGenerations,
    MaxWallClock,
    TerminationCriterion,
)

__all__ = [
    "ObjectiveSense",
    "BiObjectiveSpace",
    "dominates",
    "nondominated_mask",
    "pareto_filter",
    "fast_nondominated_sort",
    "domination_count_ranks",
    "crowding_distance",
    "crowding_by_front",
    "Gene",
    "Chromosome",
    "Population",
    "OperatorConfig",
    "VariationOperators",
    "Algorithm",
    "AlgorithmConfig",
    "EvolutionaryAlgorithm",
    "NSGA2",
    "NSGA2Config",
    "SPEA2",
    "spea2_fitness",
    "MOEAD",
    "EpsilonArchiveNSGA2",
    "ALGORITHMS",
    "available_algorithms",
    "make_algorithm",
    "GenerationSnapshot",
    "RunHistory",
    "ParetoArchive",
    "EpsilonParetoArchive",
    "CheckpointStore",
    "EngineState",
    "capture_state",
    "restore_state",
    "seeded_initial_population",
    "TerminationCriterion",
    "MaxGenerations",
    "MaxEvaluations",
    "MaxWallClock",
    "HypervolumeStagnation",
    "AnyOf",
    "TelemetryRecorder",
    "GenerationStats",
    "StageTimings",
    "compose",
]
