"""Crash-safe NSGA-II checkpoint/resume.

Paper-scale runs (hundreds of thousands of generations) are hours of
compute; a process kill must not lose them.  An :class:`EngineState`
captures everything the generational loop depends on:

* the full parent population — chromosomes *and* their evaluated
  objective vectors (so a resume never re-evaluates parents, which
  would shift the evaluation count);
* the RNG bit-generator state (so the resumed stochastic stream is the
  same stream, bit for bit);
* the generation and evaluation counters;
* the snapshots recorded so far plus the elapsed wall clock;
* the run parameters (generations, checkpoints, population size), so a
  checkpoint cannot silently resume under a different configuration.

A resumed run therefore produces a
:class:`~repro.core.nsga2.RunHistory` whose objective points are
bit-identical to an uninterrupted run with the same seed — asserted by
``tests/test_core_checkpoint.py``.

Durability is delegated to :mod:`repro.storage`: checkpoints are
written atomically (temp file + ``os.replace``) with payload checksums,
so a crash *during* checkpointing leaves the previous checkpoint
intact, and a corrupted file raises
:class:`~repro.errors.CorruptArtifactError` instead of resuming from
garbage.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
import time
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.algorithm import GenerationSnapshot
from repro.core.population import Population
from repro.errors import CheckpointError
from repro.storage import atomic_write_json, read_json_artifact
from repro.types import FloatArray, IntArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.algorithm import Algorithm
    from repro.obs.context import RunContext

__all__ = [
    "EngineState",
    "CheckpointStore",
    "capture_state",
    "restore_state",
]

#: Checkpoint document format tag; bump on incompatible changes.
CHECKPOINT_FORMAT = "repro.checkpoint/1"


@dataclass(frozen=True)
class EngineState:
    """A complete, resumable snapshot of one algorithm run in flight.

    ``algo_state`` carries whatever the algorithm's
    :meth:`~repro.core.algorithm.Algorithm._capture_algo_state` hook
    reported (MOEA/D's ideal point, the ε-archive's contents, ...);
    algorithms without auxiliary state leave it empty, which keeps the
    document byte-compatible with pre-redesign checkpoints.
    """

    label: str
    generation: int
    evaluations: int
    assignments: IntArray
    orders: IntArray
    energies: FloatArray
    utilities: FloatArray
    rng_state: dict
    snapshots: tuple[GenerationSnapshot, ...]
    elapsed_seconds: float
    run_params: Mapping[str, Any]
    algo_state: Mapping[str, Any] = field(default_factory=dict)

    # -- serialization -------------------------------------------------------

    def to_doc(self) -> dict:
        """JSON-serializable document (floats round-trip exactly)."""
        doc = {
            "format": CHECKPOINT_FORMAT,
            "label": self.label,
            "generation": self.generation,
            "evaluations": self.evaluations,
            "assignments": self.assignments.tolist(),
            "orders": self.orders.tolist(),
            "energies": self.energies.tolist(),
            "utilities": self.utilities.tolist(),
            "rng_state": self.rng_state,
            "snapshots": [_snapshot_to_doc(s) for s in self.snapshots],
            "elapsed_seconds": self.elapsed_seconds,
            "run_params": dict(self.run_params),
        }
        if self.algo_state:
            doc["algo_state"] = dict(self.algo_state)
        return doc

    @classmethod
    def from_doc(cls, doc: Any) -> "EngineState":
        """Rebuild a state from :meth:`to_doc` output.

        Raises :class:`~repro.errors.CheckpointError` on structural
        problems (wrong format tag, missing keys).
        """
        if not isinstance(doc, dict):
            raise CheckpointError(
                f"checkpoint document is {type(doc).__name__}, not an object"
            )
        if doc.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unrecognized checkpoint format {doc.get('format')!r} "
                f"(expected {CHECKPOINT_FORMAT!r})"
            )
        try:
            return cls(
                label=doc["label"],
                generation=int(doc["generation"]),
                evaluations=int(doc["evaluations"]),
                assignments=np.asarray(doc["assignments"], dtype=np.int64),
                orders=np.asarray(doc["orders"], dtype=np.int64),
                energies=np.asarray(doc["energies"], dtype=np.float64),
                utilities=np.asarray(doc["utilities"], dtype=np.float64),
                rng_state=doc["rng_state"],
                snapshots=tuple(
                    _snapshot_from_doc(s) for s in doc["snapshots"]
                ),
                elapsed_seconds=float(doc["elapsed_seconds"]),
                run_params=doc["run_params"],
                # Absent in pre-redesign checkpoints: default to "no
                # auxiliary algorithm state".
                algo_state=doc.get("algo_state", {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint document is structurally malformed: {exc!r}"
            ) from exc


def _snapshot_to_doc(snap: GenerationSnapshot) -> dict:
    return {
        "generation": snap.generation,
        "evaluations": snap.evaluations,
        "front_points": snap.front_points.tolist(),
        "front_assignments": (
            None
            if snap.front_assignments is None
            else snap.front_assignments.tolist()
        ),
        "front_orders": (
            None if snap.front_orders is None else snap.front_orders.tolist()
        ),
    }


def _snapshot_from_doc(doc: dict) -> GenerationSnapshot:
    return GenerationSnapshot(
        generation=int(doc["generation"]),
        front_points=np.asarray(doc["front_points"], dtype=np.float64),
        front_assignments=(
            None
            if doc["front_assignments"] is None
            else np.asarray(doc["front_assignments"], dtype=np.int64)
        ),
        front_orders=(
            None
            if doc["front_orders"] is None
            else np.asarray(doc["front_orders"], dtype=np.int64)
        ),
        evaluations=int(doc["evaluations"]),
    )


# -- engine <-> state -----------------------------------------------------------


def capture_state(
    engine: "Algorithm",
    snapshots: Sequence[GenerationSnapshot],
    elapsed_seconds: float,
    run_params: Mapping[str, Any],
) -> EngineState:
    """Snapshot *engine* (and the run's bookkeeping) into an EngineState."""
    population = engine.population
    if not population.is_evaluated:
        raise CheckpointError(
            "cannot checkpoint an unevaluated population"
        )
    return EngineState(
        label=engine.label,
        generation=engine.generation,
        evaluations=engine._evaluations,
        assignments=population.assignments.copy(),
        orders=population.orders.copy(),
        energies=population.energies.copy(),
        utilities=population.utilities.copy(),
        rng_state=engine._rng.bit_generator.state,
        snapshots=tuple(snapshots),
        elapsed_seconds=float(elapsed_seconds),
        run_params=dict(run_params),
        algo_state=engine._capture_algo_state(),
    )


def restore_state(engine: "Algorithm", state: EngineState) -> None:
    """Overwrite *engine*'s mutable run state with *state*.

    The engine must have been constructed against the same problem
    (population size and task count are validated; the evaluator is
    trusted to match — objectives are restored, not recomputed).
    Auxiliary algorithm state flows through the engine's
    ``_restore_algo_state`` hook; ``_on_restore`` then invalidates any
    derived caches (e.g. NSGA-II's carried-over ranks).
    """
    expected = (engine.config.population_size, engine.population.num_tasks)
    if state.assignments.shape != expected:
        raise CheckpointError(
            f"checkpoint population shape {state.assignments.shape} does not "
            f"match the engine's {expected}"
        )
    engine.population = Population(
        assignments=state.assignments.copy(),
        orders=state.orders.copy(),
        energies=state.energies.copy(),
        utilities=state.utilities.copy(),
    )
    engine.generation = state.generation
    engine._evaluations = state.evaluations
    engine._restore_algo_state(dict(state.algo_state))
    engine._on_restore()
    try:
        engine._rng.bit_generator.state = state.rng_state
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint RNG state is incompatible with the engine's "
            f"bit generator: {exc!r}"
        ) from exc


# -- the on-disk store ----------------------------------------------------------


def _slug(label: str) -> str:
    """Filesystem-safe version of a population label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "run"


class CheckpointStore:
    """One run's checkpoint file inside a shared checkpoint directory.

    Each labelled run owns a single file
    ``<directory>/<label>.checkpoint.json`` that is atomically replaced
    on every save — parallel populations checkpoint into the same
    directory without contention.

    When an enabled :class:`~repro.obs.context.RunContext` is attached,
    every save records a ``checkpoint.save`` span, the bytes written and
    fsync latency (from the :class:`~repro.storage.WriteReceipt`), and a
    ``checkpoint.committed`` event.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        label: str,
        *,
        obs: Optional["RunContext"] = None,
    ) -> None:
        self.directory = Path(directory)
        self.label = label
        self.path = self.directory / f"{_slug(label)}.checkpoint.json"
        if obs is None:
            from repro.obs.context import NULL_CONTEXT

            obs = NULL_CONTEXT
        self.obs = obs

    def exists(self) -> bool:
        """Whether a checkpoint for this label is on disk."""
        return self.path.exists()

    def save(self, state: EngineState) -> None:
        """Durably persist *state* (atomic replace + checksum)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        obs = self.obs
        if not obs.enabled:
            atomic_write_json(self.path, state.to_doc())
            return
        t0 = time.perf_counter()
        receipt = atomic_write_json(self.path, state.to_doc())
        seconds = time.perf_counter() - t0
        obs.record_span(
            "checkpoint.save",
            seconds,
            label=self.label,
            generation=state.generation,
            bytes=receipt.bytes_written,
        )
        obs.counter(
            "checkpoint_saves_total", help="checkpoint files committed"
        ).inc()
        obs.counter(
            "checkpoint_bytes_written_total",
            help="cumulative checkpoint payload size",
            unit="bytes",
        ).inc(receipt.bytes_written)
        obs.metrics.histogram(
            "checkpoint_fsync_seconds",
            help="time spent in fsync per checkpoint commit",
            unit="seconds",
        ).observe(receipt.fsync_seconds)
        obs.event(
            "checkpoint.committed",
            label=self.label,
            generation=state.generation,
            bytes=receipt.bytes_written,
            fsync_seconds=receipt.fsync_seconds,
        )

    def load(self) -> EngineState:
        """Load the checkpoint.

        Raises :class:`~repro.errors.CheckpointError` when no checkpoint
        exists and :class:`~repro.errors.CorruptArtifactError` when the
        file exists but fails its integrity check.
        """
        try:
            doc = read_json_artifact(self.path)
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"no checkpoint for {self.label!r} at {self.path}"
            ) from exc
        return EngineState.from_doc(doc)

    def clear(self) -> None:
        """Delete the checkpoint file if present."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
