"""Crossover and mutation operators (paper Section IV-D).

* **Crossover** — "select two chromosomes uniformly at random ... the
  indices of two genes are selected uniformly at random ... swap all
  the genes between these two indices, from one chromosome to the
  other.  In this operation, the machines the tasks execute on, and
  the global scheduling orders of the tasks are all swapped."
* **Mutation** — "randomly select a chromosome ... select a random
  gene within that chromosome ... mutate the gene by selecting a
  random machine that that task can execute on.  Additionally, we
  select another random gene within the chromosome and then swap the
  global scheduling order between the two genes."

Because crossover swaps *order values* between chromosomes, order
vectors may stop being permutations; orders are therefore interpreted
as priority keys with stable tie-breaks (DESIGN.md).  Setting
``repair_order=True`` renormalizes every offspring's keys back to a
permutation (rank transform), an ablation mode.

Feasibility is preserved by construction: crossover swaps machines
between two chromosomes *at the same gene positions* (same task, so a
feasible machine stays feasible), and mutation redraws only among the
task's feasible machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizationError
from repro.model.system import SystemModel
from repro.types import IntArray
from repro.workload.trace import Trace

__all__ = ["FeasibleMachines", "OperatorConfig", "VariationOperators", "repair_orders"]


@dataclass(frozen=True)
class FeasibleMachines:
    """Per-task feasible machine sets, padded for vectorized sampling.

    Attributes
    ----------
    padded:
        ``(T, K)`` int array; row *i* holds task *i*'s feasible machine
        indices in columns ``[0, counts[i])`` (padding repeats the
        first entry, never sampled).
    counts:
        ``(T,)`` number of feasible machines per task.
    """

    padded: IntArray
    counts: IntArray

    @classmethod
    def from_system_trace(cls, system: SystemModel, trace: Trace) -> "FeasibleMachines":
        """Build the per-task table from the system's feasibility mask."""
        trace.validate_against(system.num_task_types)
        mask = system.feasible_task_machine[trace.task_types]  # (T, M)
        counts = mask.sum(axis=1).astype(np.int64)
        if np.any(counts == 0):
            bad = int(np.flatnonzero(counts == 0)[0])
            raise OptimizationError(
                f"task {bad} has no feasible machine in the system"
            )
        T, M = mask.shape
        K = int(counts.max())
        padded = np.zeros((T, K), dtype=np.int64)
        # Row-wise compaction of True columns: argsort pushes True (1)
        # first when sorting by ~mask; simpler: use nonzero and split.
        rows, cols = np.nonzero(mask)
        # positions within each row: 0..count-1 (rows are sorted).
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(rows.shape[0]) - starts[rows]
        padded[rows, within] = cols
        # Pad with each row's first feasible machine.
        pad_positions = np.arange(K)[None, :] >= counts[:, None]
        padded = np.where(pad_positions, padded[:, [0]], padded)
        padded.setflags(write=False)
        counts.setflags(write=False)
        return cls(padded=padded, counts=counts)

    @property
    def num_tasks(self) -> int:
        """Number of tasks covered."""
        return int(self.counts.shape[0])

    def sample(self, tasks: IntArray, rng: np.random.Generator) -> IntArray:
        """One uniformly random feasible machine for each task in *tasks*."""
        tasks = np.asarray(tasks, dtype=np.int64)
        picks = rng.integers(0, self.counts[tasks])
        return self.padded[tasks, picks]

    def sample_matrix(self, n_rows: int, rng: np.random.Generator) -> IntArray:
        """``(n_rows, T)`` random feasible assignments (population init)."""
        T = self.num_tasks
        picks = rng.integers(0, self.counts[None, :], size=(n_rows, T))
        return self.padded[np.arange(T)[None, :], picks]


def binary_tournament_pairs(
    ranks: IntArray,
    crowding: np.ndarray,
    n_ops: int,
    rng: np.random.Generator,
) -> IntArray:
    """Crowded binary tournament parent pairs (Deb et al. 2002).

    For each parent slot two candidates are drawn uniformly; the one
    with the better (lower) front rank wins, ties broken by larger
    crowding distance, then by index for determinism.  Returns
    ``(n_ops, 2)`` parent indices.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    crowding = np.asarray(crowding, dtype=np.float64)
    if ranks.shape != crowding.shape:
        raise OptimizationError("ranks and crowding shapes differ")
    n = ranks.shape[0]
    candidates = rng.integers(0, n, size=(n_ops, 2, 2))
    a = candidates[..., 0]
    b = candidates[..., 1]
    a_wins = (ranks[a] < ranks[b]) | (
        (ranks[a] == ranks[b]) & (crowding[a] > crowding[b])
    ) | ((ranks[a] == ranks[b]) & (crowding[a] == crowding[b]) & (a <= b))
    return np.where(a_wins, a, b)


def repair_orders(orders: IntArray) -> IntArray:
    """Rank-transform each row back to a permutation of ``0..T-1`` (stable)."""
    orders = np.asarray(orders, dtype=np.int64)
    perm = np.argsort(orders, axis=1, kind="stable")
    ranks = np.empty_like(orders)
    n, T = orders.shape
    np.put_along_axis(ranks, perm, np.broadcast_to(np.arange(T), (n, T)), axis=1)
    return ranks


@dataclass(frozen=True, slots=True)
class OperatorConfig:
    """Variation-operator parameters.

    Attributes
    ----------
    mutation_probability:
        Probability that each offspring chromosome is mutated (paper:
        "the mutation operation is then performed with a probability
        (selected by experimentation) on each offspring").
    mutations_per_offspring:
        Number of gene mutations applied when an offspring is selected
        for mutation (paper: 1).
    repair_order:
        Renormalize offspring order keys to permutations (ablation).
    parent_selection:
        How crossover parents are chosen: ``"uniform"`` — the paper's
        "select two chromosomes uniformly at random"; ``"tournament"``
        — Deb's binary crowded tournament (better rank wins; equal
        ranks: larger crowding distance wins).  Ablation A7 compares
        them.
    """

    mutation_probability: float = 0.25
    mutations_per_offspring: int = 1
    repair_order: bool = False
    parent_selection: str = "uniform"

    def __post_init__(self) -> None:
        if not (0.0 <= self.mutation_probability <= 1.0):
            raise OptimizationError(
                f"mutation_probability must be in [0, 1]; got "
                f"{self.mutation_probability}"
            )
        if self.mutations_per_offspring < 1:
            raise OptimizationError(
                "mutations_per_offspring must be >= 1; got "
                f"{self.mutations_per_offspring}"
            )
        if self.parent_selection not in ("uniform", "tournament"):
            raise OptimizationError(
                "parent_selection must be 'uniform' or 'tournament'; got "
                f"{self.parent_selection!r}"
            )


class VariationOperators:
    """Applies the paper's crossover and mutation to packed populations."""

    def __init__(self, feasible: FeasibleMachines, config: OperatorConfig) -> None:
        self.feasible = feasible
        self.config = config

    # -- crossover ---------------------------------------------------------

    def crossover_population(
        self,
        assignments: IntArray,
        orders: IntArray,
        rng: np.random.Generator,
        parent_pairs: IntArray | None = None,
        n_offspring: int | None = None,
    ) -> tuple[IntArray, IntArray]:
        """Produce an offspring population via range-swap crossover.

        With *n_offspring* ``None`` (the default), ``N/2`` crossover
        operations, each on two parents, each producing two children
        (Algorithm 1, steps 3-4) — the legacy generational behaviour on
        the historical RNG stream, completed by one cloned parent when
        N is odd.  An explicit *n_offspring* k runs ``ceil(k / 2)``
        operations and truncates to exactly k children (steady-state
        NSGA-II uses k = 1).  Parents default to uniform random draws
        (the paper's selection); the engine passes *parent_pairs* of
        one row per operation when tournament selection is configured.
        """
        N, T = assignments.shape
        if N < 2:
            return assignments.copy(), orders.copy()
        if n_offspring is not None and n_offspring < 1:
            raise OptimizationError(
                f"n_offspring must be >= 1, got {n_offspring}"
            )
        n_ops = N // 2 if n_offspring is None else (n_offspring + 1) // 2
        child_assign = np.empty((2 * n_ops, T), dtype=np.int64)
        child_order = np.empty((2 * n_ops, T), dtype=np.int64)
        if parent_pairs is None:
            parents = rng.integers(0, N, size=(n_ops, 2))
        else:
            parents = np.asarray(parent_pairs, dtype=np.int64)
            if parents.shape != (n_ops, 2):
                raise OptimizationError(
                    f"parent_pairs must have shape ({n_ops}, 2); got "
                    f"{parents.shape}"
                )
            if parents.min() < 0 or parents.max() >= N:
                raise OptimizationError("parent_pairs indices out of range")
        # Two gene indices per operation; the swapped range is [lo, hi).
        cuts = rng.integers(0, T + 1, size=(n_ops, 2))
        lo = np.minimum(cuts[:, 0], cuts[:, 1])
        hi = np.maximum(cuts[:, 0], cuts[:, 1])
        # All n_ops swaps at once: a (n_ops, T) mask marks the swapped
        # gene range of each operation, and np.where picks the donor.
        pa = parents[:, 0]
        pb = parents[:, 1]
        cols = np.arange(T)[None, :]
        swap = (cols >= lo[:, None]) & (cols < hi[:, None])
        child_assign[0::2] = np.where(swap, assignments[pb], assignments[pa])
        child_assign[1::2] = np.where(swap, assignments[pa], assignments[pb])
        child_order[0::2] = np.where(swap, orders[pb], orders[pa])
        child_order[1::2] = np.where(swap, orders[pa], orders[pb])
        if n_offspring is not None:
            child_assign = child_assign[:n_offspring]
            child_order = child_order[:n_offspring]
        elif 2 * n_ops < N:
            # Odd population: clone one extra random parent unchanged.
            extra = int(rng.integers(0, N))
            child_assign = np.vstack([child_assign, assignments[extra][None, :]])
            child_order = np.vstack([child_order, orders[extra][None, :]])
        if self.config.repair_order:
            child_order = repair_orders(child_order)
        return child_assign, child_order

    # -- mutation ----------------------------------------------------------

    def mutate_population(
        self,
        assignments: IntArray,
        orders: IntArray,
        rng: np.random.Generator,
    ) -> tuple[IntArray, IntArray]:
        """Mutate each offspring with the configured probability, in place.

        Returns the (possibly same) arrays for chaining.
        """
        N, T = assignments.shape
        selected = np.flatnonzero(rng.random(N) < self.config.mutation_probability)
        if selected.size == 0:
            return assignments, orders
        for _ in range(self.config.mutations_per_offspring):
            genes = rng.integers(0, T, size=selected.size)
            new_machines = self.feasible.sample(genes, rng)
            assignments[selected, genes] = new_machines
            partners = rng.integers(0, T, size=selected.size)
            g_vals = orders[selected, genes].copy()
            p_vals = orders[selected, partners].copy()
            orders[selected, genes] = p_vals
            orders[selected, partners] = g_vals
        if self.config.repair_order:
            orders[selected] = repair_orders(orders[selected])
        return assignments, orders
