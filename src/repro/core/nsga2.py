"""The adapted NSGA-II engine (paper Algorithm 1).

Generational loop:

1. create the initial population of N chromosomes (random, optionally
   carrying heuristic seeds);
2. each generation: produce an offspring population of size N via N/2
   range-swap crossovers, mutate each offspring with a configured
   probability, evaluate the offspring in one vectorized batch;
3. combine parents and offspring into a 2N meta-population (elitism);
4. fast nondominated sort; fill the next parent population front by
   front; truncate the last partially fitting front by crowding
   distance;
5. repeat until the termination criterion (generation count) is met.

The run records :class:`GenerationSnapshot`\\ s of the rank-1 front at
requested checkpoint generations — the paper's "Pareto fronts through
various number of iterations" (Figures 3, 4, 6) fall straight out of
one run per seeded population.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.crowding import crowding_by_front, crowding_truncate
from repro.core.dominance import nondominated_mask
from repro.core.operators import (
    FeasibleMachines,
    OperatorConfig,
    VariationOperators,
)
from repro.core.population import Population
from repro.core.seeding import seeded_initial_population
from repro.core.sorting import fast_nondominated_sort, fronts_from_ranks
from repro.core.telemetry import StageTimings
from repro.errors import CheckpointError, OptimizationError
from repro.obs.context import NULL_CONTEXT, RunContext
from repro.rng import SeedLike, ensure_rng
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray, IntArray

__all__ = ["NSGA2Config", "GenerationSnapshot", "RunHistory", "NSGA2"]


@dataclass(frozen=True, slots=True)
class NSGA2Config:
    """Engine parameters.

    Attributes
    ----------
    population_size:
        N — parent population size (paper example: 100).
    operators:
        Crossover/mutation configuration.
    store_front_solutions:
        Keep the chromosomes (not just objective points) of each
        checkpoint front.  Off by default to bound memory for long
        runs; the final front's chromosomes are always kept.
    fast_path:
        Use the O(N log N) bi-objective machinery: sweep nondominated
        sorting, vectorized environmental selection, and one shared
        ranks computation per generation (tournament selection reuses
        the ranks derived during the previous environmental selection).
        ``False`` runs the O(N²) dominance-matrix reference path; both
        produce bit-identical fronts for the same seed, asserted by
        ``tests/test_core_nsga2_fastpath.py``.
    order_sampling:
        How the initial population draws scheduling orders: ``"legacy"``
        (default) preserves the historical per-row ``rng.permutation``
        stream (checkpoint/seed compatible); ``"vectorized"`` draws one
        key matrix and argsorts it (faster, different stream).
    """

    population_size: int = 100
    operators: OperatorConfig = field(default_factory=OperatorConfig)
    store_front_solutions: bool = False
    fast_path: bool = True
    order_sampling: str = "legacy"

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.order_sampling not in ("legacy", "vectorized"):
            raise OptimizationError(
                "order_sampling must be 'legacy' or 'vectorized'; got "
                f"{self.order_sampling!r}"
            )


@dataclass(frozen=True)
class GenerationSnapshot:
    """The rank-1 (Pareto) front of the population at one checkpoint.

    Attributes
    ----------
    generation:
        Generation count at the snapshot (0 = initial population).
    front_points:
        ``(F, 2)`` (energy, utility) points, sorted by energy.
    front_assignments, front_orders:
        ``(F, T)`` chromosome arrays when stored, else ``None``.
    evaluations:
        Cumulative chromosome evaluations at the snapshot.
    """

    generation: int
    front_points: FloatArray
    front_assignments: Optional[IntArray]
    front_orders: Optional[IntArray]
    evaluations: int

    @property
    def front_size(self) -> int:
        """Number of points on the snapshot front."""
        return int(self.front_points.shape[0])

    def best_utility_point(self) -> tuple[float, float]:
        """The (energy, utility) point with maximum utility."""
        i = int(np.argmax(self.front_points[:, 1]))
        return tuple(self.front_points[i])  # type: ignore[return-value]

    def best_energy_point(self) -> tuple[float, float]:
        """The (energy, utility) point with minimum energy."""
        i = int(np.argmin(self.front_points[:, 0]))
        return tuple(self.front_points[i])  # type: ignore[return-value]


@dataclass(frozen=True)
class RunHistory:
    """Everything one NSGA-II run produced."""

    label: str
    snapshots: tuple[GenerationSnapshot, ...]
    total_generations: int
    total_evaluations: int
    wall_seconds: float

    def snapshot_at(self, generation: int) -> GenerationSnapshot:
        """The snapshot recorded at exactly *generation*."""
        for snap in self.snapshots:
            if snap.generation == generation:
                return snap
        raise OptimizationError(
            f"no snapshot at generation {generation}; available: "
            f"{[s.generation for s in self.snapshots]}"
        )

    @property
    def final(self) -> GenerationSnapshot:
        """The last snapshot (the run's final Pareto front)."""
        return self.snapshots[-1]


class NSGA2:
    """One NSGA-II optimization bound to an evaluator.

    Parameters
    ----------
    evaluator:
        The (system, trace) schedule evaluator.
    config:
        Engine parameters.
    seeds:
        Heuristic seed allocations injected into the initial population.
    rng:
        Seed or generator driving all stochastic choices of this run.
    label:
        Name used in reports (e.g. ``"min-energy seed"``).
    obs:
        Optional :class:`~repro.obs.context.RunContext`.  When enabled
        the engine records spans around the run and its stages
        (absorbing the :class:`~repro.core.telemetry.StageTimings`
        measurements — the very same ``perf_counter`` deltas, so trace
        totals reconcile with ``stage_timings`` exactly), emits
        run/generation/checkpoint events, and feeds the metrics
        registry.  When disabled (default) the hot loop pays one
        predicate per generation; RNG streams are untouched either way.
    """

    def __init__(
        self,
        evaluator: ScheduleEvaluator,
        config: NSGA2Config = NSGA2Config(),
        seeds: Sequence[ResourceAllocation] = (),
        rng: SeedLike = None,
        label: str = "nsga2",
        obs: Optional[RunContext] = None,
    ) -> None:
        self.evaluator = evaluator
        self.config = config
        self.label = label
        self.obs = (obs if obs is not None else NULL_CONTEXT).bind(label=label)
        self._rng = ensure_rng(rng)
        self.feasible = FeasibleMachines.from_system_trace(
            evaluator.system, evaluator.trace
        )
        self.operators = VariationOperators(self.feasible, config.operators)
        with self.obs.span("ga.initial_population", seeds=len(seeds)):
            self.population = seeded_initial_population(
                self.feasible, config.population_size, list(seeds), self._rng,
                order_sampling=config.order_sampling,
            )
            self.population.evaluate(evaluator)
        self._evaluations = self.population.size
        self.generation = 0
        #: Cached front ranks of the current parent population, carried
        #: over from the last environmental selection (fast path only);
        #: ``None`` forces a fresh sort (initial population, resume).
        self._ranks: Optional[IntArray] = None
        #: Per-stage wall-clock accumulator (selection / variation /
        #: evaluate / environmental), read by benchmarks and telemetry.
        self.stage_timings = StageTimings()

    # -- one generation -------------------------------------------------------

    def _parent_ranks(self) -> IntArray:
        """Front ranks of the current parent population.

        On the fast path the ranks computed during the previous
        environmental selection are reused: the selected subset keeps
        complete fronts 1..k plus part of front k+1, and every retained
        point keeps all its dominators from lower fronts, so the
        restriction of the meta-population ranks *is* the parent
        population's front-peeling ranks.
        """
        if self.config.fast_path and self._ranks is not None:
            if self._ranks.shape[0] == self.population.size:
                return self._ranks
        method = "auto" if self.config.fast_path else "matrix"
        ranks = fast_nondominated_sort(self.population.objectives, method=method)
        if self.config.fast_path:
            self._ranks = ranks
        return ranks

    def step(self) -> None:
        """Advance one generation (Algorithm 1 steps 3-11)."""
        timings = self.stage_timings
        parents = self.population
        parent_pairs = None
        t0 = time.perf_counter()
        if self.config.operators.parent_selection == "tournament":
            from repro.core.operators import binary_tournament_pairs

            objectives = parents.objectives
            ranks = self._parent_ranks()
            crowding = crowding_by_front(objectives, ranks)
            parent_pairs = binary_tournament_pairs(
                ranks, crowding, parents.size // 2, self._rng
            )
        t1 = time.perf_counter()
        child_assign, child_order = self.operators.crossover_population(
            parents.assignments, parents.orders, self._rng,
            parent_pairs=parent_pairs,
        )
        child_assign, child_order = self.operators.mutate_population(
            child_assign, child_order, self._rng
        )
        t2 = time.perf_counter()
        offspring = Population(assignments=child_assign, orders=child_order)
        offspring.evaluate(self.evaluator)
        self._evaluations += offspring.size
        t3 = time.perf_counter()

        meta = parents.concatenate(offspring)
        self.population = self._environmental_selection(meta)
        self.generation += 1
        t4 = time.perf_counter()
        timings.record("selection", t1 - t0)
        timings.record("variation", t2 - t1)
        timings.record("evaluate", t3 - t2)
        timings.record("environmental", t4 - t3)
        obs = self.obs
        if obs.enabled:
            # The generation span reuses the stage perf_counter deltas —
            # no extra clock reads on the hot path.
            obs.record_span(
                "ga.generation", t4 - t0, generation=self.generation
            )
            if obs.debug:
                gen = self.generation
                obs.record_span("ga.stage.selection", t1 - t0, generation=gen)
                obs.record_span("ga.stage.variation", t2 - t1, generation=gen)
                obs.record_span("ga.stage.evaluate", t3 - t2, generation=gen)
                obs.record_span(
                    "ga.stage.environmental", t4 - t3, generation=gen
                )
            obs.metrics.counter(
                "ga_generations_total", help="NSGA-II generations advanced"
            ).inc()

    def _environmental_selection(self, meta: Population) -> Population:
        """Pick the best N of the 2N meta-population (steps 7-10).

        Both paths return the same rows in the same order: complete
        fronts in rank order (index-ascending within a front) followed
        by the crowding-truncated boundary front.  The fast path also
        caches the survivors' ranks for the next generation's
        tournament.
        """
        N = self.config.population_size
        if self.config.fast_path:
            ranks = fast_nondominated_sort(meta.objectives)
            # (rank, index)-ordered positions; the N-th one pins the
            # boundary front r*: fronts < r* fit completely.
            order = np.argsort(ranks, kind="stable")
            r_star = int(ranks[order[N - 1]])
            n_full = int(np.count_nonzero(ranks < r_star))
            boundary = np.flatnonzero(ranks == r_star)
            subset = crowding_truncate(meta.objectives[boundary], N - n_full)
            indices = np.concatenate([order[:n_full], boundary[subset]])
            self._ranks = ranks[indices]
            return meta.select(indices)
        ranks = fast_nondominated_sort(meta.objectives, method="matrix")
        selected: list[np.ndarray] = []
        count = 0
        for front in fronts_from_ranks(ranks):
            if count + front.size <= N:
                selected.append(front)
                count += front.size
                if count == N:
                    break
            else:
                keep = N - count
                subset = crowding_truncate(meta.objectives[front], keep)
                selected.append(front[subset])
                count = N
                break
        indices = np.concatenate(selected)
        self._ranks = None
        return meta.select(indices)

    # -- snapshots -------------------------------------------------------------

    def current_front(self) -> tuple[FloatArray, np.ndarray]:
        """Current rank-1 points (sorted by energy) and their row indices."""
        objectives = self.population.objectives
        mask = nondominated_mask(objectives)
        rows = np.flatnonzero(mask)
        pts = objectives[rows]
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        return pts[order], rows[order]

    def _snapshot(self, store_solutions: bool) -> GenerationSnapshot:
        pts, rows = self.current_front()
        assignments = orders = None
        if store_solutions:
            assignments = self.population.assignments[rows].copy()
            orders = self.population.orders[rows].copy()
        if self.obs.enabled:
            self.obs.metrics.gauge(
                "ga_front_size", help="rank-1 front size at last snapshot"
            ).set(pts.shape[0])
            self.obs.event(
                "generation.sampled",
                generation=self.generation,
                front_size=int(pts.shape[0]),
                evaluations=self._evaluations,
            )
        return GenerationSnapshot(
            generation=self.generation,
            front_points=pts,
            front_assignments=assignments,
            front_orders=orders,
            evaluations=self._evaluations,
        )

    # -- full run ---------------------------------------------------------------

    def run(
        self,
        generations: int,
        checkpoints: Optional[Sequence[int]] = None,
        progress: Optional[Callable[[int, "NSGA2"], None]] = None,
        *,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
    ) -> RunHistory:
        """Run for *generations*, snapshotting at *checkpoints*.

        Parameters
        ----------
        generations:
            Total generations to run ("iterations" in the paper's
            figures).
        checkpoints:
            Sorted generation counts to snapshot; the final generation
            is always snapshotted (with solutions).  Defaults to just
            the final generation.
        progress:
            Optional callback invoked after every generation.
        checkpoint_dir:
            When set, the full engine state is durably persisted into
            this directory (one atomically replaced file per run label)
            so a killed process can resume without losing progress.
        checkpoint_every:
            Persist every this-many generations (default 1: at most one
            generation of work is ever lost).  Raise it when disk IO is
            a measurable fraction of generation time.
        resume:
            Load the label's checkpoint from *checkpoint_dir* (if one
            exists) and continue from it.  The resumed run's objective
            points are bit-identical to an uninterrupted run with the
            same seed.  A checkpoint saved under different run
            parameters raises :class:`~repro.errors.CheckpointError`;
            a damaged checkpoint raises
            :class:`~repro.errors.CorruptArtifactError`.
        """
        if generations < 0:
            raise OptimizationError(f"generations must be >= 0, got {generations}")
        wanted = sorted(set(checkpoints or [])) if checkpoints else []
        for c in wanted:
            if c < 0 or c > generations:
                raise OptimizationError(
                    f"checkpoint {c} outside [0, {generations}]"
                )
        store = None
        if checkpoint_dir is not None:
            if checkpoint_every < 1:
                raise OptimizationError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            from repro.core.checkpoint import CheckpointStore

            store = CheckpointStore(checkpoint_dir, self.label, obs=self.obs)
        run_params = {
            "generations": int(generations),
            "checkpoints": [int(c) for c in wanted],
            "population_size": int(self.config.population_size),
        }
        snapshots: list[GenerationSnapshot] = []
        elapsed_before = 0.0
        obs = self.obs
        resumed = False
        if store is not None and resume and store.exists():
            from repro.core.checkpoint import restore_state

            state = store.load()
            if dict(state.run_params) != run_params:
                raise CheckpointError(
                    f"checkpoint for {self.label!r} was saved under run "
                    f"parameters {dict(state.run_params)}; this run asked for "
                    f"{run_params}"
                )
            restore_state(self, state)
            snapshots = list(state.snapshots)
            elapsed_before = state.elapsed_seconds
            resumed = True
        if obs.enabled:
            # Stage totals accumulated before this run (resume of the
            # same engine): subtracted when emitting this run's
            # aggregate spans so trace totals reconcile per run.
            stage_base = dict(self.stage_timings.totals)
            count_base = dict(self.stage_timings.counts)
            obs.event(
                "run.resumed" if resumed else "run.started",
                generation=self.generation,
                generations=generations,
                evaluations=self._evaluations,
            )
        t0 = time.perf_counter()
        with obs.span("ga.run", generations=generations, resumed=resumed):
            if self.generation == 0 and 0 in wanted and generations > 0:
                snapshots.append(
                    self._snapshot(self.config.store_front_solutions)
                )
            while self.generation < generations:
                self.step()
                if self.generation in wanted and self.generation != generations:
                    snapshots.append(
                        self._snapshot(self.config.store_front_solutions)
                    )
                if progress is not None:
                    progress(self.generation, self)
                if store is not None and (
                    self.generation % checkpoint_every == 0
                    or self.generation == generations
                ):
                    from repro.core.checkpoint import capture_state

                    store.save(
                        capture_state(
                            self,
                            snapshots,
                            elapsed_before + (time.perf_counter() - t0),
                            run_params,
                        )
                    )
            # Final snapshot always, always with solutions.
            snapshots.append(self._snapshot(store_solutions=True))
        wall = elapsed_before + (time.perf_counter() - t0)
        if obs.enabled:
            for stage in sorted(self.stage_timings.totals):
                delta = (
                    self.stage_timings.totals[stage]
                    - stage_base.get(stage, 0.0)
                )
                count = (
                    self.stage_timings.counts[stage]
                    - count_base.get(stage, 0)
                )
                if count:
                    obs.record_span(
                        f"ga.stage_total.{stage}", delta, count=count,
                        aggregate=True,
                    )
            obs.event(
                "run.finished",
                generation=self.generation,
                evaluations=self._evaluations,
                wall_seconds=wall,
            )
            obs.sample_rss()
        return RunHistory(
            label=self.label,
            snapshots=tuple(snapshots),
            total_generations=self.generation,
            total_evaluations=self._evaluations,
            wall_seconds=wall,
        )

    def run_until(
        self,
        criterion,
        snapshot_every: int = 0,
        max_generations: int = 1_000_000,
    ) -> RunHistory:
        """Run until a :class:`~repro.core.termination.TerminationCriterion`
        fires (Algorithm 1's "while termination criterion is not met").

        Parameters
        ----------
        criterion:
            The stopping rule; consulted after every generation with a
            :class:`~repro.core.termination.TerminationContext`.
        snapshot_every:
            Record a front snapshot every this-many generations
            (0 = final only).
        max_generations:
            Hard safety bound.
        """
        from repro.core.termination import TerminationContext

        criterion.reset()
        snapshots: list[GenerationSnapshot] = []
        t0 = time.perf_counter()
        start_generation = self.generation
        while self.generation - start_generation < max_generations:
            self.step()
            completed = self.generation - start_generation
            if snapshot_every and completed % snapshot_every == 0:
                snapshots.append(
                    self._snapshot(self.config.store_front_solutions)
                )
            pts, _ = self.current_front()
            context = TerminationContext(
                generation=completed,
                evaluations=self._evaluations,
                elapsed_seconds=time.perf_counter() - t0,
                front_points=pts,
            )
            if criterion.should_stop(context):
                break
        if snapshots and snapshots[-1].generation == self.generation:
            snapshots.pop()  # replace with a solutions-bearing snapshot
        snapshots.append(self._snapshot(store_solutions=True))
        return RunHistory(
            label=self.label,
            snapshots=tuple(snapshots),
            total_generations=self.generation,
            total_evaluations=self._evaluations,
            wall_seconds=time.perf_counter() - t0,
        )
