"""The adapted NSGA-II engine (paper Algorithm 1).

Generational loop:

1. create the initial population of N chromosomes (random, optionally
   carrying heuristic seeds);
2. each generation: produce an offspring population of size N via N/2
   range-swap crossovers, mutate each offspring with a configured
   probability, evaluate the offspring in one vectorized batch;
3. combine parents and offspring into a 2N meta-population (elitism);
4. fast nondominated sort; fill the next parent population front by
   front; truncate the last partially fitting front by crowding
   distance;
5. repeat until the termination criterion (generation count) is met.

The run records :class:`GenerationSnapshot`\\ s of the rank-1 front at
requested checkpoint generations — the paper's "Pareto fronts through
various number of iterations" (Figures 3, 4, 6) fall straight out of
one run per seeded population.

Since the :mod:`repro.core.algorithm` redesign, :class:`NSGA2` is one
composition of the :class:`~repro.core.algorithm.EvolutionaryAlgorithm`
template: crowded binary tournament (or the paper's uniform draws) for
mating selection, the default range-swap crossover + mutation for
variation, and rank/crowding environmental selection for replacement.
Steady-state NSGA-II is the same class with
``AlgorithmConfig(offspring_size=1)``.  The composition draws from the
RNG in exactly the pre-refactor order, so fronts and checkpoints are
bit-identical to the monolithic engine (asserted against golden
artifacts by ``tests/test_core_algorithm.py``).
"""

from __future__ import annotations

import warnings
from typing import Any, Optional

import numpy as np

from repro.core.algorithm import (
    Algorithm,
    AlgorithmConfig,
    EvolutionaryAlgorithm,
    GenerationSnapshot,
    RunHistory,
)
from repro.core.archive import EpsilonParetoArchive
from repro.core.crowding import crowding_by_front, crowding_truncate
from repro.core.dominance import nondominated_mask
from repro.core.operators import OperatorConfig, binary_tournament_pairs
from repro.core.population import Population
from repro.core.sorting import fast_nondominated_sort, fronts_from_ranks
from repro.types import FloatArray, IntArray

__all__ = [
    "NSGA2Config",
    "AlgorithmConfig",
    "GenerationSnapshot",
    "RunHistory",
    "NSGA2",
    "EpsilonArchiveNSGA2",
]


def NSGA2Config(
    population_size: int = 100,
    operators: Optional[OperatorConfig] = None,
    store_front_solutions: bool = False,
    fast_path: bool = True,
    order_sampling: str = "legacy",
) -> AlgorithmConfig:
    """Deprecated alias for :class:`~repro.core.algorithm.AlgorithmConfig`.

    Kept (positional-argument compatible) so pre-redesign scripts keep
    running; new code should construct ``AlgorithmConfig`` directly
    with keyword arguments.
    """
    warnings.warn(
        "NSGA2Config is deprecated; use "
        "repro.core.AlgorithmConfig(population_size=..., ...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return AlgorithmConfig(
        population_size=population_size,
        operators=operators if operators is not None else OperatorConfig(),
        store_front_solutions=store_front_solutions,
        fast_path=fast_path,
        order_sampling=order_sampling,
    )


class NSGA2(EvolutionaryAlgorithm):
    """NSGA-II as a composition of the evolutionary template.

    Mating selection is the paper's uniform random draw (crossover
    draws parents itself) or Deb's crowded binary tournament when
    ``config.operators.parent_selection == "tournament"``; replacement
    is elitist rank/crowding environmental selection over the combined
    parent+offspring meta-population.  See
    :class:`~repro.core.algorithm.Algorithm` for constructor
    parameters.
    """

    name = "nsga2"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Cached front ranks of the current parent population, carried
        #: over from the last environmental selection (fast path only);
        #: ``None`` forces a fresh sort (initial population, resume).
        self._ranks: Optional[IntArray] = None

    # -- hooks -----------------------------------------------------------------

    def _parent_ranks(self) -> IntArray:
        """Front ranks of the current parent population.

        On the fast path the ranks computed during the previous
        environmental selection are reused: the selected subset keeps
        complete fronts 1..k plus part of front k+1, and every retained
        point keeps all its dominators from lower fronts, so the
        restriction of the meta-population ranks *is* the parent
        population's front-peeling ranks.
        """
        if self.config.fast_path and self._ranks is not None:
            if self._ranks.shape[0] == self.population.size:
                return self._ranks
        method = "auto" if self.config.fast_path else "matrix"
        ranks = fast_nondominated_sort(self.population.objectives, method=method)
        if self.config.fast_path:
            self._ranks = ranks
        return ranks

    def _mating_selection(self, parents: Population) -> Optional[IntArray]:
        if self.config.operators.parent_selection != "tournament":
            return None
        objectives = parents.objectives
        ranks = self._parent_ranks()
        crowding = crowding_by_front(objectives, ranks)
        return binary_tournament_pairs(
            ranks, crowding, self._offspring_pairs(), self._rng
        )

    def _replacement(
        self, parents: Population, offspring: Population
    ) -> Population:
        meta = parents.concatenate(offspring)
        return self._environmental_selection(meta)

    def _on_restore(self) -> None:
        # The rank cache is derived state; a fresh sort after resume
        # yields the same ranks (they are a pure function of the
        # objectives), so resumed runs stay bit-identical.
        self._ranks = None

    # -- environmental selection -----------------------------------------------

    def _environmental_selection(self, meta: Population) -> Population:
        """Pick the best N of the meta-population (steps 7-10).

        Both paths return the same rows in the same order: complete
        fronts in rank order (index-ascending within a front) followed
        by the crowding-truncated boundary front.  The fast path also
        caches the survivors' ranks for the next generation's
        tournament.
        """
        N = self.config.population_size
        if self.config.fast_path:
            ranks = fast_nondominated_sort(meta.objectives)
            # (rank, index)-ordered positions; the N-th one pins the
            # boundary front r*: fronts < r* fit completely.
            order = np.argsort(ranks, kind="stable")
            r_star = int(ranks[order[N - 1]])
            n_full = int(np.count_nonzero(ranks < r_star))
            boundary = np.flatnonzero(ranks == r_star)
            subset = crowding_truncate(meta.objectives[boundary], N - n_full)
            indices = np.concatenate([order[:n_full], boundary[subset]])
            self._ranks = ranks[indices]
            return meta.select(indices)
        ranks = fast_nondominated_sort(meta.objectives, method="matrix")
        selected: list[np.ndarray] = []
        count = 0
        for front in fronts_from_ranks(ranks):
            if count + front.size <= N:
                selected.append(front)
                count += front.size
                if count == N:
                    break
            else:
                keep = N - count
                subset = crowding_truncate(meta.objectives[front], keep)
                selected.append(front[subset])
                count = N
                break
        indices = np.concatenate(selected)
        self._ranks = None
        return meta.select(indices)


class EpsilonArchiveNSGA2(NSGA2):
    """NSGA-II with an external ε-dominance archive (Laumanns et al. 2002).

    The generational loop is exactly :class:`NSGA2` (same RNG stream,
    same population trajectory); in addition every generation's
    nondominated meta-population points are folded into an
    :class:`~repro.core.archive.EpsilonParetoArchive`, and snapshots
    report the *archive* front instead of the population front.  The
    archive guarantees a bounded, well-spread approximation set: no two
    reported points are within one ε-box of each other, and every point
    ever visited is ε-dominated by some reported point.

    Parameters
    ----------
    epsilon:
        Relative ε resolution: absolute per-axis box sizes are
        ``epsilon`` times the initial population's objective ranges
        (degenerate ranges fall back to 1.0).  Default ``1e-3``.
    Other parameters are those of :class:`~repro.core.algorithm.Algorithm`.
    """

    name = "eps-archive"

    def __init__(self, *args, epsilon: float = 1e-3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if epsilon <= 0:
            from repro.errors import OptimizationError

            raise OptimizationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        objectives = self.population.objectives
        span = objectives.max(axis=0) - objectives.min(axis=0)
        span = np.where(span > 0, span, 1.0)
        self.archive = EpsilonParetoArchive(
            epsilons=(self.epsilon * span[0], self.epsilon * span[1])
        )
        self._archive_population(self.population)

    def _archive_population(self, population: Population) -> None:
        """Fold *population*'s nondominated points into the archive."""
        objectives = population.objectives
        rows = np.flatnonzero(nondominated_mask(objectives))
        payloads = [
            (population.assignments[i].copy(), population.orders[i].copy())
            for i in rows
        ]
        self.archive.update(objectives[rows], payloads)

    def _replacement(
        self, parents: Population, offspring: Population
    ) -> Population:
        meta = parents.concatenate(offspring)
        self._archive_population(meta)
        return self._environmental_selection(meta)

    # -- snapshots report the archive front ------------------------------------

    def current_front(self) -> tuple[FloatArray, np.ndarray]:
        """Archive points (sorted by energy) and their archive rows."""
        pts = self.archive.points
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        return pts[order], order

    def _front_solutions(self, rows: np.ndarray) -> tuple[IntArray, IntArray]:
        payloads = self.archive.payloads
        assignments = np.stack([payloads[i][0] for i in rows])
        orders = np.stack([payloads[i][1] for i in rows])
        return assignments, orders

    # -- checkpointing ---------------------------------------------------------

    def _capture_algo_state(self) -> dict[str, Any]:
        payloads = self.archive.payloads
        return {
            "epsilons": list(self.archive.epsilons),
            "points": self.archive.points.tolist(),
            "assignments": [p[0].tolist() for p in payloads],
            "orders": [p[1].tolist() for p in payloads],
        }

    def _restore_algo_state(self, doc: dict[str, Any]) -> None:
        if not doc:
            return  # pre-archive checkpoint: keep the freshly built archive
        self.archive = EpsilonParetoArchive(
            epsilons=tuple(float(e) for e in doc["epsilons"])
        )
        points = np.asarray(doc["points"], dtype=np.float64)
        payloads = [
            (
                np.asarray(a, dtype=np.int64),
                np.asarray(o, dtype=np.int64),
            )
            for a, o in zip(doc["assignments"], doc["orders"])
        ]
        if points.size:
            self.archive.update(points, payloads)
