"""The adapted NSGA-II engine (paper Algorithm 1).

Generational loop:

1. create the initial population of N chromosomes (random, optionally
   carrying heuristic seeds);
2. each generation: produce an offspring population of size N via N/2
   range-swap crossovers, mutate each offspring with a configured
   probability, evaluate the offspring in one vectorized batch;
3. combine parents and offspring into a 2N meta-population (elitism);
4. fast nondominated sort; fill the next parent population front by
   front; truncate the last partially fitting front by crowding
   distance;
5. repeat until the termination criterion (generation count) is met.

The run records :class:`GenerationSnapshot`\\ s of the rank-1 front at
requested checkpoint generations — the paper's "Pareto fronts through
various number of iterations" (Figures 3, 4, 6) fall straight out of
one run per seeded population.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.crowding import crowding_truncate
from repro.core.dominance import nondominated_mask
from repro.core.operators import (
    FeasibleMachines,
    OperatorConfig,
    VariationOperators,
)
from repro.core.population import Population
from repro.core.seeding import seeded_initial_population
from repro.core.sorting import fast_nondominated_sort, fronts_from_ranks
from repro.errors import CheckpointError, OptimizationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray, IntArray

__all__ = ["NSGA2Config", "GenerationSnapshot", "RunHistory", "NSGA2"]


@dataclass(frozen=True, slots=True)
class NSGA2Config:
    """Engine parameters.

    Attributes
    ----------
    population_size:
        N — parent population size (paper example: 100).
    operators:
        Crossover/mutation configuration.
    store_front_solutions:
        Keep the chromosomes (not just objective points) of each
        checkpoint front.  Off by default to bound memory for long
        runs; the final front's chromosomes are always kept.
    """

    population_size: int = 100
    operators: OperatorConfig = field(default_factory=OperatorConfig)
    store_front_solutions: bool = False

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError(
                f"population_size must be >= 2, got {self.population_size}"
            )


@dataclass(frozen=True)
class GenerationSnapshot:
    """The rank-1 (Pareto) front of the population at one checkpoint.

    Attributes
    ----------
    generation:
        Generation count at the snapshot (0 = initial population).
    front_points:
        ``(F, 2)`` (energy, utility) points, sorted by energy.
    front_assignments, front_orders:
        ``(F, T)`` chromosome arrays when stored, else ``None``.
    evaluations:
        Cumulative chromosome evaluations at the snapshot.
    """

    generation: int
    front_points: FloatArray
    front_assignments: Optional[IntArray]
    front_orders: Optional[IntArray]
    evaluations: int

    @property
    def front_size(self) -> int:
        """Number of points on the snapshot front."""
        return int(self.front_points.shape[0])

    def best_utility_point(self) -> tuple[float, float]:
        """The (energy, utility) point with maximum utility."""
        i = int(np.argmax(self.front_points[:, 1]))
        return tuple(self.front_points[i])  # type: ignore[return-value]

    def best_energy_point(self) -> tuple[float, float]:
        """The (energy, utility) point with minimum energy."""
        i = int(np.argmin(self.front_points[:, 0]))
        return tuple(self.front_points[i])  # type: ignore[return-value]


@dataclass(frozen=True)
class RunHistory:
    """Everything one NSGA-II run produced."""

    label: str
    snapshots: tuple[GenerationSnapshot, ...]
    total_generations: int
    total_evaluations: int
    wall_seconds: float

    def snapshot_at(self, generation: int) -> GenerationSnapshot:
        """The snapshot recorded at exactly *generation*."""
        for snap in self.snapshots:
            if snap.generation == generation:
                return snap
        raise OptimizationError(
            f"no snapshot at generation {generation}; available: "
            f"{[s.generation for s in self.snapshots]}"
        )

    @property
    def final(self) -> GenerationSnapshot:
        """The last snapshot (the run's final Pareto front)."""
        return self.snapshots[-1]


class NSGA2:
    """One NSGA-II optimization bound to an evaluator.

    Parameters
    ----------
    evaluator:
        The (system, trace) schedule evaluator.
    config:
        Engine parameters.
    seeds:
        Heuristic seed allocations injected into the initial population.
    rng:
        Seed or generator driving all stochastic choices of this run.
    label:
        Name used in reports (e.g. ``"min-energy seed"``).
    """

    def __init__(
        self,
        evaluator: ScheduleEvaluator,
        config: NSGA2Config = NSGA2Config(),
        seeds: Sequence[ResourceAllocation] = (),
        rng: SeedLike = None,
        label: str = "nsga2",
    ) -> None:
        self.evaluator = evaluator
        self.config = config
        self.label = label
        self._rng = ensure_rng(rng)
        self.feasible = FeasibleMachines.from_system_trace(
            evaluator.system, evaluator.trace
        )
        self.operators = VariationOperators(self.feasible, config.operators)
        self.population = seeded_initial_population(
            self.feasible, config.population_size, list(seeds), self._rng
        )
        self.population.evaluate(evaluator)
        self._evaluations = self.population.size
        self.generation = 0

    # -- one generation -------------------------------------------------------

    def step(self) -> None:
        """Advance one generation (Algorithm 1 steps 3-11)."""
        parents = self.population
        parent_pairs = None
        if self.config.operators.parent_selection == "tournament":
            from repro.core.crowding import crowding_distance
            from repro.core.operators import binary_tournament_pairs

            objectives = parents.objectives
            ranks = fast_nondominated_sort(objectives)
            crowding = np.zeros(parents.size)
            for front in fronts_from_ranks(ranks):
                crowding[front] = np.nan_to_num(
                    crowding_distance(objectives[front]), posinf=np.inf
                )
            parent_pairs = binary_tournament_pairs(
                ranks, crowding, parents.size // 2, self._rng
            )
        child_assign, child_order = self.operators.crossover_population(
            parents.assignments, parents.orders, self._rng,
            parent_pairs=parent_pairs,
        )
        child_assign, child_order = self.operators.mutate_population(
            child_assign, child_order, self._rng
        )
        offspring = Population(assignments=child_assign, orders=child_order)
        offspring.evaluate(self.evaluator)
        self._evaluations += offspring.size

        meta = parents.concatenate(offspring)
        self.population = self._environmental_selection(meta)
        self.generation += 1

    def _environmental_selection(self, meta: Population) -> Population:
        """Pick the best N of the 2N meta-population (steps 7-10)."""
        N = self.config.population_size
        ranks = fast_nondominated_sort(meta.objectives)
        selected: list[np.ndarray] = []
        count = 0
        for front in fronts_from_ranks(ranks):
            if count + front.size <= N:
                selected.append(front)
                count += front.size
                if count == N:
                    break
            else:
                keep = N - count
                subset = crowding_truncate(meta.objectives[front], keep)
                selected.append(front[subset])
                count = N
                break
        indices = np.concatenate(selected)
        return meta.select(indices)

    # -- snapshots -------------------------------------------------------------

    def current_front(self) -> tuple[FloatArray, np.ndarray]:
        """Current rank-1 points (sorted by energy) and their row indices."""
        objectives = self.population.objectives
        mask = nondominated_mask(objectives)
        rows = np.flatnonzero(mask)
        pts = objectives[rows]
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        return pts[order], rows[order]

    def _snapshot(self, store_solutions: bool) -> GenerationSnapshot:
        pts, rows = self.current_front()
        assignments = orders = None
        if store_solutions:
            assignments = self.population.assignments[rows].copy()
            orders = self.population.orders[rows].copy()
        return GenerationSnapshot(
            generation=self.generation,
            front_points=pts,
            front_assignments=assignments,
            front_orders=orders,
            evaluations=self._evaluations,
        )

    # -- full run ---------------------------------------------------------------

    def run(
        self,
        generations: int,
        checkpoints: Optional[Sequence[int]] = None,
        progress: Optional[Callable[[int, "NSGA2"], None]] = None,
        *,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
    ) -> RunHistory:
        """Run for *generations*, snapshotting at *checkpoints*.

        Parameters
        ----------
        generations:
            Total generations to run ("iterations" in the paper's
            figures).
        checkpoints:
            Sorted generation counts to snapshot; the final generation
            is always snapshotted (with solutions).  Defaults to just
            the final generation.
        progress:
            Optional callback invoked after every generation.
        checkpoint_dir:
            When set, the full engine state is durably persisted into
            this directory (one atomically replaced file per run label)
            so a killed process can resume without losing progress.
        checkpoint_every:
            Persist every this-many generations (default 1: at most one
            generation of work is ever lost).  Raise it when disk IO is
            a measurable fraction of generation time.
        resume:
            Load the label's checkpoint from *checkpoint_dir* (if one
            exists) and continue from it.  The resumed run's objective
            points are bit-identical to an uninterrupted run with the
            same seed.  A checkpoint saved under different run
            parameters raises :class:`~repro.errors.CheckpointError`;
            a damaged checkpoint raises
            :class:`~repro.errors.CorruptArtifactError`.
        """
        if generations < 0:
            raise OptimizationError(f"generations must be >= 0, got {generations}")
        wanted = sorted(set(checkpoints or [])) if checkpoints else []
        for c in wanted:
            if c < 0 or c > generations:
                raise OptimizationError(
                    f"checkpoint {c} outside [0, {generations}]"
                )
        store = None
        if checkpoint_dir is not None:
            if checkpoint_every < 1:
                raise OptimizationError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            from repro.core.checkpoint import CheckpointStore

            store = CheckpointStore(checkpoint_dir, self.label)
        run_params = {
            "generations": int(generations),
            "checkpoints": [int(c) for c in wanted],
            "population_size": int(self.config.population_size),
        }
        snapshots: list[GenerationSnapshot] = []
        elapsed_before = 0.0
        if store is not None and resume and store.exists():
            from repro.core.checkpoint import restore_state

            state = store.load()
            if dict(state.run_params) != run_params:
                raise CheckpointError(
                    f"checkpoint for {self.label!r} was saved under run "
                    f"parameters {dict(state.run_params)}; this run asked for "
                    f"{run_params}"
                )
            restore_state(self, state)
            snapshots = list(state.snapshots)
            elapsed_before = state.elapsed_seconds
        t0 = time.perf_counter()
        if self.generation == 0 and 0 in wanted and generations > 0:
            snapshots.append(self._snapshot(self.config.store_front_solutions))
        while self.generation < generations:
            self.step()
            if self.generation in wanted and self.generation != generations:
                snapshots.append(
                    self._snapshot(self.config.store_front_solutions)
                )
            if progress is not None:
                progress(self.generation, self)
            if store is not None and (
                self.generation % checkpoint_every == 0
                or self.generation == generations
            ):
                from repro.core.checkpoint import capture_state

                store.save(
                    capture_state(
                        self,
                        snapshots,
                        elapsed_before + (time.perf_counter() - t0),
                        run_params,
                    )
                )
        # Final snapshot always, always with solutions.
        snapshots.append(self._snapshot(store_solutions=True))
        wall = elapsed_before + (time.perf_counter() - t0)
        return RunHistory(
            label=self.label,
            snapshots=tuple(snapshots),
            total_generations=self.generation,
            total_evaluations=self._evaluations,
            wall_seconds=wall,
        )

    def run_until(
        self,
        criterion,
        snapshot_every: int = 0,
        max_generations: int = 1_000_000,
    ) -> RunHistory:
        """Run until a :class:`~repro.core.termination.TerminationCriterion`
        fires (Algorithm 1's "while termination criterion is not met").

        Parameters
        ----------
        criterion:
            The stopping rule; consulted after every generation with a
            :class:`~repro.core.termination.TerminationContext`.
        snapshot_every:
            Record a front snapshot every this-many generations
            (0 = final only).
        max_generations:
            Hard safety bound.
        """
        from repro.core.termination import TerminationContext

        criterion.reset()
        snapshots: list[GenerationSnapshot] = []
        t0 = time.perf_counter()
        start_generation = self.generation
        while self.generation - start_generation < max_generations:
            self.step()
            completed = self.generation - start_generation
            if snapshot_every and completed % snapshot_every == 0:
                snapshots.append(
                    self._snapshot(self.config.store_front_solutions)
                )
            pts, _ = self.current_front()
            context = TerminationContext(
                generation=completed,
                evaluations=self._evaluations,
                elapsed_seconds=time.perf_counter() - t0,
                front_points=pts,
            )
            if criterion.should_stop(context):
                break
        if snapshots and snapshots[-1].generation == self.generation:
            snapshots.pop()  # replace with a solutions-bearing snapshot
        snapshots.append(self._snapshot(store_solutions=True))
        return RunHistory(
            label=self.label,
            snapshots=tuple(snapshots),
            total_generations=self.generation,
            total_evaluations=self._evaluations,
            wall_seconds=time.perf_counter() - t0,
        )
