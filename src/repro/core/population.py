"""Packed population container for the NSGA-II engine.

A population is stored struct-of-arrays: ``(N, T)`` machine assignments,
``(N, T)`` scheduling-order keys, and ``(N,)`` energy/utility vectors —
the layout the batch evaluator and the variation operators consume
directly (HPC guide: operate on whole arrays, avoid per-object
indirection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.operators import FeasibleMachines
from repro.errors import OptimizationError
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray, IntArray

__all__ = ["Population"]


@dataclass
class Population:
    """A set of chromosomes with (optionally) evaluated objectives.

    Attributes
    ----------
    assignments, orders:
        ``(N, T)`` int arrays (one chromosome per row).
    energies, utilities:
        ``(N,)`` objective vectors; ``None`` until :meth:`evaluate`.
    """

    assignments: IntArray
    orders: IntArray
    energies: Optional[FloatArray] = None
    utilities: Optional[FloatArray] = None

    def __post_init__(self) -> None:
        self.assignments = np.asarray(self.assignments, dtype=np.int64)
        self.orders = np.asarray(self.orders, dtype=np.int64)
        if self.assignments.ndim != 2 or self.assignments.shape != self.orders.shape:
            raise OptimizationError(
                "population arrays must be equal-shape 2-D; got "
                f"{self.assignments.shape} and {self.orders.shape}"
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def random(
        cls,
        feasible: FeasibleMachines,
        size: int,
        rng: np.random.Generator,
        order_sampling: str = "legacy",
    ) -> "Population":
        """Uniformly random feasible population.

        Machines are drawn uniformly among each task's feasible set;
        each chromosome's scheduling order is an independent uniform
        permutation of ``0..T-1``.

        Parameters
        ----------
        order_sampling:
            ``"legacy"`` (default) draws one ``rng.permutation`` per row
            — the historical stream, kept so existing seeds and
            checkpoints reproduce bit-identically.  ``"vectorized"``
            argsorts one ``(size, T)`` uniform key matrix: each row is
            an independent uniform permutation (keys are distinct with
            probability 1) drawn in a single vectorized operation, but
            from a different point of the RNG stream.
        """
        if size < 1:
            raise OptimizationError(f"population size must be >= 1, got {size}")
        if order_sampling not in ("legacy", "vectorized"):
            raise OptimizationError(
                "order_sampling must be 'legacy' or 'vectorized'; got "
                f"{order_sampling!r}"
            )
        T = feasible.num_tasks
        assignments = feasible.sample_matrix(size, rng)
        if order_sampling == "vectorized":
            keys = rng.random((size, T))
            orders = np.argsort(keys, axis=1).astype(np.int64)
        else:
            orders = np.empty((size, T), dtype=np.int64)
            for i in range(size):  # permutations per row; loop over N only
                orders[i] = rng.permutation(T)
        return cls(assignments=assignments, orders=orders)

    # -- sizes ---------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of chromosomes ``N``."""
        return int(self.assignments.shape[0])

    @property
    def num_tasks(self) -> int:
        """Genes per chromosome ``T``."""
        return int(self.assignments.shape[1])

    def __len__(self) -> int:
        return self.size

    # -- objectives ------------------------------------------------------------

    @property
    def is_evaluated(self) -> bool:
        """Whether objective vectors are present."""
        return self.energies is not None and self.utilities is not None

    def evaluate(self, evaluator: ScheduleEvaluator) -> None:
        """Fill the objective vectors with one batch evaluation."""
        self.energies, self.utilities = evaluator.evaluate_batch(
            self.assignments, self.orders
        )

    @property
    def objectives(self) -> FloatArray:
        """``(N, 2)`` array of (energy, utility) pairs."""
        if not self.is_evaluated:
            raise OptimizationError("population has not been evaluated")
        return np.column_stack([self.energies, self.utilities])

    # -- composition -------------------------------------------------------------

    def concatenate(self, other: "Population") -> "Population":
        """Meta-population: self then other (Algorithm 1, step 6)."""
        if self.num_tasks != other.num_tasks:
            raise OptimizationError("populations cover different task counts")
        if not (self.is_evaluated and other.is_evaluated):
            raise OptimizationError(
                "both populations must be evaluated before combining"
            )
        return Population(
            assignments=np.vstack([self.assignments, other.assignments]),
            orders=np.vstack([self.orders, other.orders]),
            energies=np.concatenate([self.energies, other.energies]),
            utilities=np.concatenate([self.utilities, other.utilities]),
        )

    def select(self, indices: np.ndarray) -> "Population":
        """Row subset (keeps objective vectors aligned)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Population(
            assignments=self.assignments[indices],
            orders=self.orders[indices],
            energies=None if self.energies is None else self.energies[indices],
            utilities=None if self.utilities is None else self.utilities[indices],
        )

    def allocation(self, i: int) -> ResourceAllocation:
        """The *i*-th chromosome as a simulator allocation."""
        if not (0 <= i < self.size):
            raise OptimizationError(f"index {i} out of range [0, {self.size})")
        return ResourceAllocation(
            machine_assignment=self.assignments[i],
            scheduling_order=self.orders[i],
        )
