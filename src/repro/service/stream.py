"""Continuous arrival streams chopped into dispatch windows.

The service consumes :class:`WindowBatch` objects — the tasks that
arrived during one dispatch window, with *absolute* arrival times on
the service clock.  Two sources are provided:

* :class:`ArrivalStream` — synthetic traffic: per-window task counts
  drawn Poisson(rate × window) and arrival times from any
  :class:`~repro.workload.arrivals.ArrivalProcess`, with task types
  from a :class:`~repro.workload.generator.TaskTypeMix`.  Windows are
  seeded independently (``derive_seed(seed, "window", k)``), so the
  stream is deterministic per seed, across processes, and regardless
  of how many windows a consumer takes.
* :func:`windows_from_trace` — replay of a recorded
  :class:`~repro.workload.trace.Trace` (e.g. an SWF import) in
  fixed-width windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.rng import derive_seed
from repro.types import FloatArray, IntArray
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.generator import TaskTypeMix
from repro.workload.trace import Trace

__all__ = ["WindowBatch", "ArrivalStream", "windows_from_trace"]


@dataclass(frozen=True)
class WindowBatch:
    """Tasks that arrived during one dispatch window.

    Attributes
    ----------
    index:
        Zero-based window number.
    start, end:
        Window bounds on the service clock; arrivals lie in
        ``[start, end)``.
    task_types:
        ``(B,)`` task-type indices (``B`` may be 0: an idle window).
    arrival_times:
        ``(B,)`` sorted absolute arrival times.
    """

    index: int
    start: float
    end: float
    task_types: IntArray
    arrival_times: FloatArray

    def __post_init__(self) -> None:
        types = np.asarray(self.task_types, dtype=np.int64)
        arrivals = np.asarray(self.arrival_times, dtype=np.float64)
        if types.shape != arrivals.shape or types.ndim != 1:
            raise WorkloadError(
                f"window batch arrays must be equal-length 1-D; got "
                f"{types.shape} and {arrivals.shape}"
            )
        if arrivals.size:
            if np.any(np.diff(arrivals) < 0):
                raise WorkloadError("window arrivals must be sorted")
            if arrivals[0] < self.start or arrivals[-1] >= self.end:
                raise WorkloadError(
                    f"window {self.index} arrivals outside "
                    f"[{self.start}, {self.end})"
                )
        object.__setattr__(self, "task_types", types)
        object.__setattr__(self, "arrival_times", arrivals)

    @property
    def count(self) -> int:
        """Number of tasks in the window."""
        return int(self.task_types.shape[0])


@dataclass(frozen=True)
class ArrivalStream:
    """Deterministic synthetic task stream, one window at a time.

    Attributes
    ----------
    mix:
        Task-type distribution.
    window:
        Dispatch window length (seconds).
    rate:
        Mean arrival rate (tasks/second); each window's count is
        Poisson(rate × window), so idle (zero-task) windows occur
        naturally at low rates.
    arrivals:
        Within-window arrival-time process (default Poisson, i.e.
        uniform order statistics).
    seed:
        Base seed; window *k* derives its count, types, and times from
        ``derive_seed(seed, "window", k)`` alone.
    """

    mix: TaskTypeMix
    window: float
    rate: float
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivals)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise WorkloadError(f"window must be positive, got {self.window}")
        if self.rate < 0:
            raise WorkloadError(f"rate must be >= 0, got {self.rate}")

    def batch(self, index: int) -> WindowBatch:
        """The *index*-th window's tasks (random access, O(window))."""
        if index < 0:
            raise WorkloadError(f"window index must be >= 0, got {index}")
        window_seed = derive_seed(self.seed, "service-window", index)
        rng = np.random.default_rng(window_seed)
        count = int(rng.poisson(self.rate * self.window))
        start = index * self.window
        if count == 0:
            return WindowBatch(
                index=index, start=start, end=start + self.window,
                task_types=np.empty(0, dtype=np.int64),
                arrival_times=np.empty(0, dtype=np.float64),
            )
        types = self.mix.sample(count, derive_seed(window_seed, "types"))
        offsets = self.arrivals.generate(
            count, self.window, derive_seed(window_seed, "arrivals")
        )
        return WindowBatch(
            index=index, start=start, end=start + self.window,
            task_types=types.astype(np.int64),
            arrival_times=start + offsets,
        )

    def windows(self, num_windows: int) -> Iterator[WindowBatch]:
        """Iterate the first *num_windows* windows."""
        for k in range(num_windows):
            yield self.batch(k)


def windows_from_trace(
    trace: Trace, window: float, num_windows: Optional[int] = None
) -> Iterator[WindowBatch]:
    """Replay a recorded trace as fixed-width dispatch windows.

    Arrivals exactly on a window boundary belong to the *later* window
    (half-open ``[start, end)`` buckets).  *num_windows* defaults to
    just enough windows to cover every arrival.
    """
    if window <= 0:
        raise WorkloadError(f"window must be positive, got {window}")
    arrivals = trace.arrival_times
    if num_windows is None:
        num_windows = int(np.floor(arrivals[-1] / window)) + 1
    bounds = np.arange(num_windows + 1, dtype=np.float64) * window
    starts = np.searchsorted(arrivals, bounds, side="left")
    for k in range(num_windows):
        lo, hi = int(starts[k]), int(starts[k + 1])
        yield WindowBatch(
            index=k, start=float(bounds[k]), end=float(bounds[k + 1]),
            task_types=trace.task_types[lo:hi].copy(),
            arrival_times=trace.arrival_times[lo:hi].copy(),
        )
