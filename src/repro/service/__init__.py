"""Online streaming dispatch service (see ``docs/online_service.md``).

Long-running windowed re-optimization: tasks arrive continuously from
an arrival process (or a recorded trace), are buffered into dispatch
windows, and each window is re-optimized by a warm-started evolutionary
run over the *pinned-prefix* horizon — every already-dispatched task is
frozen at the head of its machine queue, so the population's committed
queue prefixes hit the batch kernel's content-fingerprint cache across
generations *and* across windows.  An incrementally maintained
:class:`~repro.core.archive.EpsilonParetoArchive` absorbs every
window's front, keeping a Pareto-optimal energy/utility trade-off
available to the dispatch policy at all times.
"""

from repro.service.dispatch import (
    DispatchService,
    ServiceConfig,
    ServiceResult,
    WindowReport,
)
from repro.service.stream import ArrivalStream, WindowBatch, windows_from_trace
from repro.service.window import CommittedLedger, WindowEvaluator

__all__ = [
    "ArrivalStream",
    "WindowBatch",
    "windows_from_trace",
    "CommittedLedger",
    "WindowEvaluator",
    "ServiceConfig",
    "DispatchService",
    "ServiceResult",
    "WindowReport",
]
