"""Pinned-prefix window evaluation over a growing committed horizon.

The optimization trick behind the service: instead of re-optimizing
each window in isolation (which would ignore queue backlogs left by
earlier dispatches), every window is optimized over the *full* horizon
trace — all committed (already-dispatched) tasks plus the window's
free tasks — with the committed genes frozen in every chromosome:

* Committed order keys are the keys the winning chromosome carried
  when its window was optimized; free keys are offset by
  ``order_base`` (the count of every task committed so far), so
  committed tasks sort strictly before free tasks in every machine
  queue and their queue prefix is **identical across the whole
  population, across generations, and across windows**.
* That identical prefix is exactly what the batch kernel's
  content-fingerprint caches key on: with the previous window's kernel
  state adopted (:meth:`~repro.sim.evaluator.ScheduleEvaluator.adopt_kernel_state`),
  committed prefixes hit the cache instead of being re-folded.
* Because committed tasks occupy the head of their queues, their
  finish times, energies, and utilities are *constants* with respect
  to the free genes — the committed contribution shifts every
  objective point by the same vector, preserving Pareto structure
  while making each window's objectives service-cumulative.

:class:`CommittedLedger` is the durable record of dispatched tasks;
:class:`WindowEvaluator` is the evaluator adapter the per-window
algorithm runs against (it presents only the free tasks to the GA and
splices the committed prefix into every batch).  Compaction drops
committed tasks that can no longer interact with future arrivals
(queue-prefix finish times at or before the window start), bounding
the horizon length for indefinite streams at the cost of a kernel
cache reset (task indices shift, so fingerprints change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ScheduleError
from repro.sim.evaluator import DEFAULT_CACHE_SIZE, ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray, IntArray
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import SystemModel
    from repro.obs.context import RunContext
    from repro.service.stream import WindowBatch

__all__ = ["CommittedLedger", "WindowEvaluator"]


def _empty_i64() -> IntArray:
    return np.empty(0, dtype=np.int64)


def _empty_f64() -> FloatArray:
    return np.empty(0, dtype=np.float64)


@dataclass
class CommittedLedger:
    """Record of every dispatched (committed) task still on the horizon.

    Arrays are aligned and arrival-sorted (windows commit in order).
    ``order_keys`` are the absolute scheduling keys committed tasks
    carried when their window was optimized — kept verbatim so the
    committed queue content (and hence its kernel fingerprint) never
    changes after commit.  ``energy_offset``/``utility_offset``
    accumulate the contributions of *compacted* tasks, which leave the
    horizon trace but stay in the service totals.
    """

    task_types: IntArray = field(default_factory=_empty_i64)
    arrival_times: FloatArray = field(default_factory=_empty_f64)
    machine_assignment: IntArray = field(default_factory=_empty_i64)
    order_keys: IntArray = field(default_factory=_empty_i64)
    finish_times: FloatArray = field(default_factory=_empty_f64)
    task_energies: FloatArray = field(default_factory=_empty_f64)
    task_utilities: FloatArray = field(default_factory=_empty_f64)
    energy_offset: float = 0.0
    utility_offset: float = 0.0
    #: Next window's free order keys start here (>= every committed key
    #: + 1, so committed tasks always sort first in their queues).
    order_base: int = 0
    dispatched_total: int = 0
    compacted_total: int = 0
    #: Bumped on every compaction: task indices shift, so adopted
    #: kernel state from an earlier epoch would be silently stale.
    epoch: int = 0

    @property
    def active(self) -> int:
        """Committed tasks still in the horizon trace."""
        return int(self.task_types.shape[0])

    @property
    def total_energy(self) -> float:
        """Cumulative energy of every task ever dispatched."""
        return float(self.task_energies.sum()) + self.energy_offset

    @property
    def total_utility(self) -> float:
        """Cumulative utility of every task ever dispatched."""
        return float(self.task_utilities.sum()) + self.utility_offset

    def commit(
        self,
        batch: "WindowBatch",
        assignment: IntArray,
        order_keys: IntArray,
        finish_times: FloatArray,
        task_energies: FloatArray,
        task_utilities: FloatArray,
    ) -> None:
        """Append one window's dispatched tasks.

        *order_keys* are the absolute keys used during the window's
        optimization (free keys already offset by :attr:`order_base`);
        keeping them verbatim is what makes the committed queue prefix
        byte-stable for the kernel caches.
        """
        count = batch.count
        arrays = (assignment, order_keys, finish_times, task_energies,
                  task_utilities)
        if any(a.shape != (count,) for a in arrays):
            raise ScheduleError(
                f"commit arrays must all have shape ({count},)"
            )
        if count and self.arrival_times.size and (
            batch.arrival_times[0] < self.arrival_times[-1]
        ):
            raise ScheduleError(
                "windows must commit in arrival order (append-only horizon)"
            )
        if count and int(order_keys.min()) < self.order_base:
            raise ScheduleError(
                "committed order keys must not collide with earlier windows"
            )
        self.task_types = np.concatenate([self.task_types, batch.task_types])
        self.arrival_times = np.concatenate(
            [self.arrival_times, batch.arrival_times]
        )
        self.machine_assignment = np.concatenate(
            [self.machine_assignment, assignment.astype(np.int64)]
        )
        self.order_keys = np.concatenate(
            [self.order_keys, order_keys.astype(np.int64)]
        )
        self.finish_times = np.concatenate(
            [self.finish_times, finish_times.astype(np.float64)]
        )
        self.task_energies = np.concatenate(
            [self.task_energies, task_energies.astype(np.float64)]
        )
        self.task_utilities = np.concatenate(
            [self.task_utilities, task_utilities.astype(np.float64)]
        )
        self.dispatched_total += count
        # Advance the base past this window's keys (a permutation of
        # [order_base, order_base + count)), so the next window's free
        # tasks sort strictly after everything committed.
        self.order_base += count

    def compact(self, horizon_start: float) -> int:
        """Drop committed tasks that can no longer affect the future.

        A committed queue prefix is droppable when its last finish time
        is at or before both *horizon_start* (no future arrival can
        slot in front of it) and the arrival of the next committed task
        in the same queue (the survivor's start recurrence then no
        longer depends on the dropped prefix).  Finish times are
        nondecreasing along a queue, so checking the boundary task
        suffices.  Dropped contributions move into the offsets; the
        remaining keys are renumbered densely (order preserved) so
        order keys stay small forever; :attr:`epoch` is bumped because
        horizon task indices shift — callers must rebuild kernel state.

        Returns the number of tasks dropped (0 = nothing to do, and the
        ledger — including :attr:`epoch` — is untouched).
        """
        C = self.active
        if C == 0:
            return 0
        drop = np.zeros(C, dtype=bool)
        for m in np.unique(self.machine_assignment):
            idx = np.flatnonzero(self.machine_assignment == m)
            queue = idx[np.argsort(self.order_keys[idx], kind="stable")]
            finishes = self.finish_times[queue]
            # Longest droppable prefix: walk from the back so one scan
            # finds it (prefix finishes are nondecreasing).
            for r in range(queue.size, 0, -1):
                boundary = (
                    self.arrival_times[queue[r]] if r < queue.size
                    else horizon_start
                )
                if finishes[r - 1] <= min(horizon_start, boundary):
                    drop[queue[:r]] = True
                    break
        dropped = int(drop.sum())
        if dropped == 0:
            return 0
        self.energy_offset += float(self.task_energies[drop].sum())
        self.utility_offset += float(self.task_utilities[drop].sum())
        keep = ~drop
        self.task_types = self.task_types[keep]
        self.arrival_times = self.arrival_times[keep]
        self.machine_assignment = self.machine_assignment[keep]
        self.finish_times = self.finish_times[keep]
        self.task_energies = self.task_energies[keep]
        self.task_utilities = self.task_utilities[keep]
        kept_keys = self.order_keys[keep]
        # Dense renumber preserving relative order: keys stay bounded
        # by the active horizon length no matter how long the stream
        # runs, which keeps the kernel's order-key table applicable.
        self.order_keys = np.argsort(
            np.argsort(kept_keys, kind="stable"), kind="stable"
        ).astype(np.int64)
        self.order_base = int(self.order_keys.shape[0])
        self.compacted_total += dropped
        self.epoch += 1
        return dropped


class WindowEvaluator:
    """Evaluator adapter for one dispatch window (free genes only).

    Presents the GA-facing evaluator surface (``system``, ``trace``,
    ``num_tasks``, ``evaluate_batch``) over the window's **free** tasks
    while evaluating every chromosome on the **full horizon trace**
    with the committed prefix spliced in.  Committed genes are frozen
    and sort first in every queue; free order keys are offset by the
    ledger's ``order_base``.  Objectives returned are
    service-cumulative: horizon totals plus the ledger's compaction
    offsets.

    Construction builds a full :class:`ScheduleEvaluator` over the
    horizon; pass the previous window's adapter via *reuse_from* to
    adopt its batch-kernel queue-state caches (only valid within the
    same ledger epoch — a compaction shifts task indices and forces a
    cold kernel).
    """

    def __init__(
        self,
        system: "SystemModel",
        ledger: CommittedLedger,
        batch: "WindowBatch",
        kernel_method: str = "batch",
        cache_size: int = DEFAULT_CACHE_SIZE,
        prefix_stride: int = 0,
        obs: Optional["RunContext"] = None,
        reuse_from: Optional["WindowEvaluator"] = None,
    ) -> None:
        if batch.count == 0:
            raise ScheduleError("cannot build a WindowEvaluator for an "
                                "idle (zero-task) window")
        self.ledger = ledger
        self.batch = batch
        self.epoch = ledger.epoch
        self.committed = ledger.active
        self.order_base = ledger.order_base
        horizon_types = np.concatenate([ledger.task_types, batch.task_types])
        horizon_arrivals = np.concatenate(
            [ledger.arrival_times, batch.arrival_times]
        )
        horizon = Trace(
            task_types=horizon_types,
            arrival_times=horizon_arrivals,
            window=batch.end,
        )
        self.horizon_evaluator = ScheduleEvaluator(
            system, horizon,
            check_feasibility=False,
            kernel_method=kernel_method,
            cache_size=cache_size,
            prefix_stride=prefix_stride,
            obs=obs,
        )
        self.kernel_adopted = False
        if reuse_from is not None:
            if reuse_from.epoch != ledger.epoch:
                raise ScheduleError(
                    "kernel state from a pre-compaction epoch is stale; "
                    "start the window with a cold evaluator"
                )
            self.kernel_adopted = self.horizon_evaluator.adopt_kernel_state(
                reuse_from.horizon_evaluator
            )
        # GA-facing surface: the free tasks as their own trace (absolute
        # arrival times — feasibility only reads task types).
        self.system = system
        self.trace = Trace(
            task_types=batch.task_types,
            arrival_times=batch.arrival_times,
            window=batch.end,
        )
        self.num_tasks = batch.count
        self.num_machines = system.num_machines
        #: Batch-mode contract: no chromosome cache (mirrors
        #: ScheduleEvaluator's behaviour so callers can introspect).
        self.cache = None

    # -- GA-facing evaluator surface ---------------------------------------

    def _splice(
        self, assignments: IntArray, orders: IntArray
    ) -> tuple[IntArray, IntArray]:
        """Full-horizon (N, C+F) chromosome arrays from free genes."""
        assignments = np.asarray(assignments, dtype=np.int64)
        orders = np.asarray(orders, dtype=np.int64)
        N = assignments.shape[0]
        C, F = self.committed, self.num_tasks
        full_a = np.empty((N, C + F), dtype=np.int64)
        full_o = np.empty((N, C + F), dtype=np.int64)
        full_a[:, :C] = self.ledger.machine_assignment
        full_o[:, :C] = self.ledger.order_keys
        full_a[:, C:] = assignments
        # Free keys sort after every committed key; relative order among
        # free tasks is the GA's permutation.
        full_o[:, C:] = orders + self.order_base
        return full_a, full_o

    def evaluate_batch(
        self, assignments: IntArray, orders: IntArray
    ) -> tuple[FloatArray, FloatArray]:
        """Service-cumulative ``(energies, utilities)`` per free-gene row."""
        full_a, full_o = self._splice(assignments, orders)
        energies, utilities = self.horizon_evaluator.evaluate_batch(
            full_a, full_o
        )
        if self.ledger.energy_offset or self.ledger.utility_offset:
            energies = energies + self.ledger.energy_offset
            utilities = utilities + self.ledger.utility_offset
        return energies, utilities

    # -- commit support ----------------------------------------------------

    def evaluate_full(
        self, assignment: IntArray, order: IntArray
    ):
        """Full per-task result for one free-gene chromosome.

        Used at commit time: per-task finish times feed compaction, and
        per-task energies/utilities feed the ledger.  Bit-identical to
        the batch path (the single-allocation evaluator runs the batch
        kernel's scalar oracle in batch mode).
        """
        full_a, full_o = self._splice(assignment[None, :], order[None, :])
        alloc = ResourceAllocation(
            machine_assignment=full_a[0], scheduling_order=full_o[0]
        )
        return self.horizon_evaluator.evaluate(alloc)

    def absolute_orders(self, orders: IntArray) -> IntArray:
        """Free GA order keys shifted to their absolute (ledger) values."""
        return np.asarray(orders, dtype=np.int64) + self.order_base

    @property
    def cache_stats(self) -> dict:
        """The horizon evaluator's kernel reuse counters."""
        return self.horizon_evaluator.cache_stats

    @property
    def last_batch_stats(self) -> dict:
        """Reuse counters for the most recent batch (empty pre-first)."""
        kernel = self.horizon_evaluator._batch_kernel
        return dict(kernel.last_batch) if kernel is not None else {}
