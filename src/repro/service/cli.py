"""``repro serve`` — run the online dispatch service from the shell.

Streams synthetic Poisson traffic (or replays a data set's recorded
trace) through :class:`~repro.service.dispatch.DispatchService` and
prints a JSON report: per-window dispatch summaries, sustained
throughput, dispatch-latency percentiles, and the final ε-Pareto
archive front.  Pass ``--obs-dir`` to record ``service.window`` spans
and the ``service_*`` metrics for ``repro-analyze trace``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.registry import available_algorithms
from repro.service.dispatch import DispatchService, ServiceConfig, ServiceResult
from repro.service.stream import ArrivalStream, windows_from_trace
from repro.sim.evaluator import DEFAULT_KERNEL_METHOD

__all__ = ["main", "build_parser", "result_payload"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (currently one subcommand)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online streaming dispatch service "
        "(see docs/online_service.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "serve",
        help="run the windowed online dispatch service over a task stream",
    )
    p.add_argument("--dataset", choices=["1", "2", "3"], default="1",
                   help="system model to dispatch onto (and, with "
                   "--source trace, the trace to replay)")
    p.add_argument("--source", choices=["synthetic", "trace"],
                   default="synthetic",
                   help="synthetic Poisson stream (default) or replay of "
                   "the data set's recorded trace")
    p.add_argument("--window", type=float, default=60.0,
                   help="dispatch window length in seconds (default: 60)")
    p.add_argument("--windows", type=int, default=10,
                   help="number of windows to serve (default: 10; "
                   "--source trace defaults to covering the trace)")
    p.add_argument("--arrival-rate", type=float, default=0.5,
                   help="mean arrivals per second for the synthetic "
                   "stream (default: 0.5)")
    p.add_argument("--energy-budget", type=float, default=None,
                   help="cumulative energy budget; the dispatcher picks "
                   "the max-utility Pareto point that fits (default: "
                   "unconstrained)")
    p.add_argument("--population", type=int, default=32,
                   help="per-window population size (default: 32)")
    p.add_argument("--generations", type=int, default=12,
                   help="per-window generations (default: 12)")
    p.add_argument("--algorithm", choices=available_algorithms(),
                   default="nsga2",
                   help="per-window optimizer (default: nsga2)")
    p.add_argument("--kernel-method",
                   choices=["fast", "reference", "batch", "batch-reference"],
                   default=DEFAULT_KERNEL_METHOD,
                   help="evaluation kernel; only 'batch' supports "
                   "cross-window queue-state reuse (default)")
    p.add_argument("--cold", action="store_true",
                   help="disable warm starts (fresh random population "
                   "every window) — the cold-restart baseline")
    p.add_argument("--carryover", type=int, default=16,
                   help="max chromosomes carried between windows "
                   "(default: 16)")
    p.add_argument("--compact-every", type=int, default=8,
                   help="ledger compaction period in windows, 0 = never "
                   "(default: 8)")
    p.add_argument("--seed", type=int, default=2013)
    p.add_argument("--obs-dir", default=None,
                   help="record observability artifacts "
                   "(service.window spans, service_* metrics)")
    p.add_argument("--obs-level", choices=["info", "debug"], default="info")
    p.add_argument("--output", default=None,
                   help="write the JSON report here instead of stdout")
    return parser


def result_payload(result: ServiceResult) -> dict:
    """JSON-ready report for a service run."""
    return {
        "windows": [
            {
                "index": r.index,
                "start": r.start,
                "end": r.end,
                "tasks": r.tasks,
                "evaluations": r.evaluations,
                "chosen_energy": r.chosen_energy,
                "chosen_utility": r.chosen_utility,
                "budget_exceeded": r.budget_exceeded,
                "dispatch_seconds": r.dispatch_seconds,
                "warm_seeds": r.warm_seeds,
                "kernel_adopted": r.kernel_adopted,
                "reuse_rate": r.reuse_rate,
                "compacted": r.compacted,
                "archive_size": r.archive_size,
            }
            for r in result.reports
        ],
        "tasks_dispatched": result.tasks_dispatched,
        "total_energy": result.total_energy,
        "total_utility": result.total_utility,
        "mean_flow_time_s": result.mean_flow_time,
        "wall_seconds": result.wall_seconds,
        "tasks_per_second": result.tasks_per_second,
        "dispatch_latency_p50_s": result.dispatch_latency(50),
        "dispatch_latency_p99_s": result.dispatch_latency(99),
        "archive_front": result.archive_points.tolist(),
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import DATASET_BUILDERS
    from repro.obs.context import RunContext
    from repro.workload.generator import TaskTypeMix

    bundle = DATASET_BUILDERS[f"dataset{args.dataset}"](seed=args.seed)
    if args.source == "trace":
        batches = list(windows_from_trace(bundle.trace, args.window))
        if args.windows:
            batches = batches[: args.windows]
    else:
        stream = ArrivalStream(
            mix=TaskTypeMix.uniform(bundle.system.num_task_types),
            window=args.window,
            rate=args.arrival_rate,
            seed=args.seed,
        )
        batches = stream.windows(args.windows)

    obs = (
        RunContext.create(obs_dir=args.obs_dir, level=args.obs_level)
        if args.obs_dir else None
    )
    config = ServiceConfig(
        algorithm=args.algorithm,
        population_size=args.population,
        generations=args.generations,
        warm_start=not args.cold,
        carryover=args.carryover,
        energy_budget=args.energy_budget,
        kernel_method=args.kernel_method,
        compact_every=args.compact_every,
        seed=args.seed,
    )
    service = DispatchService(bundle.system, config, obs=obs)
    result = service.run(batches)
    if obs is not None:
        obs.flush()

    payload = result_payload(result)
    payload["config"] = {
        "dataset": args.dataset,
        "source": args.source,
        "window": args.window,
        "arrival_rate": args.arrival_rate,
        "energy_budget": args.energy_budget,
        "algorithm": args.algorithm,
        "population": args.population,
        "generations": args.generations,
        "warm_start": not args.cold,
        "kernel_method": args.kernel_method,
        "compact_every": args.compact_every,
        "seed": args.seed,
    }
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    return {"serve": _cmd_serve}[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
