"""The windowed online dispatch loop.

Each :class:`~repro.service.stream.WindowBatch` is re-optimized by a
(warm-started) evolutionary run over the pinned-prefix horizon
(:mod:`repro.service.window`), a dispatch point is chosen from the
window's Pareto front under the energy budget, the winning chromosome's
free genes are committed to the ledger, and the front is absorbed into
an anytime ε-Pareto archive.  Cross-window reuse happens on three
levels:

* **Seed population** — the next window's algorithm starts from
  repair-mapped copies of this window's survivors
  (:func:`~repro.core.seeding.repair_mapped_seeds`), not from random
  chromosomes.
* **Kernel state** — the next window's evaluator adopts this window's
  batch-kernel queue-state caches, so the committed prefix (identical
  in every chromosome) is answered from cache.
* **Archive** — every window's front accumulates into one bounded
  ε-dominance archive, so the dispatch policy always has the best
  energy/utility trade-off curve seen so far.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.core.archive import EpsilonParetoArchive
from repro.core.operators import FeasibleMachines
from repro.core.registry import make_algorithm
from repro.core.seeding import repair_mapped_seeds
from repro.errors import ScheduleError
from repro.rng import derive_seed
from repro.sim.evaluator import DEFAULT_CACHE_SIZE, DEFAULT_KERNEL_METHOD
from repro.service.stream import WindowBatch
from repro.service.window import CommittedLedger, WindowEvaluator
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import SystemModel
    from repro.obs.context import RunContext

__all__ = ["ServiceConfig", "WindowReport", "ServiceResult", "DispatchService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the online dispatch service.

    Attributes
    ----------
    algorithm:
        Registry name of the per-window optimizer (default NSGA-II).
    population_size, generations, mutation_probability:
        Per-window evolutionary budget.  Warm starts reach the
        cold-restart front quality in a fraction of the generations —
        see ``BENCH_online_service.json``.
    warm_start:
        Seed each window from the previous window's survivors
        (repair-mapped); ``False`` re-seeds randomly every window (the
        cold-restart baseline).
    kernel_reuse:
        Adopt the previous window's batch-kernel queue-state caches
        (``False`` additionally makes the cold-restart baseline pay
        full evaluation cost each window).
    carryover:
        Maximum donor chromosomes carried between windows (front rows
        first), capped at the population size.
    energy_budget:
        Cumulative energy budget (joules) over the whole stream; the
        dispatch policy picks the max-utility front point whose
        *cumulative* energy fits, falling back to the min-energy point
        (flagged in the report) when none does.  ``None`` = argmax
        utility, unconstrained.
    kernel_method, cache_size, prefix_stride:
        Horizon evaluator configuration; the batch kernel is what makes
        cross-window queue-state reuse possible.
    compact_every:
        Attempt ledger compaction every this many windows (0 = never).
        Compaction bounds horizon growth for indefinite streams but
        resets the kernel caches (task indices shift).
    archive_epsilon_rel:
        ε-box size for the Pareto archive, relative to the first
        window's front ranges per axis.
    seed:
        Base seed; window *k*'s optimizer derives its stream from
        ``derive_seed(seed, "service-opt", k)``.
    """

    algorithm: str = "nsga2"
    population_size: int = 32
    generations: int = 12
    mutation_probability: float = 0.25
    warm_start: bool = True
    kernel_reuse: bool = True
    carryover: int = 16
    energy_budget: Optional[float] = None
    kernel_method: str = DEFAULT_KERNEL_METHOD
    cache_size: int = DEFAULT_CACHE_SIZE
    prefix_stride: int = 0
    compact_every: int = 8
    archive_epsilon_rel: float = 1e-3
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ScheduleError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.generations < 0:
            raise ScheduleError(
                f"generations must be >= 0, got {self.generations}"
            )
        if self.carryover < 0:
            raise ScheduleError(f"carryover must be >= 0, got {self.carryover}")
        if self.compact_every < 0:
            raise ScheduleError(
                f"compact_every must be >= 0, got {self.compact_every}"
            )
        if self.energy_budget is not None and self.energy_budget < 0:
            raise ScheduleError(
                f"energy_budget must be >= 0, got {self.energy_budget}"
            )
        if self.archive_epsilon_rel <= 0:
            raise ScheduleError(
                f"archive_epsilon_rel must be > 0, got "
                f"{self.archive_epsilon_rel}"
            )


@dataclass(frozen=True)
class WindowReport:
    """Everything recorded about one dispatch window."""

    index: int
    start: float
    end: float
    tasks: int
    evaluations: int
    front_points: FloatArray
    chosen_energy: float
    chosen_utility: float
    budget_exceeded: bool
    dispatch_seconds: float
    warm_seeds: int
    kernel_adopted: bool
    reuse_rate: float
    compacted: int
    archive_size: int

    @property
    def idle(self) -> bool:
        """Whether the window had no arrivals."""
        return self.tasks == 0


@dataclass(frozen=True)
class ServiceResult:
    """Aggregate outcome of a service run."""

    reports: tuple[WindowReport, ...]
    total_energy: float
    total_utility: float
    tasks_dispatched: int
    wall_seconds: float
    mean_flow_time: float
    archive_points: FloatArray

    @property
    def tasks_per_second(self) -> float:
        """Sustained dispatch throughput (wall clock)."""
        return (
            self.tasks_dispatched / self.wall_seconds
            if self.wall_seconds > 0 else 0.0
        )

    def dispatch_latency(self, percentile: float) -> float:
        """Percentile of per-window dispatch wall seconds (busy windows)."""
        busy = [r.dispatch_seconds for r in self.reports if not r.idle]
        if not busy:
            return 0.0
        return float(np.percentile(np.asarray(busy), percentile))

    @property
    def objectives(self) -> tuple[float, float]:
        """``(energy, utility)`` for comparison with offline fronts."""
        return (self.total_energy, self.total_utility)


class DispatchService:
    """Long-running windowed re-optimization over an arrival stream.

    Feed windows via :meth:`run` (an iterable of
    :class:`~repro.service.stream.WindowBatch`) or one at a time via
    :meth:`process_window`; state (ledger, archive, carryover
    population, kernel caches) persists across calls, so a driver can
    interleave windows with its own logic.
    """

    def __init__(
        self,
        system: "SystemModel",
        config: Optional[ServiceConfig] = None,
        obs: Optional["RunContext"] = None,
    ) -> None:
        from repro.obs.context import NULL_CONTEXT

        self.system = system
        self.config = config if config is not None else ServiceConfig()
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.ledger = CommittedLedger()
        self.archive: Optional[EpsilonParetoArchive] = None
        self.reports: list[WindowReport] = []
        self._prev_evaluator: Optional[WindowEvaluator] = None
        self._prev_types = None
        self._prev_donors = None
        self._flow_time_sum = 0.0
        self._wall_seconds = 0.0
        self._next_window = 0

    # -- archive -----------------------------------------------------------

    def _ensure_archive(self, points: FloatArray) -> EpsilonParetoArchive:
        if self.archive is None:
            spans = points.max(axis=0) - points.min(axis=0)
            scale = np.maximum(np.abs(points).max(axis=0), 1.0)
            eps = np.where(
                spans > 0, spans, scale
            ) * self.config.archive_epsilon_rel
            eps = np.maximum(eps, 1e-12)
            self.archive = EpsilonParetoArchive(
                epsilons=(float(eps[0]), float(eps[1]))
            )
        return self.archive

    # -- dispatch policy ---------------------------------------------------

    def _choose(self, points: FloatArray) -> tuple[int, bool]:
        """Front row to dispatch: max utility within the cumulative
        energy budget, else the min-energy point (flagged)."""
        budget = self.config.energy_budget
        if budget is not None:
            fits = np.flatnonzero(points[:, 0] <= budget)
            if fits.size:
                return int(fits[np.argmax(points[fits, 1])]), False
            return int(np.argmin(points[:, 0])), True
        return int(np.argmax(points[:, 1])), False

    # -- main loop ---------------------------------------------------------

    def run(self, batches: Iterable[WindowBatch]) -> ServiceResult:
        """Process every window in *batches* and summarize."""
        for batch in batches:
            self.process_window(batch)
        return self.result()

    def process_window(self, batch: WindowBatch) -> WindowReport:
        """Optimize, dispatch, and commit one window."""
        cfg = self.config
        if batch.index != self._next_window:
            raise ScheduleError(
                f"windows must be processed in order: expected "
                f"{self._next_window}, got {batch.index}"
            )
        self._next_window += 1
        t0 = time.perf_counter()
        compacted = 0
        if (
            cfg.compact_every
            and batch.index
            and batch.index % cfg.compact_every == 0
        ):
            compacted = self.ledger.compact(batch.start)
            if compacted:
                # Task indices shifted: adopted kernel state and donor
                # mappings from the old epoch no longer apply.
                self._prev_evaluator = None
        if batch.count == 0:
            report = self._idle_report(batch, compacted, t0)
            self._record(report, reuse={})
            return report

        evaluator = WindowEvaluator(
            self.system, self.ledger, batch,
            kernel_method=cfg.kernel_method,
            cache_size=cfg.cache_size,
            prefix_stride=cfg.prefix_stride,
            obs=self.obs,
            reuse_from=self._prev_evaluator if cfg.kernel_reuse else None,
        )
        seeds = []
        if cfg.warm_start and self._prev_donors is not None and cfg.carryover:
            feasible = FeasibleMachines.from_system_trace(
                self.system, evaluator.trace
            )
            seeds = repair_mapped_seeds(
                self._prev_types, self._prev_donors,
                batch.task_types, feasible,
                rng_seed=derive_seed(cfg.seed, "service-carry", batch.index),
                max_seeds=min(cfg.carryover, cfg.population_size),
                arrival_order_first=True,
            )
        algorithm = make_algorithm(
            cfg.algorithm, evaluator,
            self._algorithm_config(),
            seeds=seeds,
            rng=derive_seed(cfg.seed, "service-opt", batch.index),
            label=f"window-{batch.index}",
            obs=self.obs,
        )
        algorithm.run(cfg.generations)
        points, rows = algorithm.current_front()
        sel, exceeded = self._choose(points)
        row = int(rows[sel])
        assignment = algorithm.population.assignments[row].copy()
        order = algorithm.population.orders[row].copy()

        full = evaluator.evaluate_full(assignment, order)
        C = evaluator.committed
        finishes = full.completion_times[C:]
        self._flow_time_sum += float(
            (finishes - batch.arrival_times).sum()
        )
        self.ledger.commit(
            batch, assignment, evaluator.absolute_orders(order),
            finishes, full.task_energies[C:], full.task_utilities[C:],
        )
        archive_size = self._ensure_archive(points).update(
            points, payloads=[batch.index] * points.shape[0]
        )

        # Carryover for the next window: front rows first, then the
        # rest of the final population, all in free-gene space.
        rest = np.ones(len(algorithm.population), dtype=bool)
        rest[rows] = False
        donor_rows = np.concatenate([rows, np.flatnonzero(rest)])
        self._prev_types = batch.task_types
        self._prev_donors = algorithm.population.assignments[donor_rows].copy()
        self._prev_evaluator = evaluator

        reuse = evaluator.cache_stats
        report = WindowReport(
            index=batch.index, start=batch.start, end=batch.end,
            tasks=batch.count,
            evaluations=int(algorithm._evaluations),
            front_points=points,
            chosen_energy=float(points[sel, 0]),
            chosen_utility=float(points[sel, 1]),
            budget_exceeded=exceeded,
            dispatch_seconds=time.perf_counter() - t0,
            warm_seeds=len(seeds),
            kernel_adopted=evaluator.kernel_adopted,
            reuse_rate=float(reuse.get("reuse_rate", 0.0)),
            compacted=compacted,
            archive_size=archive_size,
        )
        self._record(report, reuse=reuse)
        return report

    def _algorithm_config(self):
        from repro.core.algorithm import AlgorithmConfig

        return AlgorithmConfig(
            population_size=self.config.population_size,
            mutation_probability=self.config.mutation_probability,
        )

    def _idle_report(
        self, batch: WindowBatch, compacted: int, t0: float
    ) -> WindowReport:
        return WindowReport(
            index=batch.index, start=batch.start, end=batch.end, tasks=0,
            evaluations=0, front_points=np.empty((0, 2)),
            chosen_energy=0.0, chosen_utility=0.0, budget_exceeded=False,
            dispatch_seconds=time.perf_counter() - t0,
            warm_seeds=0, kernel_adopted=False, reuse_rate=0.0,
            compacted=compacted,
            archive_size=len(self.archive) if self.archive else 0,
        )

    def _record(self, report: WindowReport, reuse: dict) -> None:
        self.reports.append(report)
        self._wall_seconds += report.dispatch_seconds
        obs = self.obs
        if not obs.enabled:
            return
        obs.record_span(
            "service.window", report.dispatch_seconds,
            index=report.index, tasks=report.tasks,
            front_size=int(report.front_points.shape[0]),
            warm_seeds=report.warm_seeds,
            kernel_adopted=report.kernel_adopted,
            reuse_rate=report.reuse_rate,
            compacted=report.compacted,
        )
        metrics = obs.metrics
        metrics.histogram(
            "service_dispatch_seconds",
            help="wall-clock from window open to committed dispatch",
            unit="seconds",
        ).observe(report.dispatch_seconds)
        metrics.counter(
            "service_tasks_dispatched_total",
            help="tasks committed to machine queues",
        ).inc(report.tasks)
        metrics.gauge(
            "service_queue_depth",
            help="tasks buffered at the latest window close",
        ).set(report.tasks)
        metrics.gauge(
            "service_throughput_tasks_per_second",
            help="dispatched tasks per wall-clock second, lifetime",
        ).set(
            self.ledger.dispatched_total / self._wall_seconds
            if self._wall_seconds > 0 else 0.0
        )
        metrics.gauge(
            "service_archive_size",
            help="points in the anytime epsilon-Pareto archive",
        ).set(report.archive_size)
        metrics.gauge(
            "service_reuse_rate",
            help="lifetime fraction of queue elements answered from "
            "cached kernel state",
        ).set(float(reuse.get("reuse_rate", 0.0)))

    # -- summary -----------------------------------------------------------

    def result(self) -> ServiceResult:
        """Aggregate everything processed so far."""
        dispatched = self.ledger.dispatched_total
        return ServiceResult(
            reports=tuple(self.reports),
            total_energy=self.ledger.total_energy,
            total_utility=self.ledger.total_utility,
            tasks_dispatched=dispatched,
            wall_seconds=self._wall_seconds,
            mean_flow_time=(
                self._flow_time_sum / dispatched if dispatched else 0.0
            ),
            archive_points=(
                self.archive.front() if self.archive is not None
                else np.empty((0, 2))
            ),
        )
