"""Deterministic random-number-generator plumbing.

Every stochastic component in the framework accepts either an integer
seed, a :class:`numpy.random.Generator`, or ``None``; this module
provides the single normalization point (:func:`ensure_rng`) plus a
helper to derive independent child streams (:func:`spawn`) so that, for
example, the five seeded NSGA-II populations of the paper's experiments
evolve on independent but reproducible streams.

Reproducibility contract
------------------------
Calling any framework entry point twice with the same integer seed
produces bit-identical results.  This is asserted by the determinism
tests in ``tests/test_determinism.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["SeedLike", "ensure_rng", "spawn", "derive_seed"]

#: Anything accepted where a source of randomness is required.
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` (deterministic), an existing
        ``Generator`` (returned unchanged, so callers can thread one
        stream through a pipeline), or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, Generator, or SeedSequence; got {type(seed)!r}"
    )


def spawn(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators.

    When *seed* is an existing ``Generator`` the children are spawned
    from it (consuming state); otherwise a ``SeedSequence`` is built so
    the children depend only on the seed value, not on call order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    if isinstance(seed, np.random.Generator):
        return [seed.spawn(1)[0] for _ in range(n)]
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed.spawn(n)]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in ss.spawn(n)]


def derive_seed(base: int, *path: Union[int, str]) -> int:
    """Derive a stable 63-bit integer seed from *base* and a key path.

    Used by experiment configs to give each (dataset, population,
    repetition) cell its own reproducible seed without threading
    generators across process boundaries (results are serialized with
    their seeds).
    """
    words: list[int] = [int(base) & 0xFFFFFFFF]
    for item in path:
        if isinstance(item, str):
            # Stable, platform-independent string hash (FNV-1a, 32 bit).
            h = 2166136261
            for byte in item.encode("utf-8"):
                h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
            words.append(h)
        else:
            words.append(int(item) & 0xFFFFFFFF)
    ss = np.random.SeedSequence(words)
    return int(ss.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)
