"""One-shot reproduction driver: every table and figure to a directory.

``reproduce_all`` runs Tables I-III and Figures 1-6 at a chosen scale
and writes a self-contained artifact directory:

    <out>/
      tables.txt                 Tables I, II, III
      figure1.txt  figure2.txt   TUF staircase / dominance example
      figure3.json .csv .txt     + figure3_subplot*.svg
      figure4.json .csv .txt     + figure4_subplot*.svg
      figure5.txt
      figure6.json .csv .txt     + figure6_subplot*.svg
      MANIFEST.txt               what was run, at which scale/seed

This is the paper-scale entry point: ``reproduce_all(out, scale=1.0)``
reruns everything at the original generation counts (hours); the
default scale finishes in about a minute.  Also exposed as
``repro-analyze reproduce-all``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

from repro.analysis.export import figure_to_csv, figure_to_svg
from repro.experiments.config import default_scale
from repro.experiments.figures import figure3, figure4, figure5, figure6
from repro.experiments.io import save_figure_result
from repro.experiments.tables import render_table1, render_table2, render_table3
from repro.utility.tuf import TimeUtilityFunction
from repro.sim.evaluator import DEFAULT_KERNEL_METHOD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.context import RunContext

__all__ = ["reproduce_all"]


def _figure1_text() -> str:
    tuf = TimeUtilityFunction.figure1_example()
    times = np.linspace(0.0, 80.0, 17)
    rows = "\n".join(
        f"  t={t:5.1f}  utility={float(tuf(t)):6.2f}" for t in times
    )
    return (
        "figure1: sample task time-utility function\n"
        f"paper spot checks: U(20)={float(tuf(20.0)):.0f}, "
        f"U(47)={float(tuf(47.0)):.0f}\n" + rows
    )


def _figure2_text() -> str:
    from repro.core.dominance import dominates, nondominated_mask

    A, B, C = (5.0, 10.0), (7.0, 8.0), (3.0, 6.0)
    mask = nondominated_mask(np.array([A, B, C]))
    return (
        "figure2: solution dominance (energy, utility)\n"
        f"  A={A}, B={B}, C={C}\n"
        f"  A dominates B: {dominates(A, B)}\n"
        f"  A ~ C incomparable: {not dominates(A, C) and not dominates(C, A)}\n"
        f"  Pareto set mask: {mask.tolist()}"
    )


def reproduce_all(
    output_dir: Union[str, Path],
    scale: Optional[float] = None,
    base_seed: int = 2013,
    population_size: int = 100,
    workers: int = 0,
    transport: str = "auto",
    algorithm: str = "nsga2",
    kernel_method: str = DEFAULT_KERNEL_METHOD,
    progress: Optional[Callable[[str], None]] = print,
    obs: Optional["RunContext"] = None,
) -> Path:
    """Run the full reproduction and write artifacts to *output_dir*.

    Parameters
    ----------
    output_dir:
        Target directory (created if missing).
    scale:
        Generation scale versus the paper (default: ``REPRO_SCALE`` or
        the library default).  ``1.0`` = paper scale.
    base_seed:
        Master seed for every stochastic component.
    population_size:
        NSGA-II N for the figure runs.
    workers:
        Process-pool size for each figure's five populations (0 =
        sequential).  Parallel figure runs publish each data set's
        arrays into shared memory once and attach workers zero-copy;
        results are bit-identical to sequential runs.
    transport:
        Parallel array transport (``"auto"``/``"shm"``/``"pickle"``).
    algorithm:
        Registered optimizer name driving every figure run (default
        ``"nsga2"``; see :func:`repro.core.registry.available_algorithms`).
    kernel_method:
        Evaluation kernel for every figure run (``"fast"`` default;
        ``"batch"`` enables the population-at-once kernel with
        queue-state reuse — see ``docs/performance.md``).
    progress:
        Callable receiving status lines (``None`` silences).
    obs:
        Optional :class:`~repro.obs.context.RunContext` threaded into
        every figure's populations (spans, metrics, events); flushed by
        the caller.

    Returns
    -------
    The output directory path.
    """
    if obs is None:
        from repro.obs.context import NULL_CONTEXT

        obs = NULL_CONTEXT
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    say = progress if progress is not None else (lambda _msg: None)
    effective_scale = default_scale() if scale is None else scale
    t0 = time.perf_counter()
    manifest: list[str] = [
        "repro full reproduction",
        f"scale: {effective_scale} (1.0 = paper generation counts)",
        f"base seed: {base_seed}",
        f"population size: {population_size}",
        f"algorithm: {algorithm}",
        f"kernel method: {kernel_method}",
        "",
    ]

    say("tables I-III ...")
    with obs.span("reproduce.tables"):
        (out / "tables.txt").write_text(
            "\n\n".join(
                [render_table1(), render_table2(), render_table3()]
            ) + "\n"
        )
    manifest.append("tables.txt: Tables I, II, III")

    say("figure 1 (time-utility function) ...")
    (out / "figure1.txt").write_text(_figure1_text() + "\n")
    manifest.append("figure1.txt: TUF staircase with paper spot checks")

    say("figure 2 (dominance) ...")
    (out / "figure2.txt").write_text(_figure2_text() + "\n")
    manifest.append("figure2.txt: dominance example")

    drivers = (("figure3", figure3), ("figure4", figure4), ("figure6", figure6))
    fig4_result = None
    for name, driver in drivers:
        say(f"{name} (5 seeded {algorithm} populations) ...")
        result = driver(
            scale=effective_scale,
            base_seed=base_seed,
            population_size=population_size,
            workers=workers,
            transport=transport,
            algorithm=algorithm,
            kernel_method=kernel_method,
            obs=obs,
        )
        if name == "figure4":
            fig4_result = result
        save_figure_result(result, out / f"{name}.json")
        figure_to_csv(result, out / f"{name}.csv")
        figure_to_svg(result, out)
        (out / f"{name}.txt").write_text(result.render(plot=True) + "\n")

        # Self-audit: check the paper's claims on this very run.
        from repro.experiments.claims import verify_paper_claims

        claims = verify_paper_claims(result)
        claim_lines = [
            f"{'PASS' if c.passed else 'FAIL'}  {c.claim}: {c.detail}"
            for c in claims
        ]
        (out / f"{name}_claims.txt").write_text("\n".join(claim_lines) + "\n")
        n_pass = sum(c.passed for c in claims)
        manifest.append(
            f"{name}.json/.csv/.txt + {name}_subplot*.svg: checkpoints "
            f"{result.checkpoints} (paper {result.paper_checkpoints}); "
            f"claims {n_pass}/{len(claims)} PASS"
        )

    say("figure 5 (max utility-per-energy region) ...")
    fig5 = figure5(figure4_result=fig4_result)
    (out / "figure5.txt").write_text(fig5.render() + "\n")
    manifest.append("figure5.txt: efficiency-region analysis of figure4")

    manifest.append("")
    manifest.append(f"total wall time: {time.perf_counter() - t0:.1f} s")
    (out / "MANIFEST.txt").write_text("\n".join(manifest) + "\n")
    say(f"done: {out}")
    return out
