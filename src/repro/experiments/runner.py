"""The seeded-population experiment runner (paper Section V-B / VI).

One experiment runs **five populations** over the same (system, trace):
one per heuristic seed — Min Energy (diamond marker in the paper's
figures), Min-Min Completion Time (square), Max Utility (circle),
Max Utility-per-Energy (triangle) — plus the completely random initial
population (star).  Each population evolves independently with its own
derived RNG stream; snapshots are taken at the configured checkpoint
generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.analysis.pareto_front import ParetoFront
from repro.core.nsga2 import NSGA2, NSGA2Config, RunHistory
from repro.core.operators import OperatorConfig
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import DatasetBundle
from repro.heuristics import SEEDING_HEURISTICS
from repro.rng import derive_seed
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation

__all__ = ["SeededPopulationResult", "run_seeded_populations", "POPULATION_LABELS"]

#: Population labels in the paper's marker order (random last).
POPULATION_LABELS: tuple[str, ...] = (
    "min-energy",
    "min-min-completion-time",
    "max-utility",
    "max-utility-per-energy",
    "random",
)


@dataclass(frozen=True)
class SeededPopulationResult:
    """All five populations' run histories for one data set."""

    dataset_name: str
    config: ExperimentConfig
    histories: Mapping[str, RunHistory]
    seed_objectives: Mapping[str, tuple[float, float]]

    def front(self, label: str, generation: Optional[int] = None) -> ParetoFront:
        """The Pareto front of *label* at *generation* (default: final)."""
        history = self.histories.get(label)
        if history is None:
            raise ExperimentError(
                f"unknown population {label!r}; have {sorted(self.histories)}"
            )
        snap = history.final if generation is None else history.snapshot_at(generation)
        return ParetoFront(points=snap.front_points, label=label)

    def fronts_at(self, generation: int) -> dict[str, ParetoFront]:
        """All populations' fronts at one checkpoint."""
        return {
            label: self.front(label, generation) for label in self.histories
        }

    def combined_front(self) -> ParetoFront:
        """Nondominated union of every population's final front."""
        pts = np.vstack(
            [h.final.front_points for h in self.histories.values()]
        )
        return ParetoFront.from_points(pts, label="combined")


def _run_one_population(
    dataset: DatasetBundle,
    config: ExperimentConfig,
    label: str,
    seeds: list[ResourceAllocation],
) -> tuple[str, RunHistory]:
    """Worker body: one population's full NSGA-II run.

    Module-level (picklable) so :func:`run_seeded_populations` can farm
    populations out to a process pool — the five populations share no
    state and are embarrassingly parallel.
    """
    evaluator = ScheduleEvaluator(dataset.system, dataset.trace,
                                  check_feasibility=False)
    ga = NSGA2(
        evaluator,
        NSGA2Config(
            population_size=config.population_size,
            operators=OperatorConfig(
                mutation_probability=config.mutation_probability
            ),
        ),
        seeds=seeds,
        rng=derive_seed(config.base_seed, dataset.name, label),
        label=label,
    )
    history = ga.run(
        generations=config.generations, checkpoints=list(config.checkpoints)
    )
    return label, history


def run_seeded_populations(
    dataset: DatasetBundle,
    config: ExperimentConfig,
    labels: Sequence[str] = POPULATION_LABELS,
    extra_seeds: Optional[Mapping[str, Sequence[ResourceAllocation]]] = None,
    workers: int = 0,
) -> SeededPopulationResult:
    """Run the seeded-population experiment on *dataset*.

    Parameters
    ----------
    dataset:
        The (system, trace) bundle.
    config:
        Population size, operators, checkpoints.
    labels:
        Which populations to run.  Known labels: the four heuristic
        names of :data:`repro.heuristics.SEEDING_HEURISTICS`,
        ``"random"``, and ``"all-seeds"`` (all four heuristics in one
        population — the paper's dropped variant, used by ablation A5).
    extra_seeds:
        Optional label → seed-allocation list for custom populations.
    workers:
        Process-pool size for running populations in parallel; 0 (the
        default) runs sequentially in-process.  Results are identical
        either way (each population's RNG stream is derived from the
        config seed, not from execution order).
    """
    evaluator = ScheduleEvaluator(dataset.system, dataset.trace,
                                  check_feasibility=False)

    # Build each heuristic's allocation once (shared across labels).
    heuristic_allocs: dict[str, ResourceAllocation] = {}
    needed = set()
    for label in labels:
        if label in SEEDING_HEURISTICS:
            needed.add(label)
        elif label == "all-seeds":
            needed.update(SEEDING_HEURISTICS)
        elif label == "random":
            pass
        elif extra_seeds is None or label not in extra_seeds:
            raise ExperimentError(f"unknown population label {label!r}")
    for name in sorted(needed):
        heuristic_allocs[name] = SEEDING_HEURISTICS[name]().build(
            dataset.system, dataset.trace
        )

    seed_objectives = {
        name: evaluator.objectives(alloc)
        for name, alloc in heuristic_allocs.items()
    }

    def seeds_for(label: str) -> list[ResourceAllocation]:
        if label in SEEDING_HEURISTICS:
            return [heuristic_allocs[label]]
        if label == "all-seeds":
            return [heuristic_allocs[name] for name in sorted(SEEDING_HEURISTICS)]
        if label == "random":
            return []
        return list(extra_seeds[label])  # type: ignore[index]

    histories: dict[str, RunHistory] = {}
    if workers and workers > 1 and len(labels) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_one_population, dataset, config, label, seeds_for(label)
                )
                for label in labels
            ]
            for future in futures:
                label, history = future.result()
                histories[label] = history
    else:
        for label in labels:
            label, history = _run_one_population(
                dataset, config, label, seeds_for(label)
            )
            histories[label] = history
    return SeededPopulationResult(
        dataset_name=dataset.name,
        config=config,
        histories=histories,
        seed_objectives=seed_objectives,
    )
