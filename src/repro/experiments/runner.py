"""The seeded-population experiment runner (paper Section V-B / VI).

One experiment runs **five populations** over the same (system, trace):
one per heuristic seed — Min Energy (diamond marker in the paper's
figures), Min-Min Completion Time (square), Max Utility (circle),
Max Utility-per-Energy (triangle) — plus the completely random initial
population (star).  Each population evolves independently with its own
derived RNG stream; snapshots are taken at the configured checkpoint
generations.

Fault tolerance (see ``docs/fault_tolerance.md``): each population
worker is an *attempt* governed by a :class:`RetryPolicy` — bounded
retries with exponential backoff + deterministic jitter, and (in the
process-pool path) a per-attempt timeout.  A population that exhausts
its attempts degrades to a :class:`PopulationFailure` record on the
result instead of destroying its siblings' work; ``strict=True``
restores fail-fast semantics.  With a ``checkpoint_dir``, retries and
explicit resumes continue from the population's last durable NSGA-II
checkpoint rather than starting over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.pareto_front import ParetoFront
from repro.core.algorithm import RunHistory
from repro.core.registry import make_algorithm
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import DatasetBundle
from repro.heuristics import SEEDING_HEURISTICS
from repro.rng import derive_seed, ensure_rng
from repro.sim.evaluator import ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.context import RunContext

__all__ = [
    "PopulationFailure",
    "RetryPolicy",
    "SeededPopulationResult",
    "run_seeded_populations",
    "POPULATION_LABELS",
]

#: Population labels in the paper's marker order (random last).
POPULATION_LABELS: tuple[str, ...] = (
    "min-energy",
    "min-min-completion-time",
    "max-utility",
    "max-utility-per-energy",
    "random",
)


@dataclass(frozen=True)
class PopulationFailure:
    """A population whose every attempt failed.

    Attributes
    ----------
    label:
        The population's label.
    attempts:
        How many attempts were made before giving up.
    error:
        ``"ExceptionType: message"`` of the final attempt's failure.
    """

    label: str
    attempts: int
    error: str


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded-retry behaviour of one population worker.

    Attributes
    ----------
    max_attempts:
        Total attempts per population (1 = no retry).
    timeout:
        Per-attempt wall-clock limit in seconds (process-pool path
        only — a single in-process run cannot be pre-empted; ``None``
        disables).  A timed-out attempt counts as a failure and is
        retried under the same policy.  The abandoned worker process
        cannot be killed mid-task; it occupies a pool slot until it
        finishes or the pool shuts down.
    backoff_base:
        First retry delay; under ``"proportional"`` jitter, attempt
        *k*'s delay is ``min(backoff_max, backoff_base * 2**(k-1))``.
    backoff_max:
        Delay ceiling.
    jitter:
        (``"proportional"`` mode only.)  Multiplies the delay by
        ``1 + jitter * u`` with ``u ~ U[0, 1)`` drawn from a per-label
        stream derived from the experiment seed, so backoff spreading
        is reproducible.
    jitter_mode:
        ``"proportional"`` (default) keeps the classic exponential
        schedule with a small multiplicative spread — failures that
        happen together retry nearly together.  ``"decorrelated"``
        uses the AWS-style decorrelated-jitter schedule: each delay is
        drawn uniformly from ``[backoff_base, 3 * previous delay]``
        (capped at ``backoff_max``), so a batch of cells that all
        failed at the same instant — one dead worker takes out a whole
        pool generation — fan out instead of hammering the retry path
        in lockstep.  Both modes draw from the same per-label seeded
        streams, so schedules stay reproducible.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_max: float = 30.0
    jitter: float = 0.1
    jitter_mode: str = "proportional"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ExperimentError(f"timeout must be positive, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_max < 0 or self.jitter < 0:
            raise ExperimentError(
                "backoff_base, backoff_max, and jitter must be >= 0"
            )
        if self.jitter_mode not in ("proportional", "decorrelated"):
            raise ExperimentError(
                f"jitter_mode must be 'proportional' or 'decorrelated', "
                f"got {self.jitter_mode!r}"
            )

    def delay(
        self,
        attempt: int,
        rng: np.random.Generator,
        prev: Optional[float] = None,
    ) -> float:
        """Backoff before retrying after the *attempt*-th failure.

        *prev* is the previous delay handed to the same cell (``None``
        on its first retry); only the ``"decorrelated"`` mode reads it.
        Deterministic for a given seeded *rng* in both modes.
        """
        if self.jitter_mode == "decorrelated":
            floor = self.backoff_base
            high = max(3.0 * (prev if prev is not None else floor), floor)
            return min(
                self.backoff_max,
                floor + (high - floor) * float(rng.random()),
            )
        base = min(self.backoff_max, self.backoff_base * 2 ** (attempt - 1))
        if self.jitter:
            base *= 1.0 + self.jitter * float(rng.random())
        return base


@dataclass(frozen=True)
class SeededPopulationResult:
    """All populations' run histories for one data set.

    ``histories`` holds the populations that completed; ``failures``
    records those that exhausted their retry budget.  Front accessors
    operate on the surviving populations.
    """

    dataset_name: str
    config: ExperimentConfig
    histories: Mapping[str, RunHistory]
    seed_objectives: Mapping[str, tuple[float, float]]
    failures: tuple[PopulationFailure, ...] = field(default=())

    def front(self, label: str, generation: Optional[int] = None) -> ParetoFront:
        """The Pareto front of *label* at *generation* (default: final)."""
        history = self.histories.get(label)
        if history is None:
            failed = {f.label: f for f in self.failures}
            if label in failed:
                raise ExperimentError(
                    f"population {label!r} failed after "
                    f"{failed[label].attempts} attempts: {failed[label].error}"
                )
            raise ExperimentError(
                f"unknown population {label!r}; have {sorted(self.histories)}"
            )
        snap = history.final if generation is None else history.snapshot_at(generation)
        return ParetoFront(points=snap.front_points, label=label)

    def fronts_at(self, generation: int) -> dict[str, ParetoFront]:
        """All surviving populations' fronts at one checkpoint."""
        return {
            label: self.front(label, generation) for label in self.histories
        }

    def combined_front(self) -> ParetoFront:
        """Nondominated union of every surviving population's final front."""
        if not self.histories:
            raise ExperimentError(
                "no population survived; cannot build a combined front"
            )
        pts = np.vstack(
            [h.final.front_points for h in self.histories.values()]
        )
        return ParetoFront.from_points(pts, label="combined")

    @property
    def failed_labels(self) -> tuple[str, ...]:
        """Labels of populations that exhausted their retry budget."""
        return tuple(f.label for f in self.failures)


def _run_one_population(
    dataset: DatasetBundle,
    config: ExperimentConfig,
    label: str,
    seeds: list[ResourceAllocation],
    attempt: int = 1,
    fault_hook: Optional[Callable[[str, int], None]] = None,
    evaluation_fault_hook: Optional[Callable[[], None]] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    obs: Optional["RunContext"] = None,
) -> tuple[str, RunHistory]:
    """Worker body: one population's full optimizer run.

    The engine is looked up from ``config.algorithm`` through the
    portfolio registry, so the same worker serves NSGA-II, SPEA2,
    MOEA/D, and the archive variants.  Module-level (picklable) so
    :func:`run_seeded_populations` can farm populations out to a
    process pool — the five populations share no state and are
    embarrassingly parallel.  *fault_hook* (called with ``(label,
    attempt)`` before any work) and *evaluation_fault_hook* (threaded
    into the evaluator) exist for the deterministic fault-injection
    harness.  *obs* is only threaded through on the sequential path — a
    :class:`~repro.obs.context.RunContext` is not picklable into pool
    workers, so parallel runs record coordinator-side telemetry
    (retries, failures, timings) only.
    """
    if fault_hook is not None:
        fault_hook(label, attempt)
    evaluator = ScheduleEvaluator(dataset.system, dataset.trace,
                                  check_feasibility=False,
                                  fault_hook=evaluation_fault_hook,
                                  kernel_method=config.kernel_method,
                                  obs=obs)
    ga = make_algorithm(
        config.algorithm,
        evaluator,
        config.algorithm_config(),
        seeds=seeds,
        rng=derive_seed(config.base_seed, dataset.name, label),
        label=label,
        obs=obs,
    )
    history = ga.run(
        generations=config.generations,
        checkpoints=list(config.checkpoints),
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    return label, history


def run_seeded_populations(
    dataset: DatasetBundle,
    config: ExperimentConfig,
    labels: Sequence[str] = POPULATION_LABELS,
    extra_seeds: Optional[Mapping[str, Sequence[ResourceAllocation]]] = None,
    workers: int = 0,
    *,
    transport: str = "auto",
    retry: Optional[RetryPolicy] = None,
    strict: bool = False,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    grid_dir: Optional[str] = None,
    fault_hook: Optional[Callable[[str, int], None]] = None,
    evaluation_fault_hook: Optional[Callable[[], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    obs: Optional["RunContext"] = None,
) -> SeededPopulationResult:
    """Run the seeded-population experiment on *dataset*.

    Parameters
    ----------
    dataset:
        The (system, trace) bundle.
    config:
        Population size, operators, checkpoints.
    labels:
        Which populations to run (duplicates are rejected).  Known
        labels: the four heuristic names of
        :data:`repro.heuristics.SEEDING_HEURISTICS`, ``"random"``, and
        ``"all-seeds"`` (all four heuristics in one population — the
        paper's dropped variant, used by ablation A5).
    extra_seeds:
        Optional label → seed-allocation list for custom populations.
    workers:
        Process-pool size for running populations in parallel; 0 (the
        default) runs sequentially in-process.  Results are identical
        either way (each population's RNG stream is derived from the
        config seed, not from execution order).  Parallel results are
        collected as they complete, so one slow population never
        serializes the others.  The dataset's arrays are published once
        into shared memory and workers attach zero-copy (see
        :mod:`repro.parallel`); per-cell submissions carry only a few
        bytes of descriptors.
    transport:
        Array transport for the parallel path: ``"auto"`` (shared
        memory when available, else pickle), ``"shm"``, or
        ``"pickle"``.  Results are bit-identical across transports.
    retry:
        Per-population :class:`RetryPolicy`; default
        ``RetryPolicy()`` (3 attempts, exponential backoff).
    strict:
        When ``True``, a population that exhausts its attempts raises
        :class:`~repro.errors.ExperimentError` immediately (fail-fast).
        When ``False`` (default), it degrades to a
        :class:`PopulationFailure` on the result and its siblings'
        histories are preserved; only the loss of *every* population
        raises.
    checkpoint_dir:
        Directory for durable NSGA-II checkpoints (one file per
        population).  Retries after a mid-run crash resume from the
        last checkpoint instead of starting over.
    resume:
        Resume every population from its checkpoint in
        *checkpoint_dir* where one exists (first attempts included) —
        the ``repro-analyze resume`` workflow.
    grid_dir:
        Directory for the durable grid manifest + result store (see
        :mod:`repro.experiments.grid`).  Each population is a journaled
        grid cell whose completed history is persisted, so an
        interrupted experiment resumes via ``repro-analyze grid
        resume`` (or by re-calling with the same arguments), skipping
        verified-complete populations.  Unless *checkpoint_dir* is
        given, per-population checkpoints default to
        ``<grid_dir>/checkpoints`` so re-driven cells also resume
        mid-run.  ``None`` (default) keeps the zero-overhead in-memory
        path.
    fault_hook:
        Test-only ``(label, attempt)`` hook invoked at the top of every
        worker attempt (see :mod:`repro.testing.faults`).  Must be
        picklable when ``workers > 1``.
    evaluation_fault_hook:
        Test-only zero-arg hook threaded into each worker's
        :class:`~repro.sim.evaluator.ScheduleEvaluator`.
    sleep:
        Injectable sleep used for backoff waits (tests pass a recorder).
    obs:
        Optional :class:`~repro.obs.context.RunContext`.  Records
        heuristic-seeding spans, retry/failure events and counters, and
        (sequentially only — contexts don't cross process boundaries)
        the full per-population GA/evaluator/checkpoint telemetry.
    """
    labels = list(labels)
    if len(set(labels)) != len(labels):
        dupes = sorted({lb for lb in labels if labels.count(lb) > 1})
        raise ExperimentError(f"duplicate population labels: {dupes}")
    policy = retry if retry is not None else RetryPolicy()
    if obs is None:
        from repro.obs.context import NULL_CONTEXT

        obs = NULL_CONTEXT
    obs = obs.bind(dataset=dataset.name)

    binding = None
    if grid_dir is not None:
        if extra_seeds:
            raise ExperimentError(
                "grid_dir does not support extra_seeds populations — their "
                "allocations are runtime objects the manifest cannot "
                "fingerprint or re-drive"
            )
        from pathlib import Path

        from repro.experiments.grid import GridBinding

        grid_spec = {
            "driver": "seeded-populations",
            "dataset": {"name": dataset.name, "seed": dataset.seed},
            "config": config.to_spec(),
            "labels": list(labels),
        }
        binding = GridBinding.open_or_create(
            grid_dir, spec=grid_spec, dataset=dataset,
            keys=list(labels), obs=obs,
        )
        if checkpoint_dir is None:
            # Re-driven cells should resume mid-run, not restart.
            checkpoint_dir = str(Path(grid_dir) / "checkpoints")
            Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)

    evaluator = ScheduleEvaluator(dataset.system, dataset.trace,
                                  check_feasibility=False,
                                  kernel_method=config.kernel_method)

    # Build each heuristic's allocation once (shared across labels).
    heuristic_allocs: dict[str, ResourceAllocation] = {}
    needed = set()
    for label in labels:
        if label in SEEDING_HEURISTICS:
            needed.add(label)
        elif label == "all-seeds":
            needed.update(SEEDING_HEURISTICS)
        elif label == "random":
            pass
        elif extra_seeds is None or label not in extra_seeds:
            raise ExperimentError(f"unknown population label {label!r}")
    for name in sorted(needed):
        with obs.span("seeding.build", heuristic=name):
            heuristic_allocs[name] = SEEDING_HEURISTICS[name]().build(
                dataset.system, dataset.trace
            )

    seed_objectives = {
        name: evaluator.objectives(alloc)
        for name, alloc in heuristic_allocs.items()
    }

    def seeds_for(label: str) -> list[ResourceAllocation]:
        if label in SEEDING_HEURISTICS:
            return [heuristic_allocs[label]]
        if label == "all-seeds":
            return [heuristic_allocs[name] for name in sorted(SEEDING_HEURISTICS)]
        if label == "random":
            return []
        return list(extra_seeds[label])  # type: ignore[index]

    backoff_rngs: dict[str, np.random.Generator] = {}
    prev_delays: dict[str, float] = {}

    def backoff_for(label: str, attempt: int) -> float:
        if label not in backoff_rngs:
            backoff_rngs[label] = ensure_rng(
                derive_seed(config.base_seed, "retry-backoff", label)
            )
        delay = policy.delay(
            attempt, backoff_rngs[label], prev=prev_delays.get(label)
        )
        prev_delays[label] = delay
        # backoff_for is called exactly once per scheduled retry, on
        # both the sequential and the process-pool paths.
        if obs.enabled:
            obs.counter(
                "runner_retries_total", help="population attempts retried"
            ).inc()
            obs.event(
                "retry.scheduled", level="warning",
                label=label, failed_attempt=attempt, delay_seconds=delay,
            )
        return delay

    def resume_attempt(attempt: int) -> bool:
        # Explicit resumes always; retries resume iff checkpoints exist.
        return resume or (attempt > 1 and checkpoint_dir is not None)

    histories: dict[str, RunHistory] = {}
    failures: list[PopulationFailure] = []

    todo: list[str] = list(labels)
    if binding is not None:
        # Function-level import: repro.experiments.io imports this
        # module for its result types.
        from repro.experiments.io import history_from_doc, history_to_doc

        for done_label, payload in binding.preloaded.items():
            histories[done_label] = history_from_doc(
                done_label, payload["history"]
            )
        todo = binding.pending_keys(labels)

    def give_up(label: str, attempt: int, exc: BaseException) -> None:
        if obs.enabled:
            obs.counter(
                "runner_failures_total",
                help="populations that exhausted their retry budget",
            ).inc()
            obs.event(
                "population.failed", level="error",
                label=label, attempts=attempt,
                error=f"{type(exc).__name__}: {exc}",
            )
        if strict:
            raise ExperimentError(
                f"population {label!r} failed after {attempt} attempt(s): "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        failures.append(
            PopulationFailure(
                label=label,
                attempts=attempt,
                error=f"{type(exc).__name__}: {exc}",
            )
        )

    if workers and workers > 1 and len(todo) > 1:
        _run_parallel(
            dataset, config, todo, seeds_for, workers, policy,
            fault_hook, evaluation_fault_hook, checkpoint_dir,
            resume_attempt, backoff_for, give_up, histories, sleep,
            obs=obs, transport=transport, binding=binding,
        )
    else:
        for label in todo:
            attempt = 0
            while True:
                attempt += 1
                try:
                    if binding is not None:
                        binding.mark_running(label, attempt)
                    _, history = _run_one_population(
                        dataset, config, label, seeds_for(label),
                        attempt=attempt,
                        fault_hook=fault_hook,
                        evaluation_fault_hook=evaluation_fault_hook,
                        checkpoint_dir=checkpoint_dir,
                        resume=resume_attempt(attempt),
                        obs=obs,
                    )
                    histories[label] = history
                    if binding is not None:
                        binding.record_done(
                            label, {"history": history_to_doc(history)}
                        )
                    break
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if binding is not None:
                        binding.mark_failed(label, attempt, exc)
                    if attempt >= policy.max_attempts:
                        give_up(label, attempt, exc)
                        break
                    sleep(backoff_for(label, attempt))

    # Cells land in completion (or preload) order; restore label order
    # so every downstream iteration (reports, dominance tables) is
    # identical to a serial, non-grid run.
    histories = {
        label: histories[label] for label in labels if label in histories
    }

    if binding is not None:
        for q_label in binding.quarantined_keys():
            status = binding.manifest.cells[q_label]
            message = (
                "quarantined after repeated worker crashes "
                "(inspect with 'repro-analyze grid status', re-drive with "
                "'repro-analyze grid retry-quarantined')"
            )
            if strict:
                raise ExperimentError(f"population {q_label!r} {message}")
            failures.append(
                PopulationFailure(
                    label=q_label,
                    attempts=max(status.attempt, 1),
                    error=message,
                )
            )

    if labels and not histories:
        summary = "; ".join(f"{f.label}: {f.error}" for f in failures)
        raise ExperimentError(f"every population failed — {summary}")
    return SeededPopulationResult(
        dataset_name=dataset.name,
        config=config,
        histories=histories,
        seed_objectives=seed_objectives,
        failures=tuple(failures),
    )


def _population_cell(
    restored,
    extra: dict,
    label: str,
    attempt: int,
    resume: bool,
) -> tuple[str, RunHistory]:
    """Engine cell body: one population attempt on the shared dataset.

    Runs in a pool worker.  *restored* is the worker's memoized
    :class:`~repro.parallel.descriptors.RestoredDataset` — the
    evaluator is built over its zero-copy shared views, so per-attempt
    setup does no O(tasks × machines) array work.  The RNG stream is
    derived exactly as on the sequential path, so results are
    bit-identical regardless of execution order or transport.
    """
    from repro.parallel.engine import worker_obs

    fault_hook = extra["fault_hook"]
    if fault_hook is not None:
        fault_hook(label, attempt)
    config: ExperimentConfig = extra["config"]
    dataset = restored.bundle
    evaluator = restored.make_evaluator(
        check_feasibility=False,
        fault_hook=extra["evaluation_fault_hook"],
        kernel_method=config.kernel_method,
    )
    ga = make_algorithm(
        config.algorithm,
        evaluator,
        config.algorithm_config(),
        seeds=extra["seeds"][label],
        rng=derive_seed(config.base_seed, dataset.name, label),
        label=label,
        # The worker's own telemetry sink (NULL_CONTEXT when dark): GA
        # stage spans nest under this cell's ``cell.run`` span.
        obs=worker_obs(),
    )
    history = ga.run(
        generations=config.generations,
        checkpoints=list(config.checkpoints),
        checkpoint_dir=extra["checkpoint_dir"],
        resume=resume,
    )
    return label, history


def _run_parallel(
    dataset: DatasetBundle,
    config: ExperimentConfig,
    labels: Sequence[str],
    seeds_for: Callable[[str], list[ResourceAllocation]],
    workers: int,
    policy: RetryPolicy,
    fault_hook: Optional[Callable[[str, int], None]],
    evaluation_fault_hook: Optional[Callable[[], None]],
    checkpoint_dir: Optional[str],
    resume_attempt: Callable[[int], bool],
    backoff_for: Callable[[str, int], float],
    give_up: Callable[[str, int, BaseException], None],
    histories: dict[str, RunHistory],
    sleep: Callable[[float], None],
    obs: Optional["RunContext"] = None,
    transport: str = "auto",
    binding=None,
) -> None:
    """Zero-copy process-pool orchestration via the parallel engine.

    The dataset's arrays are published once into shared memory (see
    :mod:`repro.parallel`); workers attach zero-copy through the pool
    initializer, so each cell submission carries only ``(label,
    attempt, resume)``.  The engine provides as-completed collection,
    heap-scheduled backoff retries, per-attempt timeouts with cell
    leases (a timed-out attempt and its retry never run concurrently),
    and clean ``KeyboardInterrupt`` shutdown.
    """
    from repro.obs.context import NULL_CONTEXT
    from repro.obs.distributed import GRID_SPAN_NAME, WorkerTelemetryConfig
    from repro.parallel.descriptors import publish_dataset
    from repro.parallel.engine import CellReply, ParallelEngine

    extra = {
        "config": config,
        "seeds": {label: seeds_for(label) for label in labels},
        "fault_hook": fault_hook,
        "evaluation_fault_hook": evaluation_fault_hook,
        "checkpoint_dir": checkpoint_dir,
    }

    def on_result(reply: CellReply) -> None:
        finished_label, history = reply.result
        histories[finished_label] = history
        if binding is not None:
            from repro.experiments.io import history_to_doc

            binding.record_done(
                finished_label, {"history": history_to_doc(history)}
            )
        if obs is not None and obs.enabled:
            obs.record_span(
                "population.run", reply.elapsed,
                label=finished_label, attempt=reply.attempt,
            )

    journal = binding.worker_journal() if binding is not None else None
    run_kwargs = binding.run_kwargs() if binding is not None else {}
    grid_id = binding.manifest.grid_id if binding is not None else ""
    telemetry = WorkerTelemetryConfig.from_context(obs, grid_id=grid_id)
    grid_obs = obs if obs is not None else NULL_CONTEXT
    with publish_dataset(dataset, transport=transport, obs=obs) as published:
        with ParallelEngine(
            workers, handle=published.handle, extra=extra, obs=obs,
            journal=journal, telemetry=telemetry,
        ) as engine:
            with grid_obs.span(
                GRID_SPAN_NAME, grid_id=grid_id, cells=len(labels),
                driver="seeded-populations",
            ):
                engine.run(
                    _population_cell,
                    labels,
                    payload_for=lambda label, attempt: resume_attempt(attempt),
                    policy=policy,
                    backoff_for=backoff_for,
                    give_up=give_up,
                    on_result=on_result,
                    sleep=sleep,
                    **run_kwargs,
                )
