"""Serialization of experiment results.

Figure reproductions can take a while at paper scale; these helpers
archive a :class:`~repro.experiments.figures.FigureResult`'s front data
as JSON so analyses and plots can be re-run without re-optimizing.
Chromosome payloads are intentionally *not* serialized (they are large
and reproducible from the recorded seeds); the objective-space data —
what the paper's figures show — round-trips exactly.

Writes are durable (see :mod:`repro.storage`): atomic temp-file +
``os.replace`` so a crash mid-save never truncates an existing result,
and a SHA-256 payload checksum so a damaged file raises
:class:`~repro.errors.CorruptArtifactError` on load instead of feeding
garbage into an analysis.  Pre-checksum files still load, unchecked.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.nsga2 import GenerationSnapshot, RunHistory
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FigureResult
from repro.experiments.runner import PopulationFailure, SeededPopulationResult
from repro.storage import atomic_write_json, read_json_artifact

__all__ = [
    "save_figure_result",
    "load_figure_result",
    "history_to_doc",
    "history_from_doc",
]

_FORMAT = "repro.figure-result/1"


def history_to_doc(history: RunHistory) -> dict:
    """JSON-ready document of *history*'s objective-space data.

    Chromosome payloads are dropped (large, reproducible from seeds);
    front points serialize through Python floats, whose shortest-repr
    JSON encoding round-trips float64 exactly — reloaded fronts are
    byte-identical to the originals.  Shared by figure archives and the
    grid result store.
    """
    return {
        "total_generations": history.total_generations,
        "total_evaluations": history.total_evaluations,
        "wall_seconds": history.wall_seconds,
        "snapshots": [
            {
                "generation": s.generation,
                "evaluations": s.evaluations,
                "front_points": s.front_points.tolist(),
            }
            for s in history.snapshots
        ],
    }


def history_from_doc(label: str, doc: dict) -> RunHistory:
    """Rebuild a :class:`RunHistory` from :func:`history_to_doc` output.

    Chromosome arrays are absent in reloaded snapshots (``None``); all
    objective-space analyses work unchanged.
    """
    snapshots = tuple(
        GenerationSnapshot(
            generation=s["generation"],
            front_points=np.asarray(s["front_points"], dtype=np.float64),
            front_assignments=None,
            front_orders=None,
            evaluations=s["evaluations"],
        )
        for s in doc["snapshots"]
    )
    return RunHistory(
        label=label,
        snapshots=snapshots,
        total_generations=doc["total_generations"],
        total_evaluations=doc["total_evaluations"],
        wall_seconds=doc["wall_seconds"],
    )


def save_figure_result(result: FigureResult, path: Union[str, Path]) -> None:
    """Write *result*'s objective-space data as JSON."""
    doc = {
        "format": _FORMAT,
        "name": result.name,
        "dataset": result.result.dataset_name,
        "paper_checkpoints": list(result.paper_checkpoints),
        "config": {
            "population_size": result.result.config.population_size,
            "mutation_probability": result.result.config.mutation_probability,
            "generations": result.result.config.generations,
            "checkpoints": list(result.result.config.checkpoints),
            "base_seed": result.result.config.base_seed,
            "algorithm": result.result.config.algorithm,
        },
        "seed_objectives": {
            k: list(v) for k, v in result.result.seed_objectives.items()
        },
        "histories": {
            label: history_to_doc(h)
            for label, h in result.result.histories.items()
        },
        "failures": [
            {"label": f.label, "attempts": f.attempts, "error": f.error}
            for f in result.result.failures
        ],
    }
    atomic_write_json(path, doc)


def load_figure_result(path: Union[str, Path]) -> FigureResult:
    """Load a result written by :func:`save_figure_result`.

    Chromosome arrays are absent in reloaded snapshots (``None``); all
    objective-space analyses work unchanged.

    Raises :class:`~repro.errors.ExperimentError` when *path* does not
    exist and :class:`~repro.errors.CorruptArtifactError` when it fails
    its integrity check.
    """
    try:
        doc = read_json_artifact(path)
    except FileNotFoundError as exc:
        raise ExperimentError(f"no figure result at {Path(path)}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        found = doc.get("format") if isinstance(doc, dict) else type(doc).__name__
        raise ExperimentError(f"unrecognized figure-result format {found!r}")
    config = ExperimentConfig(
        population_size=doc["config"]["population_size"],
        mutation_probability=doc["config"]["mutation_probability"],
        generations=doc["config"]["generations"],
        checkpoints=tuple(doc["config"]["checkpoints"]),
        base_seed=doc["config"]["base_seed"],
        # Results saved before the portfolio redesign carry no
        # algorithm field; they were all NSGA-II runs.
        algorithm=doc["config"].get("algorithm", "nsga2"),
    )
    histories = {
        label: history_from_doc(label, h)
        for label, h in doc["histories"].items()
    }
    result = SeededPopulationResult(
        dataset_name=doc["dataset"],
        config=config,
        histories=histories,
        seed_objectives={
            k: tuple(v) for k, v in doc["seed_objectives"].items()
        },
        failures=tuple(
            PopulationFailure(
                label=f["label"], attempts=f["attempts"], error=f["error"]
            )
            for f in doc.get("failures", [])
        ),
    )
    return FigureResult(
        name=doc["name"],
        result=result,
        paper_checkpoints=tuple(doc["paper_checkpoints"]),
    )
