"""Multi-repetition experiments with statistical aggregation.

One NSGA-II run per population (the paper's protocol) is a single
sample; this module runs R independent repetitions — each with a
derived seed governing both the initial population and the operator
stream — and aggregates:

* per-repetition final fronts;
* best / median / worst empirical attainment surfaces;
* hypervolume mean / standard deviation / min / max against a common
  reference point.

Used by the statistics example and available for paper-scale studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.attainment import attainment_summary
from repro.analysis.indicators import hypervolume
from repro.analysis.pareto_front import ParetoFront
from repro.core.nsga2 import NSGA2, NSGA2Config
from repro.core.operators import OperatorConfig
from repro.errors import ExperimentError
from repro.experiments.datasets import DatasetBundle
from repro.heuristics import SEEDING_HEURISTICS
from repro.rng import derive_seed
from repro.sim.evaluator import ScheduleEvaluator
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.context import RunContext

__all__ = ["HypervolumeStats", "RepetitionResult", "run_repetitions"]


@dataclass(frozen=True)
class HypervolumeStats:
    """Summary statistics of final-front hypervolume over repetitions."""

    mean: float
    std: float
    minimum: float
    maximum: float
    reference: tuple[float, float]

    @classmethod
    def from_fronts(
        cls, fronts: Sequence[FloatArray], reference: tuple[float, float]
    ) -> "HypervolumeStats":
        """Compute stats of *fronts* against *reference*."""
        values = np.array([hypervolume(f, reference) for f in fronts])
        return cls(
            mean=float(values.mean()),
            std=float(values.std()),
            minimum=float(values.min()),
            maximum=float(values.max()),
            reference=reference,
        )


@dataclass(frozen=True)
class RepetitionResult:
    """Aggregated outcome of R repetitions of one population setup."""

    label: str
    fronts: tuple[FloatArray, ...]
    attainment: Mapping[str, ParetoFront]
    hypervolume: HypervolumeStats

    @property
    def repetitions(self) -> int:
        """Number of repetitions R."""
        return len(self.fronts)


def run_repetitions(
    dataset: DatasetBundle,
    repetitions: int,
    generations: int,
    population_size: int = 100,
    mutation_probability: float = 0.25,
    seed_label: str = "random",
    base_seed: int = 2013,
    obs: Optional["RunContext"] = None,
) -> RepetitionResult:
    """Run R independent NSGA-II repetitions of one population setup.

    Parameters
    ----------
    dataset:
        The (system, trace) bundle.
    repetitions:
        Number of independent runs R (>= 1).
    generations:
        Generations per run.
    seed_label:
        ``"random"`` or one of the heuristic names in
        :data:`repro.heuristics.SEEDING_HEURISTICS`; the heuristic
        allocation (deterministic) is shared, the random fill differs
        per repetition.
    base_seed:
        Master seed; repetition r uses ``derive_seed(base, label, r)``.
    obs:
        Optional :class:`~repro.obs.context.RunContext` threaded into
        the evaluator and every repetition's engine; adds a
        ``repetition.run`` span per repetition and a final hypervolume
        gauge.
    """
    if repetitions < 1:
        raise ExperimentError(f"repetitions must be >= 1, got {repetitions}")
    if seed_label != "random" and seed_label not in SEEDING_HEURISTICS:
        raise ExperimentError(
            f"unknown seed label {seed_label!r}; expected 'random' or one of "
            f"{sorted(SEEDING_HEURISTICS)}"
        )
    if obs is None:
        from repro.obs.context import NULL_CONTEXT

        obs = NULL_CONTEXT
    obs = obs.bind(dataset=dataset.name, seed_label=seed_label)
    evaluator = ScheduleEvaluator(dataset.system, dataset.trace,
                                  check_feasibility=False, obs=obs)
    seeds = []
    if seed_label != "random":
        with obs.span("seeding.build", heuristic=seed_label):
            seeds = [SEEDING_HEURISTICS[seed_label]().build(dataset.system,
                                                            dataset.trace)]

    fronts: list[FloatArray] = []
    for r in range(repetitions):
        ga = NSGA2(
            evaluator,
            NSGA2Config(
                population_size=population_size,
                operators=OperatorConfig(
                    mutation_probability=mutation_probability
                ),
            ),
            seeds=seeds,
            rng=derive_seed(base_seed, dataset.name, seed_label, r),
            label=f"{seed_label}#{r}",
            obs=obs,
        )
        with obs.span("repetition.run", repetition=r):
            fronts.append(ga.run(generations).final.front_points)

    all_pts = np.vstack(fronts)
    reference = (float(all_pts[:, 0].max() * 1.01),
                 float(all_pts[:, 1].min() * 0.99))
    stats = HypervolumeStats.from_fronts(fronts, reference)
    if obs.enabled:
        obs.metrics.gauge(
            "repetitions_hypervolume_mean",
            help="mean final-front hypervolume over repetitions",
        ).set(stats.mean)
    return RepetitionResult(
        label=seed_label,
        fronts=tuple(fronts),
        attainment=attainment_summary(fronts),
        hypervolume=stats,
    )
