"""Multi-repetition experiments with statistical aggregation.

One NSGA-II run per population (the paper's protocol) is a single
sample; this module runs R independent repetitions — each with a
derived seed governing both the initial population and the operator
stream — and aggregates:

* per-repetition final fronts;
* best / median / worst empirical attainment surfaces;
* hypervolume mean / standard deviation / min / max against a common
  reference point.

Used by the statistics example and available for paper-scale studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

import numpy as np

from repro.analysis.attainment import attainment_summary
from repro.analysis.indicators import hypervolume
from repro.analysis.pareto_front import ParetoFront
from repro.core.algorithm import AlgorithmConfig
from repro.core.registry import AlgorithmFactory, make_algorithm
from repro.errors import ExperimentError
from repro.experiments.datasets import DatasetBundle
from repro.heuristics import SEEDING_HEURISTICS
from repro.rng import derive_seed, ensure_rng
from repro.sim.evaluator import DEFAULT_KERNEL_METHOD, ScheduleEvaluator
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import RetryPolicy
    from repro.obs.context import RunContext

__all__ = ["HypervolumeStats", "RepetitionResult", "run_repetitions"]


@dataclass(frozen=True)
class HypervolumeStats:
    """Summary statistics of final-front hypervolume over repetitions."""

    mean: float
    std: float
    minimum: float
    maximum: float
    reference: tuple[float, float]

    @classmethod
    def from_fronts(
        cls, fronts: Sequence[FloatArray], reference: tuple[float, float]
    ) -> "HypervolumeStats":
        """Compute stats of *fronts* against *reference*."""
        values = np.array([hypervolume(f, reference) for f in fronts])
        return cls(
            mean=float(values.mean()),
            std=float(values.std()),
            minimum=float(values.min()),
            maximum=float(values.max()),
            reference=reference,
        )


@dataclass(frozen=True)
class RepetitionResult:
    """Aggregated outcome of R repetitions of one population setup."""

    label: str
    fronts: tuple[FloatArray, ...]
    attainment: Mapping[str, ParetoFront]
    hypervolume: HypervolumeStats

    @property
    def repetitions(self) -> int:
        """Number of repetitions R."""
        return len(self.fronts)


#: Per-worker memo of evaluators keyed by (dataset id, kernel method) —
#: one evaluation cache per (worker, dataset, kernel), shared by every
#: repetition cell the worker executes.  Cache hits are bit-identical
#: to fresh evaluations, so sharing never perturbs results.
_CELL_EVALUATORS: dict[str, ScheduleEvaluator] = {}


def _repetition_cell(restored, extra: dict, r: int, attempt: int, payload) -> FloatArray:
    """Engine cell body: one repetition's full optimizer run (pool worker).

    The engine comes from the portfolio registry — ``extra["algorithm"]``
    ships the choice (a registry name, or a picklable factory) to the
    worker alongside the dataset handle.  The RNG stream is
    ``derive_seed(base_seed, dataset, label, r)`` — exactly the serial
    derivation — so fronts are bit-identical to a sequential run
    regardless of worker count, scheduling order, or transport.
    """
    from repro.parallel.engine import worker_obs

    fault_hook = extra.get("fault_hook")
    if fault_hook is not None:
        fault_hook(r, attempt)
    kernel_method = extra.get("kernel_method", "fast")
    memo_key = f"{restored.handle.dataset_id}:{kernel_method}"
    evaluator = _CELL_EVALUATORS.get(memo_key)
    if evaluator is None:
        evaluator = restored.make_evaluator(check_feasibility=False,
                                            kernel_method=kernel_method)
        _CELL_EVALUATORS[memo_key] = evaluator
    dataset = restored.bundle
    seed_label = extra["seed_label"]
    ga = make_algorithm(
        extra["algorithm"],
        evaluator,
        AlgorithmConfig(
            population_size=extra["population_size"],
            mutation_probability=extra["mutation_probability"],
        ),
        seeds=extra["seeds"],
        rng=derive_seed(extra["base_seed"], dataset.name, seed_label, r),
        label=f"{seed_label}#{r}",
        # The worker's own telemetry sink (NULL_CONTEXT when dark): GA
        # stage spans nest under this cell's ``cell.run`` span.
        obs=worker_obs(),
    )
    return ga.run(extra["generations"]).final.front_points


def run_repetitions(
    dataset: DatasetBundle,
    repetitions: int,
    generations: int,
    population_size: int = 100,
    mutation_probability: float = 0.25,
    seed_label: str = "random",
    base_seed: int = 2013,
    workers: int = 0,
    transport: str = "auto",
    retry: Optional["RetryPolicy"] = None,
    algorithm: Union[str, AlgorithmFactory] = "nsga2",
    kernel_method: str = DEFAULT_KERNEL_METHOD,
    grid_dir: Optional[str] = None,
    fault_hook=None,
    obs: Optional["RunContext"] = None,
) -> RepetitionResult:
    """Run R independent optimizer repetitions of one population setup.

    Parameters
    ----------
    dataset:
        The (system, trace) bundle.
    repetitions:
        Number of independent runs R (>= 1).
    generations:
        Generations per run.
    seed_label:
        ``"random"`` or one of the heuristic names in
        :data:`repro.heuristics.SEEDING_HEURISTICS`; the heuristic
        allocation (deterministic) is shared, the random fill differs
        per repetition.
    base_seed:
        Master seed; repetition r uses ``derive_seed(base, label, r)``.
    workers:
        Process-pool size for fanning the R repetitions out in
        parallel; 0 (default) runs sequentially in-process.  The
        dataset's arrays are published once into shared memory (see
        :mod:`repro.parallel`) and workers attach zero-copy; each cell
        submission carries only the repetition index.  Fronts are
        reassembled in repetition order and are bit-identical to a
        sequential run (per-repetition RNG streams are derived from the
        seed, never from execution order).
    transport:
        Array transport for the parallel path: ``"auto"`` (shared
        memory when available, else pickle), ``"shm"``, or
        ``"pickle"``.  Results are bit-identical across transports.
    retry:
        Per-repetition :class:`~repro.experiments.runner.RetryPolicy`
        for the parallel path (default: 3 attempts, exponential
        backoff).  A repetition that exhausts its budget raises — a
        missing sample would silently bias the aggregate statistics.
    algorithm:
        Registry name (``"nsga2"``, ``"spea2"``, ...) or a factory
        callable with the :class:`~repro.core.algorithm.Algorithm`
        constructor signature.  Parallel runs require the value to be
        picklable (registry names always are).
    kernel_method:
        Evaluation kernel threaded into every repetition's evaluator
        (``"fast"``, ``"reference"``, ``"batch"``,
        ``"batch-reference"``; see
        :class:`~repro.sim.evaluator.ScheduleEvaluator`).  Part of the
        grid spec: changing it invalidates cached cells.
    grid_dir:
        Directory for the durable grid manifest + result store (see
        :mod:`repro.experiments.grid`).  Every repetition's lifecycle
        is journaled and its final front persisted, so an interrupted
        run — dead worker, dead coordinator — resumes with
        ``repro-analyze grid resume`` (or by re-calling with the same
        arguments), skipping verified-complete repetitions.  Requires
        *algorithm* to be a registry name (re-drive must reconstruct
        it).  ``None`` (default) keeps the zero-overhead in-memory
        path: no manifest code runs at all.
    fault_hook:
        Test-only ``(repetition, attempt)`` hook invoked at the top of
        every cell attempt (chaos drills kill workers through it).
        Must be picklable when ``workers > 1``.
    obs:
        Optional :class:`~repro.obs.context.RunContext` threaded into
        the evaluator and every repetition's engine; adds a
        ``repetition.run`` span per repetition and a final hypervolume
        gauge.  Parallel runs record coordinator-side telemetry
        (spans from worker-reported timings, queue-wait histograms,
        attach counters).
    """
    if repetitions < 1:
        raise ExperimentError(f"repetitions must be >= 1, got {repetitions}")
    if seed_label != "random" and seed_label not in SEEDING_HEURISTICS:
        raise ExperimentError(
            f"unknown seed label {seed_label!r}; expected 'random' or one of "
            f"{sorted(SEEDING_HEURISTICS)}"
        )
    if obs is None:
        from repro.obs.context import NULL_CONTEXT

        obs = NULL_CONTEXT
    obs = obs.bind(dataset=dataset.name, seed_label=seed_label)
    seeds = []
    if seed_label != "random":
        with obs.span("seeding.build", heuristic=seed_label):
            seeds = [SEEDING_HEURISTICS[seed_label]().build(dataset.system,
                                                            dataset.trace)]

    binding = None
    if grid_dir is not None:
        if not isinstance(algorithm, str):
            raise ExperimentError(
                "grid_dir requires a registry algorithm name — re-driving "
                "the grid must be able to reconstruct the optimizer from "
                "the journaled spec"
            )
        from repro.experiments.grid import GridBinding

        spec = {
            "driver": "repetitions",
            "dataset": {"name": dataset.name, "seed": dataset.seed},
            "repetitions": repetitions,
            "generations": generations,
            "population_size": population_size,
            "mutation_probability": mutation_probability,
            "seed_label": seed_label,
            "base_seed": base_seed,
            "algorithm": algorithm,
            "kernel_method": kernel_method,
        }
        binding = GridBinding.open_or_create(
            grid_dir, spec=spec, dataset=dataset,
            keys=list(range(repetitions)), obs=obs,
        )

    all_keys = list(range(repetitions))
    fronts_by_r: dict[int, FloatArray] = {}
    if binding is not None:
        from repro.experiments.grid import front_from_payload

        for r, payload in binding.preloaded.items():
            fronts_by_r[r] = front_from_payload(payload)
        todo = binding.pending_keys(all_keys)
    else:
        todo = all_keys

    if workers and workers > 1 and len(todo) > 1:
        _run_repetitions_parallel(
            dataset, todo, generations, population_size,
            mutation_probability, seed_label, base_seed, workers,
            transport, retry, seeds, obs, algorithm,
            kernel_method=kernel_method,
            fronts_by_r=fronts_by_r, binding=binding,
            fault_hook=fault_hook,
        )
    elif todo:
        evaluator = ScheduleEvaluator(dataset.system, dataset.trace,
                                      check_feasibility=False,
                                      kernel_method=kernel_method, obs=obs)
        for r in todo:
            if fault_hook is not None:
                fault_hook(r, 1)
            if binding is not None:
                binding.mark_running(r)
            ga = make_algorithm(
                algorithm,
                evaluator,
                AlgorithmConfig(
                    population_size=population_size,
                    mutation_probability=mutation_probability,
                ),
                seeds=seeds,
                rng=derive_seed(base_seed, dataset.name, seed_label, r),
                label=f"{seed_label}#{r}",
                obs=obs,
            )
            try:
                with obs.span("repetition.run", repetition=r):
                    front = ga.run(generations).final.front_points
            except Exception as exc:
                if binding is not None:
                    binding.mark_failed(r, 1, exc)
                raise
            fronts_by_r[r] = front
            if binding is not None:
                from repro.experiments.grid import front_to_payload

                binding.record_done(r, front_to_payload(front))

    if binding is not None:
        quarantined = binding.quarantined_keys()
        if quarantined:
            raise ExperimentError(
                f"repetitions {quarantined} were quarantined (each crashed "
                f"its workers repeatedly); the rest of the grid is journaled "
                f"as done.  Inspect with 'repro-analyze grid status', "
                f"re-drive with 'repro-analyze grid retry-quarantined'."
            )
    fronts = [fronts_by_r[r] for r in all_keys]

    all_pts = np.vstack(fronts)
    reference = (float(all_pts[:, 0].max() * 1.01),
                 float(all_pts[:, 1].min() * 0.99))
    stats = HypervolumeStats.from_fronts(fronts, reference)
    if obs.enabled:
        obs.metrics.gauge(
            "repetitions_hypervolume_mean",
            help="mean final-front hypervolume over repetitions",
        ).set(stats.mean)
    return RepetitionResult(
        label=seed_label,
        fronts=tuple(fronts),
        attainment=attainment_summary(fronts),
        hypervolume=stats,
    )


def _run_repetitions_parallel(
    dataset: DatasetBundle,
    keys: list,
    generations: int,
    population_size: int,
    mutation_probability: float,
    seed_label: str,
    base_seed: int,
    workers: int,
    transport: str,
    retry: Optional["RetryPolicy"],
    seeds: list,
    obs: "RunContext",
    algorithm: Union[str, AlgorithmFactory] = "nsga2",
    *,
    kernel_method: str = DEFAULT_KERNEL_METHOD,
    fronts_by_r: dict,
    binding=None,
    fault_hook=None,
) -> None:
    """Fan the repetition cells in *keys* out over the parallel engine.

    Publishes the dataset once, ships the heuristic seed allocation
    once per worker via the pool initializer, and submits only the
    repetition index per cell.  Completed fronts land in *fronts_by_r*
    keyed by repetition, whatever order the cells completed in.  With
    a grid *binding*, workers heartbeat through the manifest journal,
    every lifecycle transition is journaled, and each front is
    persisted to the result store the moment it completes.
    """
    from repro.experiments.runner import RetryPolicy
    from repro.obs.distributed import GRID_SPAN_NAME, WorkerTelemetryConfig
    from repro.parallel.descriptors import publish_dataset
    from repro.parallel.engine import CellReply, ParallelEngine

    policy = retry if retry is not None else RetryPolicy()
    extra = {
        "generations": generations,
        "population_size": population_size,
        "mutation_probability": mutation_probability,
        "seed_label": seed_label,
        "base_seed": base_seed,
        "seeds": seeds,
        "algorithm": algorithm,
        "kernel_method": kernel_method,
        "fault_hook": fault_hook,
    }
    backoff_rngs: dict[int, np.random.Generator] = {}
    prev_delays: dict[int, float] = {}

    def backoff_for(r: int, attempt: int) -> float:
        if r not in backoff_rngs:
            backoff_rngs[r] = ensure_rng(
                derive_seed(base_seed, "repetition-backoff", seed_label, r)
            )
        delay = policy.delay(
            attempt, backoff_rngs[r], prev=prev_delays.get(r)
        )
        prev_delays[r] = delay
        if obs.enabled:
            obs.counter(
                "runner_retries_total", help="population attempts retried"
            ).inc()
            obs.event(
                "retry.scheduled", level="warning",
                label=f"{seed_label}#{r}", failed_attempt=attempt,
                delay_seconds=delay,
            )
        return delay

    def give_up(r: int, attempt: int, exc: BaseException) -> None:
        raise ExperimentError(
            f"repetition {r} failed after {attempt} attempt(s): "
            f"{type(exc).__name__}: {exc}"
        ) from exc

    def on_result(reply: CellReply) -> None:
        fronts_by_r[reply.key] = reply.result
        if binding is not None:
            from repro.experiments.grid import front_to_payload

            binding.record_done(reply.key, front_to_payload(reply.result))
        if obs.enabled:
            obs.record_span(
                "repetition.run", reply.elapsed,
                repetition=reply.key, attempt=reply.attempt,
            )

    run_kwargs = binding.run_kwargs() if binding is not None else {}
    journal = binding.worker_journal() if binding is not None else None
    grid_id = binding.manifest.grid_id if binding is not None else ""
    telemetry = WorkerTelemetryConfig.from_context(obs, grid_id=grid_id)
    with publish_dataset(dataset, transport=transport, obs=obs) as published:
        with ParallelEngine(
            workers, handle=published.handle, extra=extra, obs=obs,
            journal=journal, telemetry=telemetry,
        ) as engine:
            with obs.span(
                GRID_SPAN_NAME, grid_id=grid_id, cells=len(keys),
                driver="repetitions",
            ):
                engine.run(
                    _repetition_cell,
                    keys,
                    payload_for=lambda r, attempt: None,
                    policy=policy,
                    backoff_for=backoff_for,
                    give_up=give_up,
                    on_result=on_result,
                    **run_kwargs,
                )
