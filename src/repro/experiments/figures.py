"""Figure reproduction drivers (paper Figures 3-6).

Each ``figureN`` function runs the corresponding experiment and returns
a :class:`FigureResult` holding, per population and checkpoint, the
Pareto-front points — the exact data plotted in the paper — plus the
per-front efficiency regions (the circled max utility-per-energy
regions) and rendering helpers.

Paper checkpoint generations (``PAPER_CHECKPOINTS``) are scaled through
:func:`repro.experiments.config.scaled_checkpoints` unless explicit
checkpoints are passed; set ``REPRO_SCALE=1`` for paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.efficiency import EfficiencyRegion, max_utility_per_energy_region
from repro.analysis.pareto_front import ParetoFront
from repro.analysis.report import ascii_scatter, format_front_summary, format_table
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import DatasetBundle, dataset1, dataset2, dataset3
from repro.experiments.runner import (
    SeededPopulationResult,
    run_seeded_populations,
)
from repro.sim.evaluator import DEFAULT_KERNEL_METHOD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.context import RunContext

__all__ = [
    "PAPER_CHECKPOINTS",
    "FigureResult",
    "Figure5Result",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
]

#: The paper's checkpoint generations per figure.
PAPER_CHECKPOINTS: dict[str, tuple[int, ...]] = {
    "figure3": (100, 1_000, 10_000, 100_000),
    "figure4": (1_000, 10_000, 100_000, 1_000_000),
    "figure6": (1_000, 10_000, 100_000, 1_000_000),
}


@dataclass(frozen=True)
class FigureResult:
    """Reproduction data for one multi-subplot Pareto-front figure.

    Attributes
    ----------
    name:
        "figure3" / "figure4" / "figure6".
    result:
        The underlying seeded-population run.
    paper_checkpoints:
        The paper's generation counts, aligned with
        ``result.config.checkpoints`` (the scaled counts actually run).
    """

    name: str
    result: SeededPopulationResult
    paper_checkpoints: tuple[int, ...]

    @property
    def checkpoints(self) -> tuple[int, ...]:
        """The scaled checkpoint generations that were run."""
        return self.result.config.checkpoints

    def subplot(self, checkpoint_index: int) -> dict[str, ParetoFront]:
        """Fronts of every population at the i-th checkpoint (one subplot)."""
        if not (0 <= checkpoint_index < len(self.checkpoints)):
            raise ExperimentError(
                f"checkpoint index {checkpoint_index} out of range "
                f"[0, {len(self.checkpoints)})"
            )
        return self.result.fronts_at(self.checkpoints[checkpoint_index])

    def efficiency_regions(self) -> dict[str, EfficiencyRegion]:
        """Circled max-U/E region of each population's final front."""
        return {
            label: max_utility_per_energy_region(self.result.front(label))
            for label in self.result.histories
        }

    def render(self, plot: bool = False) -> str:
        """Text rendering of the whole figure (tables, optional plots)."""
        blocks: list[str] = [
            f"=== {self.name}: Pareto fronts of total energy consumed vs "
            f"total utility earned ({self.result.dataset_name}) ==="
        ]
        for i, (gen, paper_gen) in enumerate(
            zip(self.checkpoints, self.paper_checkpoints)
        ):
            fronts = self.subplot(i)
            blocks.append(
                f"-- subplot {i + 1}: through {gen} generations "
                f"(paper: {paper_gen:,} iterations) --"
            )
            blocks.append(format_front_summary(fronts))
            if plot:
                blocks.append(
                    ascii_scatter({k: f.points for k, f in fronts.items()})
                )
        return "\n".join(blocks)


def _run_figure(
    name: str,
    dataset: DatasetBundle,
    checkpoints: Optional[Sequence[int]],
    population_size: int,
    mutation_probability: float,
    base_seed: int,
    scale: Optional[float],
    workers: int = 0,
    transport: str = "auto",
    algorithm: str = "nsga2",
    kernel_method: str = DEFAULT_KERNEL_METHOD,
    obs: Optional["RunContext"] = None,
) -> FigureResult:
    paper = PAPER_CHECKPOINTS[name]
    if checkpoints is None:
        config = ExperimentConfig.for_paper_checkpoints(
            paper,
            scale=scale,
            population_size=population_size,
            mutation_probability=mutation_probability,
            base_seed=base_seed,
            algorithm=algorithm,
            kernel_method=kernel_method,
        )
    else:
        cps = tuple(checkpoints)
        config = ExperimentConfig(
            population_size=population_size,
            mutation_probability=mutation_probability,
            generations=cps[-1],
            checkpoints=cps,
            base_seed=base_seed,
            algorithm=algorithm,
            kernel_method=kernel_method,
        )
    if obs is not None and obs.enabled:
        obs = obs.bind(figure=name)
        with obs.span("figure.run", figure=name):
            result = run_seeded_populations(
                dataset, config, workers=workers, transport=transport, obs=obs
            )
    else:
        result = run_seeded_populations(
            dataset, config, workers=workers, transport=transport
        )
    return FigureResult(name=name, result=result, paper_checkpoints=paper)


def figure3(
    checkpoints: Optional[Sequence[int]] = None,
    population_size: int = 100,
    mutation_probability: float = 0.25,
    base_seed: int = 2013,
    scale: Optional[float] = None,
    dataset: Optional[DatasetBundle] = None,
    workers: int = 0,
    transport: str = "auto",
    algorithm: str = "nsga2",
    kernel_method: str = DEFAULT_KERNEL_METHOD,
    obs: Optional["RunContext"] = None,
) -> FigureResult:
    """Figure 3: the real historical data set (data set 1)."""
    ds = dataset if dataset is not None else dataset1(base_seed)
    return _run_figure(
        "figure3", ds, checkpoints, population_size,
        mutation_probability, base_seed, scale,
        workers=workers, transport=transport, algorithm=algorithm,
        kernel_method=kernel_method, obs=obs,
    )


def figure4(
    checkpoints: Optional[Sequence[int]] = None,
    population_size: int = 100,
    mutation_probability: float = 0.25,
    base_seed: int = 2013,
    scale: Optional[float] = None,
    dataset: Optional[DatasetBundle] = None,
    workers: int = 0,
    transport: str = "auto",
    algorithm: str = "nsga2",
    kernel_method: str = DEFAULT_KERNEL_METHOD,
    obs: Optional["RunContext"] = None,
) -> FigureResult:
    """Figure 4: the 1000-task synthetic data set (data set 2)."""
    ds = dataset if dataset is not None else dataset2(base_seed)
    return _run_figure(
        "figure4", ds, checkpoints, population_size,
        mutation_probability, base_seed, scale,
        workers=workers, transport=transport, algorithm=algorithm,
        kernel_method=kernel_method, obs=obs,
    )


def figure6(
    checkpoints: Optional[Sequence[int]] = None,
    population_size: int = 100,
    mutation_probability: float = 0.25,
    base_seed: int = 2013,
    scale: Optional[float] = None,
    dataset: Optional[DatasetBundle] = None,
    workers: int = 0,
    transport: str = "auto",
    algorithm: str = "nsga2",
    kernel_method: str = DEFAULT_KERNEL_METHOD,
    obs: Optional["RunContext"] = None,
) -> FigureResult:
    """Figure 6: the 4000-task synthetic data set (data set 3)."""
    ds = dataset if dataset is not None else dataset3(base_seed)
    return _run_figure(
        "figure6", ds, checkpoints, population_size,
        mutation_probability, base_seed, scale,
        workers=workers, transport=transport, algorithm=algorithm,
        kernel_method=kernel_method, obs=obs,
    )


# -- Figure 5 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure5Result:
    """Figure 5: locating the max utility-per-energy region.

    Attributes
    ----------
    front:
        Subplot A — the final front of the max-utility-per-energy
        seeded population.
    region:
        The circled region; ``region.ratios`` against
        ``front.utilities`` is subplot B, against ``front.energies``
        subplot C; the peak coordinates are the solid (utility) and
        dashed (energy) guide lines.
    """

    front: ParetoFront
    region: EfficiencyRegion

    @property
    def curve_vs_utility(self) -> np.ndarray:
        """Subplot B data: ``(F, 2)`` columns (utility, U/E)."""
        return np.column_stack([self.front.utilities, self.region.ratios])

    @property
    def curve_vs_energy(self) -> np.ndarray:
        """Subplot C data: ``(F, 2)`` columns (energy, U/E)."""
        return np.column_stack([self.front.energies, self.region.ratios])

    def render(self) -> str:
        """Text rendering of the three-subplot content."""
        rows = [
            ["peak utility-per-energy", f"{self.region.peak_ratio * 1e6:.3f} utility/MJ"],
            ["at utility (solid line)", f"{self.region.peak_utility:.2f}"],
            ["at energy (dashed line)", f"{self.region.peak_energy / 1e6:.4f} MJ"],
            ["region size", f"{self.region.region_size} of {self.front.size} points"],
        ]
        return format_table(
            ["quantity", "value"],
            rows,
            title="figure5: max utility-per-energy region "
            f"(front '{self.front.label}')",
        )


def figure5(
    figure4_result: Optional[FigureResult] = None,
    tolerance: float = 0.05,
    **figure4_kwargs,
) -> Figure5Result:
    """Figure 5: efficiency-region analysis of the Figure 4 front.

    Accepts an existing :func:`figure4` result (to avoid re-running) or
    runs one with *figure4_kwargs*.
    """
    fig4 = figure4_result if figure4_result is not None else figure4(**figure4_kwargs)
    front = fig4.result.front("max-utility-per-energy")
    region = max_utility_per_energy_region(front, tolerance=tolerance)
    return Figure5Result(front=front, region=region)
