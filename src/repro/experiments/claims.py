"""Machine-checkable paper claims.

The paper's Section VI makes qualitative claims about its figures; this
module turns each into a named, machine-checkable predicate over a
:class:`~repro.experiments.figures.FigureResult`, so any run — the
benchmark defaults, a paper-scale rerun, or a user's own data set —
can be audited with one call:

    results = verify_paper_claims(figure3(...))
    for r in results:
        print("PASS" if r.passed else "FAIL", r.claim, "-", r.detail)

Claims (each references its source sentence):

* ``fronts-improve`` — elitism: front hypervolume never regresses
  across checkpoints (implied by Algorithm 1's meta-population).
* ``min-energy-owns-low-end`` — "the 'min energy' population typically
  finds solutions that perform better with respect to energy
  consumption"; strengthened here because the min-energy seed is
  *provably* optimal.
* ``min-min-best-utility-early`` — "the 'min-min completion time'
  population typically finds solutions that perform better with
  respect to utility earned" (checked at the first checkpoint vs the
  random population).
* ``seeded-dominate-random-early`` — "In all cases, our seeded
  populations are finding solutions that dominate those found by the
  random population" (Figure 6).
* ``efficient-region-exists`` — "The circled region represents the
  solutions that earn the most utility per energy spent" with
  diminishing returns on its right (Figures 3-6).
* ``convergence-trend`` — "all the populations, even the all random
  initial population, start converging to very similar Pareto fronts":
  the random population's best-utility deficit versus min-min shrinks
  from the first to the last checkpoint.

The benchmark harness asserts these same predicates (via
``benchmarks/shape_checks.py``, which delegates here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.efficiency import (
    marginal_utility_per_energy,
    max_utility_per_energy_region,
)
from repro.analysis.indicators import hypervolume
from repro.errors import ExperimentError

__all__ = ["ClaimResult", "verify_paper_claims"]


@dataclass(frozen=True, slots=True)
class ClaimResult:
    """Outcome of checking one paper claim against a figure run."""

    claim: str
    passed: bool
    detail: str


def _claim_fronts_improve(fig) -> ClaimResult:
    all_pts = np.vstack(
        [s.front_points for h in fig.result.histories.values() for s in h.snapshots]
    )
    ref = (float(all_pts[:, 0].max() * 1.01), 0.0)
    worst_drop = 0.0
    offender = ""
    for label, history in fig.result.histories.items():
        hv = [hypervolume(s.front_points, ref) for s in history.snapshots]
        for a, b in zip(hv, hv[1:]):
            if b < a - 1e-9 and a - b > worst_drop:
                worst_drop = a - b
                offender = label
    passed = worst_drop == 0.0
    return ClaimResult(
        claim="fronts-improve",
        passed=passed,
        detail=(
            "hypervolume non-decreasing for every population"
            if passed
            else f"{offender}: hypervolume regressed by {worst_drop:.3g}"
        ),
    )


def _claim_min_energy_low_end(fig) -> ClaimResult:
    e_min = fig.result.front("min-energy").energy_range[0]
    worst = min(
        fig.result.front(label).energy_range[0] for label in fig.result.histories
    )
    passed = worst >= e_min - 1e-6
    return ClaimResult(
        claim="min-energy-owns-low-end",
        passed=passed,
        detail=(
            f"min-energy reaches {e_min / 1e6:.4f} MJ; no population is lower"
            if passed
            else f"some population undercuts min-energy ({worst / 1e6:.4f} MJ "
            f"< {e_min / 1e6:.4f} MJ) — impossible if the seed is optimal"
        ),
    )


def _claim_min_min_utility_early(fig) -> ClaimResult:
    first = fig.checkpoints[0]
    u_mm = fig.result.front("min-min-completion-time", first).utility_range[1]
    u_rd = fig.result.front("random", first).utility_range[1]
    passed = u_mm > u_rd
    return ClaimResult(
        claim="min-min-best-utility-early",
        passed=passed,
        detail=f"at generation {first}: min-min {u_mm:.1f} vs random {u_rd:.1f}",
    )


def _claim_seeded_dominate_random(fig, min_fraction: float = 0.5) -> ClaimResult:
    first = fig.checkpoints[0]
    rand = fig.result.front("random", first)
    seeded = fig.result.front("min-energy", first)
    for label in ("min-min-completion-time", "max-utility",
                  "max-utility-per-energy"):
        seeded = seeded.merge(fig.result.front(label, first))
    frac = rand.fraction_dominated_by(seeded)
    return ClaimResult(
        claim="seeded-dominate-random-early",
        passed=frac >= min_fraction,
        detail=f"seeded fronts dominate {frac * 100:.0f}% of the random front "
        f"at generation {first} (threshold {min_fraction * 100:.0f}%)",
    )


def _claim_efficient_region(fig) -> ClaimResult:
    for label in fig.result.histories:
        front = fig.result.front(label)
        region = max_utility_per_energy_region(front)
        if region.region_size < 1:
            return ClaimResult(
                claim="efficient-region-exists",
                passed=False,
                detail=f"{label}: empty efficiency region",
            )
        if front.size >= 3 and 0 < region.peak_index < front.size - 1:
            marg = marginal_utility_per_energy(front)
            left = marg[: region.peak_index]
            right = marg[region.peak_index:]
            fl = left[np.isfinite(left)]
            fr = right[np.isfinite(right)]
            if fl.size and fr.size and fl.mean() < fr.mean():
                return ClaimResult(
                    claim="efficient-region-exists",
                    passed=False,
                    detail=f"{label}: marginal utility rises to the right of "
                    "the peak (no diminishing returns)",
                )
    return ClaimResult(
        claim="efficient-region-exists",
        passed=True,
        detail="every front has a max-U/E region with diminishing returns "
        "to its right",
    )


def _claim_convergence_trend(fig) -> ClaimResult:
    first, last = fig.checkpoints[0], fig.checkpoints[-1]

    def deficit(gen: int) -> float:
        u_mm = fig.result.front("min-min-completion-time", gen).utility_range[1]
        u_rd = fig.result.front("random", gen).utility_range[1]
        return u_mm - u_rd

    d0, d1 = deficit(first), deficit(last)
    return ClaimResult(
        claim="convergence-trend",
        passed=d1 <= d0,
        detail=f"random's utility deficit vs min-min: {d0:.1f} at gen {first} "
        f"-> {d1:.1f} at gen {last}",
    )


def verify_paper_claims(
    figure_result,
    dominate_fraction: float = 0.5,
    include_convergence: bool = True,
) -> list[ClaimResult]:
    """Check every applicable paper claim against *figure_result*.

    Parameters
    ----------
    figure_result:
        A :class:`~repro.experiments.figures.FigureResult` whose run
        includes the five standard populations.
    dominate_fraction:
        Threshold for ``seeded-dominate-random-early``.
    include_convergence:
        The convergence-trend claim needs enough generations to be
        meaningful; disable for single-checkpoint runs.
    """
    required = {"min-energy", "min-min-completion-time", "random"}
    if not required <= set(figure_result.result.histories):
        raise ExperimentError(
            "claims need at least the min-energy, min-min, and random "
            f"populations; run has {sorted(figure_result.result.histories)}"
        )
    results = [
        _claim_fronts_improve(figure_result),
        _claim_min_energy_low_end(figure_result),
        _claim_min_min_utility_early(figure_result),
        _claim_efficient_region(figure_result),
    ]
    if {"max-utility", "max-utility-per-energy"} <= set(
        figure_result.result.histories
    ):
        results.insert(
            3, _claim_seeded_dominate_random(figure_result, dominate_fraction)
        )
    if include_convergence and len(figure_result.checkpoints) > 1:
        results.append(_claim_convergence_trend(figure_result))
    return results
