"""Experiment definitions and reproduction drivers (paper Section V-VI).

* :mod:`repro.experiments.datasets` — data sets 1, 2, and 3 exactly as
  Section V-A specifies them (machine breakups, task counts, windows).
* :mod:`repro.experiments.runner` — run the five seeded populations
  (four heuristic seeds + all-random) with any checkpointed portfolio
  algorithm (NSGA-II by default).
* :mod:`repro.experiments.portfolio` — head-to-head runs of every
  registered algorithm on one dataset, scored against the exact
  contention-free baseline.
* :mod:`repro.experiments.figures` — one driver per paper figure.
* :mod:`repro.experiments.tables` — Tables I, II, III.
* :mod:`repro.experiments.io` — result serialization.
"""

from repro.experiments.config import ExperimentConfig, scaled_checkpoints
from repro.experiments.datasets import (
    DatasetBundle,
    TABLE3_MACHINE_COUNTS,
    dataset1,
    dataset2,
    dataset3,
)
from repro.experiments.runner import (
    PopulationFailure,
    RetryPolicy,
    SeededPopulationResult,
    run_seeded_populations,
)
from repro.experiments.figures import (
    FigureResult,
    figure3,
    figure4,
    figure5,
    figure6,
)
from repro.experiments.claims import ClaimResult, verify_paper_claims
from repro.experiments.portfolio import PortfolioResult, run_portfolio
from repro.experiments.reproduce import reproduce_all
from repro.experiments.sweep import LoadPoint, offered_load, oversubscription_sweep
from repro.experiments.repetitions import (
    HypervolumeStats,
    RepetitionResult,
    run_repetitions,
)
from repro.experiments.tables import table1, table2, table3

__all__ = [
    "ExperimentConfig",
    "scaled_checkpoints",
    "DatasetBundle",
    "TABLE3_MACHINE_COUNTS",
    "dataset1",
    "dataset2",
    "dataset3",
    "PopulationFailure",
    "RetryPolicy",
    "SeededPopulationResult",
    "run_seeded_populations",
    "FigureResult",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table1",
    "table2",
    "table3",
    "HypervolumeStats",
    "RepetitionResult",
    "run_repetitions",
    "LoadPoint",
    "offered_load",
    "oversubscription_sweep",
    "reproduce_all",
    "ClaimResult",
    "verify_paper_claims",
    "PortfolioResult",
    "run_portfolio",
]
