"""Durable, resumable experiment grids (the ``repro grid`` verbs).

This module binds the passive machinery of
:mod:`repro.parallel.manifest` (the append-only lifecycle journal) and
:mod:`repro.parallel.resultstore` (content-addressed per-cell
artifacts) to the actual experiment drivers:

* :class:`GridBinding` — what a driver holds while running a journaled
  grid: the manifest, the store, the reconciliation pass that turns a
  half-finished journal back into "these cells are verified done, skip
  them; these were in flight when the coordinator died, re-drive them",
  and the hook bundle wired into the engine's supervision layer.
* :func:`grid_status` / :func:`render_status` — the ``repro grid
  status`` view: lifecycle counts, quarantined cells with their crash
  evidence, journal-damage indicators.
* :func:`resume_grid` — the ``repro grid resume`` workflow: sweep dead
  coordinators' shared-memory segments, replay the manifest, rebuild
  the dataset from the journaled spec, **verify its fingerprint**
  (config drift between incarnations is refused, not absorbed), and
  re-enter the recorded driver to finish exactly the cells that never
  completed.  Because every cell's RNG stream is derived from the
  config seed — never from execution order, worker count, or wall
  clock — a resumed grid's results are byte-identical to an
  uninterrupted run's (chaos-drill tested).

Determinism contract: the grid fingerprint covers only
result-determining inputs (config knobs, algorithm, seed policy,
dataset content).  Execution parameters — worker count, transport,
retry policy — are deliberately excluded: they may differ between
incarnations without invalidating completed cells.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Hashable, Optional, Sequence, Union

import numpy as np

from repro.errors import (
    ExperimentError,
    GridManifestError,
    classify_failure,
)
from repro.parallel.manifest import (
    MANIFEST_NAME,
    GridManifest,
    WorkerJournal,
)
from repro.parallel.resultstore import (
    ResultStore,
    dataset_fingerprint,
    grid_fingerprint,
)
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.datasets import DatasetBundle
    from repro.obs.context import RunContext

__all__ = [
    "GridBinding",
    "GridStatus",
    "grid_status",
    "render_status",
    "resume_grid",
    "front_to_payload",
    "front_from_payload",
]

#: Crashes (on >= 2 distinct workers) before a cell is quarantined.
DEFAULT_QUARANTINE_AFTER = 3

#: How long a resuming coordinator waits for a still-live lease holder
#: (a straggler worker of a dead coordinator, finishing its last cell)
#: to exit before refusing to take the grid over.
DEFAULT_SETTLE_SECONDS = 30.0


# -- front payload round-trip -------------------------------------------------


def front_to_payload(front: FloatArray) -> dict:
    """JSON-ready payload of one final front.

    Float64 → shortest-repr JSON → float64 is exact, so a front read
    back from the store is byte-identical to the one written — the
    foundation of the resumed-equals-uninterrupted guarantee.
    """
    arr = np.asarray(front, dtype=np.float64)
    return {"front": arr.tolist(), "shape": list(arr.shape)}


def front_from_payload(payload: dict) -> FloatArray:
    """Rebuild a front array from :func:`front_to_payload` output."""
    return np.asarray(payload["front"], dtype=np.float64).reshape(
        payload["shape"]
    )


# -- the driver-side binding --------------------------------------------------


@dataclass
class GridBinding:
    """A running driver's handle on its durable grid.

    Construct via :meth:`open_or_create`; afterwards ``preloaded``
    holds the verified-complete cells' payloads (skip them),
    ``pending_keys`` filters the work list, ``run_kwargs`` /
    ``worker_journal`` wire the engine's supervision hooks, and
    ``record_done`` persists each fresh result.
    """

    manifest: GridManifest
    store: ResultStore
    quarantine_after: int = DEFAULT_QUARANTINE_AFTER
    preloaded: dict = field(default_factory=dict)
    quarantined_now: list = field(default_factory=list)

    @classmethod
    def open_or_create(
        cls,
        grid_dir: Union[str, Path],
        *,
        spec: dict,
        dataset: "DatasetBundle",
        keys: Sequence[Hashable],
        obs: Optional["RunContext"] = None,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        settle_seconds: float = DEFAULT_SETTLE_SECONDS,
    ) -> "GridBinding":
        """Load a matching manifest at *grid_dir*, or start a fresh one.

        An existing manifest is adopted only when its fingerprint —
        :func:`~repro.parallel.resultstore.grid_fingerprint` over
        *spec* and the dataset's content — matches the configuration
        being driven; otherwise it is stale (config drift) and is
        rotated aside, so cells computed under different physics are
        invalidated, never silently reused.
        """
        grid_dir = Path(grid_dir)
        ds_fp = dataset_fingerprint(dataset)
        fingerprint = grid_fingerprint(spec, ds_fp)
        manifest: Optional[GridManifest] = None
        if (grid_dir / MANIFEST_NAME).exists():
            try:
                loaded = GridManifest.load(grid_dir, obs=obs)
            except GridManifestError:
                loaded = None  # unreadable header: start over below
            if loaded is not None and loaded.fingerprint == fingerprint:
                manifest = loaded
                manifest.note_resumed()
        if manifest is None:
            manifest = GridManifest.create(
                grid_dir,
                spec=spec,
                fingerprint=fingerprint,
                cells=list(keys),
                obs=obs,
            )
        binding = cls(
            manifest=manifest,
            store=ResultStore(grid_dir / "results", fingerprint),
            quarantine_after=quarantine_after,
        )
        binding._reconcile(obs=obs, settle_seconds=settle_seconds)
        return binding

    def _reconcile(
        self,
        *,
        obs: Optional["RunContext"] = None,
        settle_seconds: float = DEFAULT_SETTLE_SECONDS,
    ) -> None:
        """Turn the replayed journal into a runnable work list.

        ``done`` cells are verified against the store under the
        checksum journaled at completion — a missing, corrupt, drifted,
        or checksum-mismatched artifact re-queues the cell instead of
        reusing it.  ``leased``/``running`` cells whose holder is gone
        are abandoned leases from a dead incarnation: re-queued (after
        giving a still-live straggler up to *settle_seconds* to exit).
        ``failed`` cells were mid-retry: re-queued.  ``quarantined``
        cells stay parked.
        """
        manifest = self.manifest
        skipped = 0
        for key in manifest.cells_in("done"):
            payload = self.store.get(
                key, expected_checksum=manifest.cells[key].checksum
            )
            if payload is None:
                manifest.requeue(key)
                if obs is not None and obs.enabled:
                    obs.event(
                        "grid.cell.invalidated", level="warning",
                        cell=key, reason="result failed verification",
                    )
            else:
                self.preloaded[key] = payload
                skipped += 1
        deadline = time.time() + settle_seconds
        for key in manifest.cells_in("leased", "running"):
            if manifest.cells[key].owner == os.getpid():
                # Journaled by this very pid: an earlier incarnation in
                # this process (or a recycled pid).  We *are* the only
                # coordinator here, and we are not driving that cell —
                # the lease is abandoned by definition.
                manifest.requeue(key)
                continue
            while not manifest.cells[key].lease_is_stale():
                if time.time() >= deadline:
                    status = manifest.cells[key]
                    raise GridManifestError(
                        f"cell {key!r} is {status.state} under live process "
                        f"{status.owner} — is another coordinator still "
                        "driving this grid?"
                    )
                time.sleep(0.2)
            manifest.requeue(key)
        for key in manifest.cells_in("failed"):
            manifest.requeue(key)
        if obs is not None and obs.enabled and skipped:
            obs.counter(
                "grid_cells_skipped_total",
                help="verified-complete cells skipped on resume",
            ).inc(skipped)

    # -- work-list and hook wiring ----------------------------------------

    def pending_keys(self, keys: Sequence[Hashable]) -> list:
        """The subset of *keys* that still needs driving, in order."""
        terminal = ("done", "quarantined")
        return [
            key
            for key in keys
            if key not in self.preloaded
            and self.manifest.cells[key].state not in terminal
        ]

    def quarantined_keys(self) -> list:
        """Cells currently parked in quarantine."""
        return self.manifest.cells_in("quarantined")

    def worker_journal(self) -> WorkerJournal:
        """The heartbeat appender for the engine's pool initializer."""
        return self.manifest.worker_journal()

    def run_kwargs(self) -> dict:
        """Supervision hooks for :meth:`ParallelEngine.run`."""
        manifest = self.manifest

        def on_submit(key: Hashable, attempt: int) -> None:
            manifest.mark_leased(key, attempt)

        def on_failure(
            key: Hashable,
            attempt: int,
            exc: BaseException,
            owner: Optional[int],
        ) -> None:
            manifest.mark_failed(
                key,
                attempt,
                kind=classify_failure(exc),
                error=f"{type(exc).__name__}: {exc}",
                owner=owner,
            )

        def on_quarantine(
            key: Hashable, attempt: int, owners: frozenset
        ) -> None:
            manifest.mark_quarantined(key, attempt, owners)
            self.quarantined_now.append(key)

        return {
            "on_submit": on_submit,
            "on_failure": on_failure,
            "on_quarantine": on_quarantine,
            "quarantine_after": self.quarantine_after,
            "poll_running": manifest.poll_running,
        }

    # -- serial-path journaling --------------------------------------------

    def mark_running(self, key: Hashable, attempt: int = 1) -> None:
        """Journal an in-process execution start (serial driver path)."""
        self.manifest.mark_running(key, attempt)

    def mark_failed(
        self, key: Hashable, attempt: int, exc: BaseException
    ) -> None:
        """Journal a serial-path failure with its taxonomy kind."""
        self.manifest.mark_failed(
            key,
            attempt,
            kind=classify_failure(exc),
            error=f"{type(exc).__name__}: {exc}",
        )

    def record_done(self, key: Hashable, payload: Any) -> None:
        """Persist *payload* and journal the ``done`` transition."""
        checksum = self.store.put(key, payload)
        status = self.manifest.cells.get(key)
        attempt = status.attempt if status is not None and status.attempt else 1
        self.manifest.mark_done(key, attempt, checksum)


# -- status ------------------------------------------------------------------


@dataclass(frozen=True)
class GridStatus:
    """The ``repro grid status`` snapshot of one grid directory."""

    grid_id: str
    driver: str
    fingerprint: str
    counts: dict
    quarantined: tuple
    torn_tail: bool
    damaged_records: int

    @property
    def total(self) -> int:
        """Cells enumerated by the manifest."""
        return sum(self.counts.values())

    @property
    def complete(self) -> bool:
        """Whether every cell reached ``done``."""
        return self.counts.get("done", 0) == self.total


def grid_status(
    grid_dir: Union[str, Path], obs: Optional["RunContext"] = None
) -> GridStatus:
    """Replay *grid_dir*'s manifest into a :class:`GridStatus`."""
    manifest = GridManifest.load(grid_dir, obs=obs)
    quarantined = []
    for key in manifest.cells_in("quarantined"):
        status = manifest.cells[key]
        quarantined.append(
            {
                "cell": key,
                "attempt": status.attempt,
                "crashes": len(
                    [f for f in status.failures
                     if f.get("kind") == "worker-death"]
                ),
                "distinct_workers": len(status.crash_owners),
                "failures": list(status.failures),
            }
        )
    return GridStatus(
        grid_id=manifest.grid_id,
        driver=str(manifest.spec.get("driver", "?")),
        fingerprint=manifest.fingerprint,
        counts=manifest.status_counts(),
        quarantined=tuple(quarantined),
        torn_tail=manifest.torn_tail,
        damaged_records=manifest.damaged_records,
    )


def render_status(status: GridStatus) -> str:
    """*status* as the aligned text block the CLI prints."""
    lines = [
        f"grid {status.grid_id} ({status.driver}) — "
        f"fingerprint {status.fingerprint}",
        f"cells: {status.total}",
    ]
    for state, count in status.counts.items():
        if count:
            lines.append(f"  {state:<12} {count}")
    if status.torn_tail:
        lines.append("journal: torn tail record repaired on load")
    if status.damaged_records:
        lines.append(
            f"journal: {status.damaged_records} damaged record(s) skipped"
        )
    for q in status.quarantined:
        lines.append(
            f"quarantined cell {q['cell']!r}: {q['crashes']} worker "
            f"crash(es) across {q['distinct_workers']} distinct worker(s) — "
            "fix the input or re-drive with 'grid retry-quarantined'"
        )
    if status.complete:
        lines.append("grid is complete")
    return "\n".join(lines)


# -- resume ------------------------------------------------------------------


def resume_grid(
    grid_dir: Union[str, Path],
    *,
    workers: int = 0,
    transport: str = "auto",
    retry=None,
    retry_quarantined: bool = False,
    obs: Optional["RunContext"] = None,
):
    """Finish an interrupted grid: the ``repro grid resume`` workflow.

    Sweeps shared-memory segments stranded by dead coordinators,
    replays the manifest, re-queues quarantined cells when
    *retry_quarantined* is set, rebuilds the dataset and config from
    the journaled spec, and re-enters the recorded driver — which
    skips verified-done cells and re-drives the rest.  Returns the
    driver's normal result object (:class:`~repro.experiments.\
repetitions.RepetitionResult`, :class:`~repro.experiments.runner.\
SeededPopulationResult`, or :class:`~repro.experiments.portfolio.\
PortfolioResult`).

    Execution parameters (*workers*, *transport*, *retry*) are the
    resuming incarnation's choice — they are not part of the grid's
    identity and may differ from the original run without affecting
    results.
    """
    from repro.experiments.datasets import build_dataset
    from repro.parallel import shm as shm_transport

    swept = shm_transport.janitor_sweep()
    if obs is not None and obs.enabled and swept:
        obs.event(
            "grid.janitor_sweep", level="warning",
            segments=list(swept),
        )
    manifest = GridManifest.load(grid_dir, obs=obs)
    spec = manifest.spec
    driver = spec.get("driver")
    if driver not in ("repetitions", "seeded-populations", "portfolio"):
        raise GridManifestError(
            f"manifest records unknown driver {driver!r}; cannot re-drive"
        )
    if retry_quarantined:
        for key in manifest.cells_in("quarantined"):
            manifest.requeue(key)
    dataset_spec = spec.get("dataset", {})
    dataset = build_dataset(
        dataset_spec.get("name", ""), seed=dataset_spec.get("seed", 2013)
    )
    expected = grid_fingerprint(spec, dataset_fingerprint(dataset))
    if expected != manifest.fingerprint:
        raise GridManifestError(
            f"rebuilt dataset/config fingerprint {expected} does not match "
            f"the journaled {manifest.fingerprint} — the code or data "
            "generating this grid drifted since it was started; results "
            "would not be comparable.  Start a fresh grid directory."
        )

    if driver == "repetitions":
        from repro.experiments.repetitions import run_repetitions

        return run_repetitions(
            dataset,
            repetitions=spec["repetitions"],
            generations=spec["generations"],
            population_size=spec["population_size"],
            mutation_probability=spec["mutation_probability"],
            seed_label=spec["seed_label"],
            base_seed=spec["base_seed"],
            workers=workers,
            transport=transport,
            retry=retry,
            algorithm=spec.get("algorithm", "nsga2"),
            grid_dir=grid_dir,
            obs=obs,
        )
    if driver == "seeded-populations":
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_seeded_populations

        return run_seeded_populations(
            dataset,
            ExperimentConfig.from_spec(spec["config"]),
            labels=list(spec["labels"]),
            workers=workers,
            transport=transport,
            retry=retry,
            grid_dir=grid_dir,
            resume=True,
            obs=obs,
        )
    if driver == "portfolio":
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.portfolio import run_portfolio

        return run_portfolio(
            dataset,
            ExperimentConfig.from_spec(spec["config"]),
            algorithms=list(spec["algorithms"]),
            exact_epsilon=spec.get("exact_epsilon"),
            grid_dir=grid_dir,
            obs=obs,
        )
    raise AssertionError(f"unreachable driver {driver!r}")
