"""Reproduction of the paper's Tables I, II, and III."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.data.historical import MACHINE_NAMES, PROGRAM_NAMES
from repro.experiments.datasets import TABLE3_MACHINE_COUNTS

__all__ = ["table1", "table2", "table3", "render_table1", "render_table2", "render_table3"]


def table1() -> tuple[str, ...]:
    """Table I — machines (designated by CPU) used in the benchmark."""
    return MACHINE_NAMES


def table2() -> tuple[str, ...]:
    """Table II — programs used in the benchmark."""
    return PROGRAM_NAMES


def table3() -> tuple[tuple[str, int], ...]:
    """Table III — breakup of machines to machine types (name, count)."""
    return TABLE3_MACHINE_COUNTS


def render_table1() -> str:
    """Table I as text."""
    return format_table(
        ["machine (designated by CPU)"],
        [[name] for name in table1()],
        title="Table I: machines used in benchmark",
    )


def render_table2() -> str:
    """Table II as text."""
    return format_table(
        ["program"],
        [[name] for name in table2()],
        title="Table II: programs used in benchmark",
    )


def render_table3() -> str:
    """Table III as text, with the 30-machine total row."""
    rows = [[name, count] for name, count in table3()]
    rows.append(["TOTAL", sum(c for _, c in table3())])
    return format_table(
        ["machine type", "number of machines"],
        rows,
        title="Table III: breakup of machines to machine types",
    )
