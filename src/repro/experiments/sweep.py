"""Parameter sweeps over workload intensity.

The paper fixes three (task count, window) combinations; this module
generalizes into a sweep over **oversubscription** — offered load
relative to capacity — exposing how the utility/energy trade-off's
character depends on load:

* under light load every allocation completes everything promptly, so
  the front is short and flat (energy is the only real lever);
* past saturation, queueing makes utility decay bite, the front
  stretches, and the efficient region moves.

:func:`oversubscription_sweep` reuses one system across traces of
growing task count and reports, per load point, the optimized front's
utility fraction (earned / ideal), energy per task at the efficient
point, and front extent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from repro.analysis.efficiency import max_utility_per_energy_region
from repro.analysis.pareto_front import ParetoFront
from repro.core.algorithm import AlgorithmConfig
from repro.core.nsga2 import NSGA2
from repro.errors import ExperimentError
from repro.heuristics import MinMinCompletionTime
from repro.model.system import SystemModel
from repro.rng import derive_seed
from repro.sim.evaluator import DEFAULT_KERNEL_METHOD, ScheduleEvaluator
from repro.workload.generator import WorkloadGenerator

__all__ = ["LoadPoint", "oversubscription_sweep", "offered_load"]


@dataclass(frozen=True)
class LoadPoint:
    """Sweep outcome at one task count.

    Attributes
    ----------
    num_tasks:
        Trace size.
    offered_load:
        Mean offered work (Σ mean ETC) divided by capacity
        (machines × window) — > 1 means oversubscribed.
    utility_fraction:
        Best front utility divided by the ideal (every task at max
        priority).
    energy_per_task_at_peak:
        Energy per task (J) at the max-U/E front point.
    front:
        The optimized Pareto front.
    """

    num_tasks: int
    offered_load: float
    utility_fraction: float
    energy_per_task_at_peak: float
    front: ParetoFront


def offered_load(system: SystemModel, num_tasks: int, window: float) -> float:
    """Offered work / capacity for a uniform task mix.

    Mean work per task is the grand mean of feasible ETC entries;
    capacity is ``num_machines × window`` machine-seconds.
    """
    etc = system.etc.values[system.etc.feasible]
    mean_work = float(etc.mean())
    return num_tasks * mean_work / (system.num_machines * window)


def oversubscription_sweep(
    system: SystemModel,
    window: float,
    task_counts: Sequence[int],
    generations: int = 60,
    population_size: int = 40,
    base_seed: int = 2013,
    kernel_method: str = DEFAULT_KERNEL_METHOD,
) -> list[LoadPoint]:
    """Sweep trace sizes over one system (see module docstring).

    Each load point gets its own trace (derived seed), a min-min-seeded
    NSGA-II run, and a summarized front.
    """
    if not task_counts:
        raise ExperimentError("at least one task count is required")
    if window <= 0:
        raise ExperimentError(f"window must be positive, got {window}")
    points: list[LoadPoint] = []
    generator = WorkloadGenerator.uniform_for(system.num_task_types)
    for count in task_counts:
        if count < 1:
            raise ExperimentError(f"task count must be >= 1, got {count}")
        trace = generator.generate(
            count, window, seed=derive_seed(base_seed, "sweep", count)
        )
        evaluator = ScheduleEvaluator(system, trace, check_feasibility=False,
                                      kernel_method=kernel_method)
        seed_alloc = MinMinCompletionTime().build(system, trace)
        ga = NSGA2(
            evaluator,
            AlgorithmConfig(population_size=population_size),
            seeds=[seed_alloc],
            rng=derive_seed(base_seed, "sweep-ga", count),
        )
        history = ga.run(generations)
        front = ParetoFront(
            points=history.final.front_points, label=f"{count}-tasks"
        )
        ideal = evaluator.tuf_table.utility_upper_bound(trace.task_types)
        region = max_utility_per_energy_region(front)
        points.append(
            LoadPoint(
                num_tasks=count,
                offered_load=offered_load(system, count, window),
                utility_fraction=float(front.utility_range[1]) / ideal,
                energy_per_task_at_peak=region.peak_energy / count,
                front=front,
            )
        )
    return points
