"""Head-to-head portfolio runs: every registered algorithm, one dataset.

The portfolio driver answers "which optimizer should drive this
trade-off analysis?" empirically: it runs each registered algorithm
(NSGA-II, steady-state NSGA-II, SPEA2, MOEA/D, ε-archive NSGA-II —
see :mod:`repro.core.registry`) over the *same* (system, trace) with
the same budget and seeding, then scores the resulting fronts with the
shared quality indicators and, optionally, with distance-to-optimal
against the exact contention-free baseline of :mod:`repro.exact`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.analysis.portfolio import PortfolioComparison, compare_portfolio
from repro.core.algorithm import RunHistory
from repro.core.registry import available_algorithms, make_algorithm
from repro.errors import ExperimentError
from repro.exact.baselines import ExactFront, exact_energy_utility_front
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import DatasetBundle
from repro.heuristics import SEEDING_HEURISTICS
from repro.rng import derive_seed
from repro.sim.evaluator import ScheduleEvaluator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.context import RunContext

__all__ = ["PortfolioResult", "run_portfolio"]


@dataclass(frozen=True)
class PortfolioResult:
    """Outcome of one portfolio run.

    Attributes
    ----------
    dataset_name:
        The dataset every algorithm ran on.
    config:
        The shared experiment configuration (its ``algorithm`` field is
        ignored here — the portfolio supplies the names).
    histories:
        Algorithm name → full :class:`RunHistory` of its run.
    comparison:
        Indicator scores of every final front (see
        :func:`repro.analysis.portfolio.compare_portfolio`).
    exact:
        The exact baseline used for the distance-to-optimal columns, or
        ``None`` when disabled.
    """

    dataset_name: str
    config: ExperimentConfig
    histories: Mapping[str, RunHistory]
    comparison: PortfolioComparison
    exact: Optional[ExactFront] = None

    def render(self) -> str:
        """The comparison as an aligned text table."""
        return self.comparison.render()


def run_portfolio(
    dataset: DatasetBundle,
    config: ExperimentConfig,
    algorithms: Optional[Sequence[str]] = None,
    *,
    exact_epsilon: Optional[float] = 0.05,
    grid_dir: Optional[str] = None,
    obs: Optional["RunContext"] = None,
) -> PortfolioResult:
    """Run every algorithm in *algorithms* over *dataset* and score them.

    Parameters
    ----------
    dataset:
        The (system, trace) bundle.
    config:
        Shared budget and knobs (population size, generations,
        mutation probability, base seed).  Each algorithm gets its own
        RNG stream derived from ``(base_seed, dataset, name)`` — runs
        are deterministic and independent of portfolio order.
    algorithms:
        Registry names to run; default: every registered algorithm.
    exact_epsilon:
        ε-thinning resolution for the exact contention-free baseline
        (relative utility error bound — see
        :func:`repro.exact.exact_energy_utility_front`).  ``None``
        skips the exact baseline entirely, dropping the
        distance-to-optimal columns.
    grid_dir:
        Optional durable grid directory (see
        :mod:`repro.parallel.manifest`).  Each algorithm's run becomes
        a journaled cell whose completed history is persisted; rerunning
        with the same *grid_dir* skips finished algorithms and re-drives
        only the rest (``repro-analyze grid resume`` does this after a
        crash).  ``None`` keeps the zero-overhead in-memory path.
    obs:
        Optional run context; each algorithm's run records its usual
        telemetry under its own label.

    Every algorithm starts from the same seeds: all four heuristic
    allocations (the strongest available warm start) plus random
    fill-up to the population size, mirroring the paper's seeded
    populations.
    """
    names = list(algorithms) if algorithms is not None else list(
        available_algorithms()
    )
    if not names:
        raise ExperimentError("portfolio needs at least one algorithm")
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ExperimentError(f"duplicate portfolio algorithms: {dupes}")

    if obs is None:
        from repro.obs.context import NULL_CONTEXT

        obs = NULL_CONTEXT
    obs = obs.bind(dataset=dataset.name)

    binding = None
    todo = list(names)
    histories: dict[str, RunHistory] = {}
    if grid_dir is not None:
        # Function-level import: repro.experiments.io has an import
        # cycle with the runner result types.
        from repro.experiments.grid import GridBinding
        from repro.experiments.io import history_from_doc, history_to_doc

        grid_spec = {
            "driver": "portfolio",
            "dataset": {"name": dataset.name, "seed": dataset.seed},
            "config": config.to_spec(),
            "algorithms": list(names),
            "exact_epsilon": exact_epsilon,
        }
        binding = GridBinding.open_or_create(
            grid_dir, spec=grid_spec, dataset=dataset,
            keys=list(names), obs=obs,
        )
        for done_name, payload in binding.preloaded.items():
            histories[done_name] = history_from_doc(
                done_name, payload["history"]
            )
        todo = binding.pending_keys(names)

    seeds = [
        SEEDING_HEURISTICS[name]().build(dataset.system, dataset.trace)
        for name in sorted(SEEDING_HEURISTICS)
    ]

    for name in todo:
        evaluator = ScheduleEvaluator(
            dataset.system, dataset.trace, check_feasibility=False,
            kernel_method=config.kernel_method, obs=obs
        )
        engine = make_algorithm(
            name,
            evaluator,
            config.algorithm_config(),
            seeds=seeds,
            rng=derive_seed(config.base_seed, dataset.name, name),
            label=name,
            obs=obs,
        )
        if binding is not None:
            binding.mark_running(name)
        try:
            with obs.span("portfolio.run", algorithm=name):
                history = engine.run(
                    generations=config.generations,
                    checkpoints=list(config.checkpoints),
                )
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            if binding is not None:
                binding.mark_failed(name, 1, exc)
            raise
        histories[name] = history
        if binding is not None:
            binding.record_done(name, {"history": history_to_doc(history)})

    # Preloaded cells land first; restore portfolio order so tables and
    # comparisons read identically to an uninterrupted run.
    histories = {name: histories[name] for name in names if name in histories}
    fronts = {
        name: history.final.front_points
        for name, history in histories.items()
    }

    exact = None
    if exact_epsilon is not None:
        evaluator = ScheduleEvaluator(
            dataset.system, dataset.trace, check_feasibility=False,
            kernel_method=config.kernel_method
        )
        with obs.span("portfolio.exact_baseline"):
            exact = exact_energy_utility_front(evaluator, epsilon=exact_epsilon)

    comparison = compare_portfolio(fronts, exact=exact)
    return PortfolioResult(
        dataset_name=dataset.name,
        config=config,
        histories=histories,
        comparison=comparison,
        exact=exact,
    )
