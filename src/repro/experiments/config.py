"""Experiment configuration and generation-count scaling.

The paper runs the NSGA-II for up to 1,000,000 generations.  The
benchmark harness keeps the same checkpoint *structure* but scales the
counts so the suite completes on a laptop; setting the environment
variable ``REPRO_SCALE=1`` restores paper-scale runs (see DESIGN.md,
substitution table).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ExperimentError
from repro.sim.evaluator import DEFAULT_KERNEL_METHOD

__all__ = ["ExperimentConfig", "scaled_checkpoints", "default_scale"]

#: Scale applied to paper checkpoint generation counts when the caller
#: does not override it.  0.002 maps the paper's (100, 1e3, 1e4, 1e5)
#: onto (1, 2, 20, 200) — enough for convergence ordering to emerge
#: while keeping each figure bench in seconds.
_DEFAULT_SCALE = 0.002


def default_scale() -> float:
    """The generation scale: ``REPRO_SCALE`` env var or the default."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return _DEFAULT_SCALE
    try:
        value = float(raw)
    except ValueError as exc:
        raise ExperimentError(f"REPRO_SCALE={raw!r} is not a number") from exc
    if value <= 0:
        raise ExperimentError(f"REPRO_SCALE must be positive, got {value}")
    return value


def scaled_checkpoints(
    paper_checkpoints: Sequence[int], scale: Optional[float] = None
) -> list[int]:
    """Scale the paper's checkpoint generations, keeping them distinct.

    Each checkpoint becomes ``max(1, round(c × scale))``; duplicates
    collapsing after rounding are pushed apart so every paper
    checkpoint still has its own snapshot.
    """
    s = default_scale() if scale is None else scale
    if s <= 0:
        raise ExperimentError(f"scale must be positive, got {s}")
    out: list[int] = []
    for c in paper_checkpoints:
        if c <= 0:
            raise ExperimentError(f"paper checkpoint must be positive, got {c}")
        v = max(1, int(round(c * s)))
        if out and v <= out[-1]:
            v = out[-1] + 1
        out.append(v)
    return out


@dataclass(frozen=True, slots=True, kw_only=True)
class ExperimentConfig:
    """Parameters of one seeded-population experiment.

    Keyword-only: every field must be named at the call site.

    Attributes
    ----------
    population_size:
        Population size N (paper example: 100).
    mutation_probability:
        Per-offspring mutation probability.
    generations:
        Total generations (== last checkpoint).
    checkpoints:
        Snapshot generations (ascending, last == generations).
    base_seed:
        Master seed; per-population streams are derived from it.
    algorithm:
        Which optimizer runs the experiment — a name registered in
        :data:`repro.core.registry.ALGORITHMS` (``"nsga2"``,
        ``"nsga2-ss"``, ``"spea2"``, ``"moead"``, ``"eps-archive"``).
        A plain string so the choice travels to parallel pool workers
        inside pickled cell extras.
    kernel_method:
        Evaluation kernel for the schedule evaluator (``"fast"``,
        ``"reference"``, ``"batch"``, ``"batch-reference"``; see
        :class:`repro.sim.evaluator.ScheduleEvaluator`).  Part of the
        spec because batch modes differ from ``fast`` in the last
        float bits (different summation association), which can steer
        selection differently over many generations.
    """

    population_size: int = 100
    mutation_probability: float = 0.25
    generations: int = 200
    checkpoints: tuple[int, ...] = (1, 2, 20, 200)
    base_seed: int = 2013
    algorithm: str = "nsga2"
    kernel_method: str = DEFAULT_KERNEL_METHOD

    def __post_init__(self) -> None:
        if self.kernel_method not in (
            "fast", "reference", "batch", "batch-reference"
        ):
            raise ExperimentError(
                "kernel_method must be one of 'fast', 'reference', "
                f"'batch', 'batch-reference'; got {self.kernel_method!r}"
            )
        if self.population_size < 2:
            raise ExperimentError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if not self.checkpoints:
            raise ExperimentError("at least one checkpoint is required")
        if list(self.checkpoints) != sorted(set(self.checkpoints)):
            raise ExperimentError(
                f"checkpoints must be strictly increasing; got {self.checkpoints}"
            )
        if self.checkpoints[-1] != self.generations:
            raise ExperimentError(
                f"last checkpoint {self.checkpoints[-1]} must equal "
                f"generations {self.generations}"
            )

    def to_spec(self) -> dict:
        """JSON-ready dict of every result-determining knob.

        Used by the grid manifest's fingerprint: any field change —
        one more generation, a nudged mutation probability, a different
        optimizer — yields a different spec, hence a different grid
        fingerprint, hence stale cells that are invalidated instead of
        silently reused.
        """
        return {
            "population_size": self.population_size,
            "mutation_probability": self.mutation_probability,
            "generations": self.generations,
            "checkpoints": list(self.checkpoints),
            "base_seed": self.base_seed,
            "algorithm": self.algorithm,
            "kernel_method": self.kernel_method,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_spec` output (grid re-drive)."""
        return cls(
            population_size=spec["population_size"],
            mutation_probability=spec["mutation_probability"],
            generations=spec["generations"],
            checkpoints=tuple(spec["checkpoints"]),
            base_seed=spec["base_seed"],
            algorithm=spec.get("algorithm", "nsga2"),
            kernel_method=spec.get("kernel_method", "fast"),
        )

    def algorithm_config(self):
        """The engine-level config this experiment config implies.

        Collapses the knobs previously duplicated between
        ``NSGA2Config`` and driver kwargs into one
        :class:`~repro.core.algorithm.AlgorithmConfig`.
        """
        from repro.core.algorithm import AlgorithmConfig

        return AlgorithmConfig(
            population_size=self.population_size,
            mutation_probability=self.mutation_probability,
        )

    @classmethod
    def for_paper_checkpoints(
        cls,
        paper_checkpoints: Sequence[int],
        scale: Optional[float] = None,
        population_size: int = 100,
        mutation_probability: float = 0.25,
        base_seed: int = 2013,
        algorithm: str = "nsga2",
        kernel_method: str = DEFAULT_KERNEL_METHOD,
    ) -> "ExperimentConfig":
        """Config with scaled versions of the paper's checkpoints."""
        cps = scaled_checkpoints(paper_checkpoints, scale)
        return cls(
            population_size=population_size,
            mutation_probability=mutation_probability,
            generations=cps[-1],
            checkpoints=tuple(cps),
            base_seed=base_seed,
            algorithm=algorithm,
            kernel_method=kernel_method,
        )
