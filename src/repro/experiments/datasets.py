"""The three data sets of Section V-A.

* **Data set 1** — the real historical data: nine machine types
  (Table I), one machine each, five task types (Table II); 250 tasks
  arriving over 15 minutes.
* **Data sets 2 and 3** — synthetic expansions of the real data
  (Section III-D2): 25 new task types (30 total), four special-purpose
  machine types (13 total), 30 machines broken up per Table III.
  Set 2 simulates 1000 tasks over 15 minutes; set 3 simulates 4000
  tasks over one hour.

Each builder returns a :class:`DatasetBundle` carrying the system (with
time-utility functions attached), the trace, and the provenance seeds.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.data.historical import (
    HISTORICAL_EPC,
    HISTORICAL_ETC,
    MACHINE_NAMES,
    PROGRAM_NAMES,
)
from repro.data.special_purpose import (
    append_special_purpose_columns,
    choose_accelerated_sets,
)
from repro.data.synthetic import expand_matrix_pair
from repro.errors import ExperimentError
from repro.model.machine import Machine, MachineCategory, MachineType
from repro.model.matrices import EPCMatrix, ETCMatrix
from repro.model.system import SystemModel
from repro.model.task import TaskCategory, TaskType
from repro.rng import derive_seed
from repro.utility.presets import assign_presets
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import Trace

__all__ = [
    "DatasetBundle",
    "TABLE3_MACHINE_COUNTS",
    "DATASET_BUILDERS",
    "dataset1",
    "dataset2",
    "dataset3",
    "build_dataset",
    "build_expanded_system",
]

#: Table III — breakup of machines to machine types (name, count).
#: Four special-purpose machine types (one machine each) followed by
#: the nine general-purpose Table I types.
TABLE3_MACHINE_COUNTS: tuple[tuple[str, int], ...] = (
    ("Special-purpose machine A", 1),
    ("Special-purpose machine B", 1),
    ("Special-purpose machine C", 1),
    ("Special-purpose machine D", 1),
    ("AMD A8-3870K", 2),
    ("AMD FX-8150", 3),
    ("Intel Core i3 2120", 3),
    ("Intel Core i5 2400S", 3),
    ("Intel Core i5 2500K", 2),
    ("Intel Core i7 3960X", 4),
    ("Intel Core i7 3960X @ 4.2 GHz", 2),
    ("Intel Core i7 3770K", 5),
    ("Intel Core i7 3770K @ 4.3 GHz", 2),
)

#: Section V-A parameters.
NUM_NEW_TASK_TYPES = 25
NUM_SPECIAL_MACHINE_TYPES = 4
#: Group sizes "two to three for each special purpose machine type".
SPECIAL_GROUP_SIZES = (3, 2, 3, 2)


@dataclass(frozen=True)
class DatasetBundle:
    """A ready-to-optimize (system, trace) pair with provenance."""

    name: str
    system: SystemModel
    trace: Trace
    horizon_seconds: float
    seed: int

    @property
    def num_tasks(self) -> int:
        """Tasks in the trace."""
        return self.trace.num_tasks

    def share(self, transport: str = "auto", obs=None):
        """Publish this bundle's arrays for zero-copy parallel workers.

        Convenience for
        :func:`repro.parallel.descriptors.publish_dataset`; returns the
        owning :class:`~repro.parallel.descriptors.PublishedDataset`
        (use as a context manager, or ``close()`` it after the pool
        shuts down).
        """
        from repro.parallel.descriptors import publish_dataset

        return publish_dataset(self, transport=transport, obs=obs)


def dataset1(seed: int = 2013) -> DatasetBundle:
    """Data set 1: real 5×9 data, 250 tasks over 15 minutes."""
    horizon = 900.0
    system = SystemModel.from_matrices(
        etc_values=HISTORICAL_ETC.copy(),
        epc_values=HISTORICAL_EPC.copy(),
        machine_type_names=MACHINE_NAMES,
        task_type_names=PROGRAM_NAMES,
        machines_per_type=[1] * len(MACHINE_NAMES),
    )
    tufs = assign_presets(
        system.num_task_types, horizon, seed=derive_seed(seed, "ds1", "tuf")
    )
    system = system.with_utility_functions(tufs)
    trace = WorkloadGenerator.uniform_for(system.num_task_types).generate(
        250, horizon, seed=derive_seed(seed, "ds1", "trace")
    )
    return DatasetBundle(
        name="dataset1", system=system, trace=trace,
        horizon_seconds=horizon, seed=seed,
    )


def build_expanded_system(seed: int, horizon_seconds: float) -> SystemModel:
    """The 30-machine / 13-machine-type / 30-task-type system of sets 2-3.

    Pipeline: expand the real 5×9 ETC/EPC with 25 Gram-Charlier task
    types; pick four disjoint accelerated task-type groups (sizes
    3/2/3/2); append the special-purpose columns (ETC ÷ 10, EPC not
    divided); instantiate machines per Table III; attach TUF presets.
    """
    etc_exp, epc_exp = expand_matrix_pair(
        HISTORICAL_ETC,
        HISTORICAL_EPC,
        NUM_NEW_TASK_TYPES,
        seed=derive_seed(seed, "expand"),
    )
    num_task_types = etc_exp.values.shape[0]
    plan = choose_accelerated_sets(
        num_task_types,
        NUM_SPECIAL_MACHINE_TYPES,
        seed=derive_seed(seed, "special"),
        group_sizes=list(SPECIAL_GROUP_SIZES),
    )
    etc_vals, epc_vals, feasible = append_special_purpose_columns(
        etc_exp.values, epc_exp.values, plan
    )
    num_general = len(MACHINE_NAMES)

    # Machine types: Table III order is specials first, but the matrix
    # columns are generals first — build types in *column* order and
    # instantiate machines in Table III order via the name lookup.
    machine_types: list[MachineType] = []
    for j, name in enumerate(MACHINE_NAMES):
        machine_types.append(MachineType(name=name, index=j))
    for k in range(NUM_SPECIAL_MACHINE_TYPES):
        machine_types.append(
            MachineType(
                name=f"Special-purpose machine {chr(ord('A') + k)}",
                index=num_general + k,
                category=MachineCategory.SPECIAL_PURPOSE,
                supported_task_types=frozenset(plan.accelerated[k]),
            )
        )
    type_by_name = {mt.name: mt for mt in machine_types}

    machines: list[Machine] = []
    for name, count in TABLE3_MACHINE_COUNTS:
        if name not in type_by_name:
            raise ExperimentError(f"Table III names unknown machine type {name!r}")
        for i in range(count):
            machines.append(
                Machine(
                    name=f"{name}#{i}",
                    index=len(machines),
                    machine_type=type_by_name[name],
                )
            )

    task_types: list[TaskType] = []
    for i in range(num_task_types):
        name = (
            PROGRAM_NAMES[i]
            if i < len(PROGRAM_NAMES)
            else f"synthetic-task-{i}"
        )
        special_machine = plan.machine_for_task(i)
        if special_machine is None:
            task_types.append(TaskType(name=name, index=i))
        else:
            task_types.append(
                TaskType(
                    name=name,
                    index=i,
                    category=TaskCategory.SPECIAL_PURPOSE,
                    special_machine_type=num_general + special_machine,
                )
            )

    system = SystemModel(
        machine_types=tuple(machine_types),
        machines=tuple(machines),
        task_types=tuple(task_types),
        etc=ETCMatrix(etc_vals, feasible),
        epc=EPCMatrix(epc_vals, feasible),
    )
    tufs = assign_presets(
        num_task_types, horizon_seconds, seed=derive_seed(seed, "tuf")
    )
    return system.with_utility_functions(tufs)


def _expanded_dataset(
    name: str, num_tasks: int, horizon: float, seed: int
) -> DatasetBundle:
    # Sets 2 and 3 share the same synthetic system ("data sets 2 and 3
    # differ from one another by the number of tasks each set
    # simulates"); only the trace and the TUF horizon differ.
    system = build_expanded_system(derive_seed(seed, "expanded", "system"), horizon)
    trace = WorkloadGenerator.uniform_for(system.num_task_types).generate(
        num_tasks, horizon, seed=derive_seed(seed, name, "trace")
    )
    return DatasetBundle(
        name=name, system=system, trace=trace,
        horizon_seconds=horizon, seed=seed,
    )


def dataset2(seed: int = 2013) -> DatasetBundle:
    """Data set 2: expanded system, 1000 tasks over 15 minutes."""
    return _expanded_dataset("dataset2", 1000, 900.0, seed)


def dataset3(seed: int = 2013) -> DatasetBundle:
    """Data set 3: expanded system, 4000 tasks over one hour."""
    return _expanded_dataset("dataset3", 4000, 3600.0, seed)


#: Builders by bundle name — the re-drive registry: a grid manifest
#: records only ``(name, seed)`` and reconstructs the bundle through
#: this table, then verifies the rebuilt arrays against the journaled
#: dataset fingerprint (a generator change is config drift, caught by
#: the fingerprint, never silently absorbed).
DATASET_BUILDERS = {
    "dataset1": dataset1,
    "dataset2": dataset2,
    "dataset3": dataset3,
}


def build_dataset(name: str, seed: int = 2013) -> DatasetBundle:
    """Rebuild the named paper dataset (see :data:`DATASET_BUILDERS`)."""
    builder = DATASET_BUILDERS.get(name)
    if builder is None:
        raise ExperimentError(
            f"unknown dataset {name!r}; known: {sorted(DATASET_BUILDERS)}"
        )
    return builder(seed=seed)
