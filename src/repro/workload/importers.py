"""Importing real workload traces (Standard Workload Format).

The paper's framework takes "traces from any given system" (Section
VII); the de-facto interchange format for HPC traces is Feitelson's
**Standard Workload Format** (SWF): one job per line, 18
whitespace-separated fields, ``;``-prefixed header comments.  This
module parses SWF and maps jobs onto a :class:`~repro.workload.trace.Trace`.

Mapping decisions (configurable):

* **arrival time** — field 2 (submit time), shifted so the selected
  job range starts at 0, optionally rescaled into a target window;
* **task type** — SWF has no task-type notion, so one is derived:
  ``"executable"`` uses field 14 (application number) modulo the
  system's task-type count, preserving "same application = same type";
  ``"runtime-quantile"`` bins field 4 (run time) into per-type
  quantile buckets, preserving "similar size = same type".

Only the fields used are validated; malformed lines raise
:class:`~repro.errors.WorkloadError` with line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Literal, Optional, Union

import numpy as np

from repro.errors import WorkloadError
from repro.workload.trace import Trace

__all__ = ["SWFJob", "parse_swf", "parse_swf_text", "trace_from_swf", "export_swf"]

#: Number of fields in a standard SWF record.
_SWF_FIELDS = 18


@dataclass(frozen=True, slots=True)
class SWFJob:
    """One SWF job record (the fields this framework consumes).

    Attributes
    ----------
    job_id:
        Field 1 — job number.
    submit_time:
        Field 2 — seconds since trace start.
    run_time:
        Field 4 — actual runtime in seconds (−1 = unknown).
    processors:
        Field 5 — allocated processors (−1 = unknown).
    executable:
        Field 14 — application number (−1 = unknown).
    status:
        Field 11 — completion status (1 = completed).
    """

    job_id: int
    submit_time: float
    run_time: float
    processors: int
    executable: int
    status: int


def parse_swf_text(text: str) -> list[SWFJob]:
    """Parse SWF records from a string (see :func:`parse_swf`)."""
    jobs: list[SWFJob] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < _SWF_FIELDS:
            raise WorkloadError(
                f"SWF line {lineno}: expected {_SWF_FIELDS} fields, got "
                f"{len(fields)}"
            )
        try:
            jobs.append(
                SWFJob(
                    job_id=int(fields[0]),
                    submit_time=float(fields[1]),
                    run_time=float(fields[3]),
                    processors=int(fields[4]),
                    executable=int(fields[13]),
                    status=int(fields[10]),
                )
            )
        except ValueError as exc:
            raise WorkloadError(f"SWF line {lineno}: {exc}") from exc
    if not jobs:
        raise WorkloadError("SWF input contains no job records")
    return jobs


def parse_swf(path: Union[str, Path]) -> list[SWFJob]:
    """Parse an SWF file into job records."""
    return parse_swf_text(Path(path).read_text())


def trace_from_swf(
    jobs: Iterable[SWFJob],
    num_task_types: int,
    type_strategy: Literal["executable", "runtime-quantile"] = "executable",
    max_tasks: Optional[int] = None,
    window: Optional[float] = None,
    drop_incomplete: bool = True,
) -> Trace:
    """Convert SWF jobs into a framework :class:`Trace`.

    Parameters
    ----------
    jobs:
        Parsed SWF records.
    num_task_types:
        Task-type count of the target system.
    type_strategy:
        How task types are derived (module docstring).
    max_tasks:
        Keep only the first *max_tasks* jobs by submit time.
    window:
        Rescale arrivals into ``[0, window)``.  Default: the raw span
        of the selected jobs plus one second.
    drop_incomplete:
        Skip jobs whose status is not 1 (completed) or whose runtime is
        unknown — their characteristics are unreliable.
    """
    if num_task_types < 1:
        raise WorkloadError(f"num_task_types must be >= 1, got {num_task_types}")
    selected = [
        j
        for j in jobs
        if not drop_incomplete or (j.status == 1 and j.run_time >= 0)
    ]
    if not selected:
        raise WorkloadError("no usable jobs after filtering")
    selected.sort(key=lambda j: (j.submit_time, j.job_id))
    if max_tasks is not None:
        if max_tasks < 1:
            raise WorkloadError(f"max_tasks must be >= 1, got {max_tasks}")
        selected = selected[:max_tasks]

    submits = np.array([j.submit_time for j in selected], dtype=np.float64)
    arrivals = submits - submits[0]

    span = float(arrivals[-1])
    if window is None:
        window = span + 1.0
    else:
        if window <= 0:
            raise WorkloadError(f"window must be positive, got {window}")
        if span > 0:
            arrivals = arrivals * (window / span)
        # Keep the interval half-open.
        arrivals = np.minimum(arrivals, np.nextafter(window, 0.0))

    if type_strategy == "executable":
        task_types = np.array(
            [max(j.executable, 0) % num_task_types for j in selected],
            dtype=np.int64,
        )
    elif type_strategy == "runtime-quantile":
        runtimes = np.array([j.run_time for j in selected], dtype=np.float64)
        # Quantile edges; ranks map equal-count bins to types.
        order = np.argsort(np.argsort(runtimes, kind="stable"), kind="stable")
        task_types = (order * num_task_types // len(selected)).astype(np.int64)
        task_types = np.minimum(task_types, num_task_types - 1)
    else:
        raise WorkloadError(
            f"unknown type_strategy {type_strategy!r}; expected 'executable' "
            "or 'runtime-quantile'"
        )

    return Trace(task_types=task_types, arrival_times=arrivals, window=window)


def export_swf(
    trace: Trace,
    path: Union[str, Path],
    run_times: Optional[np.ndarray] = None,
    header_comment: str = "exported by repro.workload.importers",
) -> None:
    """Write *trace* as a Standard Workload Format file.

    The inverse of :func:`trace_from_swf` up to the fields a trace
    carries: submit time = arrival, application number = task type.
    Run times default to 1 s (traces carry types, not durations —
    durations live in the ETC matrix and depend on placement); pass
    *run_times* (e.g. the per-task mean ETC) for a richer export.
    Statuses are written as completed; unknown fields as −1.
    """
    if run_times is not None:
        run_times = np.asarray(run_times, dtype=np.float64)
        if run_times.shape != (trace.num_tasks,):
            raise WorkloadError(
                f"run_times must have shape ({trace.num_tasks},); got "
                f"{run_times.shape}"
            )
        if np.any(run_times <= 0):
            raise WorkloadError("run_times must be strictly positive")
    lines = [f"; {header_comment}", f"; MaxJobs: {trace.num_tasks}"]
    for i in range(trace.num_tasks):
        fields = [-1] * _SWF_FIELDS
        fields[0] = i + 1                                   # job id
        fields[1] = int(round(float(trace.arrival_times[i])))  # submit
        fields[2] = 0                                       # wait
        fields[3] = (
            1 if run_times is None else max(1, int(round(run_times[i])))
        )                                                   # run time
        fields[4] = 1                                       # processors
        fields[10] = 1                                      # completed
        fields[13] = int(trace.task_types[i])               # application
        lines.append(" ".join(str(f) for f in fields))
    Path(path).write_text("\n".join(lines) + "\n")
