"""Workload generation: arrival process × task-type mix → :class:`Trace`.

``WorkloadGenerator`` draws each task's type from a :class:`TaskTypeMix`
(uniform by default, or weighted — e.g. to make special-purpose task
types rarer, matching environments where accelerated workloads are a
minority) and its arrival time from an
:class:`~repro.workload.arrivals.ArrivalProcess`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.rng import SeedLike, ensure_rng, spawn
from repro.types import FloatArray
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.trace import Trace

__all__ = ["TaskTypeMix", "WorkloadGenerator"]


@dataclass(frozen=True)
class TaskTypeMix:
    """A categorical distribution over task types.

    Attributes
    ----------
    weights:
        Non-negative weights, one per task type; normalized internally.
    """

    weights: FloatArray

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise WorkloadError("mix weights must be a non-empty 1-D array")
        if np.any(~np.isfinite(w)) or np.any(w < 0):
            raise WorkloadError("mix weights must be finite and non-negative")
        total = w.sum()
        if total <= 0:
            raise WorkloadError("mix weights must not all be zero")
        w = w / total
        w.setflags(write=False)
        object.__setattr__(self, "weights", w)

    @classmethod
    def uniform(cls, num_task_types: int) -> "TaskTypeMix":
        """Equal probability for every task type."""
        if num_task_types <= 0:
            raise WorkloadError(
                f"num_task_types must be positive, got {num_task_types}"
            )
        return cls(weights=np.ones(num_task_types))

    @classmethod
    def weighted(cls, weights: Sequence[float]) -> "TaskTypeMix":
        """Explicit weights (normalized)."""
        return cls(weights=np.asarray(weights, dtype=np.float64))

    @property
    def num_task_types(self) -> int:
        """Number of task types in the mix."""
        return int(self.weights.shape[0])

    def sample(self, count: int, seed: SeedLike = None) -> np.ndarray:
        """Draw *count* task-type indices."""
        rng = ensure_rng(seed)
        return rng.choice(self.num_task_types, size=count, p=self.weights)


@dataclass(frozen=True)
class WorkloadGenerator:
    """Generates reproducible traces for a system.

    Attributes
    ----------
    mix:
        Distribution of task types.
    arrivals:
        Arrival process (default: Poisson-in-window).
    """

    mix: TaskTypeMix
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivals)

    def generate(self, num_tasks: int, window: float, seed: SeedLike = None) -> Trace:
        """Generate a trace of *num_tasks* tasks over *window* seconds.

        The type stream and the arrival stream are independent spawned
        children of *seed*, so the same seed yields the same trace
        regardless of which is consumed first.
        """
        if num_tasks <= 0:
            raise WorkloadError(f"num_tasks must be positive, got {num_tasks}")
        type_stream, arrival_stream = spawn(seed, 2)
        task_types = self.mix.sample(num_tasks, type_stream).astype(np.int64)
        arrival_times = self.arrivals.generate(num_tasks, window, arrival_stream)
        return Trace(task_types=task_types, arrival_times=arrival_times, window=window)

    @classmethod
    def uniform_for(cls, num_task_types: int,
                    arrivals: Optional[ArrivalProcess] = None) -> "WorkloadGenerator":
        """Generator with a uniform mix over *num_task_types*."""
        return cls(
            mix=TaskTypeMix.uniform(num_task_types),
            arrivals=arrivals if arrivals is not None else PoissonArrivals(),
        )
