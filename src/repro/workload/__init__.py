"""Workload traces (paper Section III-C and V-A).

The paper performs a *post-mortem static* resource allocation: a trace
of tasks arriving over a fixed window (e.g. 250 tasks over 15 minutes)
is simulated first, so all arrival times and task types are known a
priori.  This package generates such traces:

* :mod:`repro.workload.arrivals` — arrival-time processes (Poisson in
  window, uniform, bursty);
* :mod:`repro.workload.trace` — the immutable :class:`Trace` container
  with columnar NumPy views for the simulator;
* :mod:`repro.workload.generator` — the full workload generator
  combining an arrival process with a task-type mix.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    ProfileArrivals,
    UniformArrivals,
)
from repro.workload.importers import SWFJob, export_swf, parse_swf, parse_swf_text, trace_from_swf
from repro.workload.generator import TaskTypeMix, WorkloadGenerator
from repro.workload.trace import Trace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "BurstyArrivals",
    "Trace",
    "ProfileArrivals",
    "TaskTypeMix",
    "WorkloadGenerator",
    "SWFJob",
    "parse_swf",
    "parse_swf_text",
    "trace_from_swf",
    "export_swf",
]
