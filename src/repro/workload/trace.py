"""The immutable :class:`Trace` — a recorded workload for static allocation.

A trace is the paper's unit of analysis: the set of tasks that arrived
during the studied window, each with its arrival time and task type.
Tasks are indexed ``0..T-1`` **ordered by arrival time** — the paper's
chromosome convention ("the i-th gene in every chromosome corresponds
to ... the i-th task ordered based on task arrival times").

Stored columnar (NumPy arrays) because the simulator consumes whole
columns; the per-task view :meth:`Trace.task` is provided for
inspection and examples.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.errors import WorkloadError
from repro.types import FloatArray, IntArray

__all__ = ["Trace", "TraceTask"]


@dataclass(frozen=True, slots=True)
class TraceTask:
    """One task instance of a trace (inspection view)."""

    index: int
    task_type: int
    arrival_time: float


@dataclass(frozen=True)
class Trace:
    """A workload trace: per-task type indices and arrival times.

    Attributes
    ----------
    task_types:
        ``(T,)`` int array; ``task_types[i]`` is the type of task *i*.
    arrival_times:
        ``(T,)`` float array, non-decreasing, starting at >= 0.
    window:
        The trace window length (seconds); all arrivals lie in
        ``[0, window)``.
    """

    task_types: IntArray
    arrival_times: FloatArray
    window: float

    def __post_init__(self) -> None:
        task_types = np.asarray(self.task_types, dtype=np.int64)
        arrivals = np.asarray(self.arrival_times, dtype=np.float64)
        if task_types.ndim != 1 or arrivals.ndim != 1:
            raise WorkloadError("trace columns must be 1-D")
        if task_types.shape != arrivals.shape:
            raise WorkloadError(
                f"task_types length {task_types.shape[0]} does not match "
                f"arrival_times length {arrivals.shape[0]}"
            )
        if task_types.size == 0:
            raise WorkloadError("trace must contain at least one task")
        if self.window <= 0:
            raise WorkloadError(f"window must be positive, got {self.window}")
        if np.any(arrivals < 0) or np.any(arrivals >= self.window):
            raise WorkloadError("arrival times must lie in [0, window)")
        if np.any(np.diff(arrivals) < 0):
            raise WorkloadError(
                "arrival times must be sorted (tasks are indexed by arrival)"
            )
        if np.any(task_types < 0):
            raise WorkloadError("task type indices must be >= 0")
        # Defensive copy for writable inputs only: an already-read-only
        # array (e.g. a shared-memory view published by repro.parallel)
        # is adopted as-is, keeping trace reconstruction zero-copy.  The
        # caller owning such an array promises not to re-enable writes.
        if task_types.flags.writeable:
            task_types = task_types.copy()
            task_types.setflags(write=False)
        if arrivals.flags.writeable:
            arrivals = arrivals.copy()
            arrivals.setflags(write=False)
        object.__setattr__(self, "task_types", task_types)
        object.__setattr__(self, "arrival_times", arrivals)

    # -- sizes / access ----------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """Number of tasks ``T`` in the trace."""
        return int(self.task_types.shape[0])

    def __len__(self) -> int:
        return self.num_tasks

    def task(self, index: int) -> TraceTask:
        """Per-task inspection view."""
        if not (0 <= index < self.num_tasks):
            raise WorkloadError(
                f"task index {index} out of range [0, {self.num_tasks})"
            )
        return TraceTask(
            index=index,
            task_type=int(self.task_types[index]),
            arrival_time=float(self.arrival_times[index]),
        )

    def __iter__(self) -> Iterator[TraceTask]:
        for i in range(self.num_tasks):
            yield self.task(i)

    def type_counts(self, num_task_types: int | None = None) -> IntArray:
        """Histogram of task types present in the trace."""
        n = (
            int(self.task_types.max()) + 1
            if num_task_types is None
            else num_task_types
        )
        return np.bincount(self.task_types, minlength=n)

    def validate_against(self, num_task_types: int) -> None:
        """Raise if the trace references task types outside the system."""
        if int(self.task_types.max()) >= num_task_types:
            raise WorkloadError(
                f"trace references task type {int(self.task_types.max())} but "
                f"the system defines only {num_task_types} types"
            )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "format": "repro.trace/1",
            "window": self.window,
            "task_types": self.task_types.tolist(),
            "arrival_times": self.arrival_times.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Inverse of :meth:`to_dict`."""
        if data.get("format") != "repro.trace/1":
            raise WorkloadError(
                f"unrecognized trace format {data.get('format')!r}"
            )
        return cls(
            task_types=np.asarray(data["task_types"], dtype=np.int64),
            arrival_times=np.asarray(data["arrival_times"], dtype=np.float64),
            window=float(data["window"]),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Load a trace written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
