"""Arrival-time processes for trace generation.

The paper specifies only "N tasks arriving within a window of W
seconds"; these processes instantiate that specification:

* :class:`PoissonArrivals` — tasks arrive by a homogeneous Poisson
  process *conditioned on the count*: given N arrivals in [0, W), the
  arrival times are N order statistics of Uniform(0, W).  This is the
  default and the standard model for independent task submissions.
* :class:`UniformArrivals` — evenly spaced deterministic arrivals
  (useful for tests needing predictable queues).
* :class:`BurstyArrivals` — arrivals clustered into B bursts with
  Gaussian jitter, exercising congested-queue behaviour.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.rng import SeedLike, ensure_rng
from repro.types import FloatArray

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "BurstyArrivals",
    "ProfileArrivals",
]


class ArrivalProcess(abc.ABC):
    """Generates sorted arrival times for a fixed task count and window."""

    @abc.abstractmethod
    def generate(self, count: int, window: float, seed: SeedLike = None) -> FloatArray:
        """Return *count* sorted arrival times in ``[0, window)``."""

    @staticmethod
    def _validate(count: int, window: float) -> None:
        if count < 0:
            raise WorkloadError(f"task count must be >= 0, got {count}")
        if window <= 0:
            raise WorkloadError(f"window must be positive, got {window}")


@dataclass(frozen=True, slots=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson process conditioned on the arrival count.

    Conditioned on N points in the window, a homogeneous Poisson
    process's arrival times are iid Uniform(0, W) order statistics, so
    generation is a sorted uniform draw — exact, not an approximation.
    """

    def generate(self, count: int, window: float, seed: SeedLike = None) -> FloatArray:
        self._validate(count, window)
        rng = ensure_rng(seed)
        times = rng.uniform(0.0, window, size=count)
        times.sort()
        return times


@dataclass(frozen=True, slots=True)
class UniformArrivals(ArrivalProcess):
    """Deterministic, evenly spaced arrivals: ``i · W / N``."""

    def generate(self, count: int, window: float, seed: SeedLike = None) -> FloatArray:
        self._validate(count, window)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        return np.arange(count, dtype=np.float64) * (window / count)


@dataclass(frozen=True, slots=True)
class BurstyArrivals(ArrivalProcess):
    """Arrivals clustered into bursts.

    Attributes
    ----------
    num_bursts:
        Number of burst centers, spread evenly over the window.
    spread_fraction:
        Standard deviation of the Gaussian jitter around each center,
        as a fraction of the inter-burst spacing.
    """

    num_bursts: int = 4
    spread_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.num_bursts < 1:
            raise WorkloadError(f"num_bursts must be >= 1, got {self.num_bursts}")
        if self.spread_fraction <= 0:
            raise WorkloadError(
                f"spread_fraction must be > 0, got {self.spread_fraction}"
            )

    def generate(self, count: int, window: float, seed: SeedLike = None) -> FloatArray:
        self._validate(count, window)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        rng = ensure_rng(seed)
        spacing = window / self.num_bursts
        centers = (np.arange(self.num_bursts) + 0.5) * spacing
        assignment = rng.integers(0, self.num_bursts, size=count)
        jitter = rng.normal(0.0, self.spread_fraction * spacing, size=count)
        times = centers[assignment] + jitter
        # Clamp into the window; np.nextafter keeps the interval half-open.
        times = np.clip(times, 0.0, np.nextafter(window, 0.0))
        times.sort()
        return times


@dataclass(frozen=True)
class ProfileArrivals(ArrivalProcess):
    """Arrivals following a piecewise-constant intensity profile.

    Models diurnal load: the window is divided into ``len(weights)``
    equal buckets, and the probability of an arrival landing in a
    bucket is proportional to its weight (uniform within the bucket).
    A daily trace with a 9am-5pm hump is, e.g.,
    ``ProfileArrivals(weights=(1, 1, 1, 2, 5, 8, 8, 7, 8, 8, 5, 2))``.

    Attributes
    ----------
    weights:
        Non-negative relative intensities, one per equal-width bucket.
    """

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) < 1:
            raise WorkloadError("profile requires at least one bucket")
        w = np.asarray(self.weights, dtype=np.float64)
        if np.any(~np.isfinite(w)) or np.any(w < 0):
            raise WorkloadError("profile weights must be finite and >= 0")
        if w.sum() <= 0:
            raise WorkloadError("profile weights must not all be zero")

    def generate(self, count: int, window: float, seed: SeedLike = None) -> FloatArray:
        self._validate(count, window)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        rng = ensure_rng(seed)
        w = np.asarray(self.weights, dtype=np.float64)
        probs = w / w.sum()
        buckets = rng.choice(len(w), size=count, p=probs)
        width = window / len(w)
        times = (buckets + rng.random(count)) * width
        times = np.minimum(times, np.nextafter(window, 0.0))
        times.sort()
        return times
