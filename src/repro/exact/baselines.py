"""Exact Pareto fronts of the contention-free scheduling relaxation.

**The relaxation.**  Drop queueing: every task starts the moment it
arrives, so its elapsed time on machine *m* is exactly ``ETC(τ, m)``
and its utility is ``Υ_τ(ETC(τ, m))`` — the best any schedule can do,
since waiting only increases elapsed time and every TUF is monotone
non-increasing.  Energy is queue-independent (``EEC = ETC · EPC``), so
the relaxed energy of an assignment equals its true energy.  The tasks
then decouple: each independently picks one feasible machine, and the
relaxed objective is the sum of per-task ``(energy, utility)`` options.
Consequently, for every feasible schedule's true point ``(E, U)`` the
relaxation admits a point ``(E, U')`` with ``U' >= U`` — the exact
relaxed front weakly dominates everything achievable, making it a valid
reference front for optimality-gap indicators.

**The algorithm.**  The Pareto front of a sum of independent option
sets is a Minkowski-sum front, computed by dynamic programming: merge
one task's (pruned) options at a time into a running nondominated list.
The list is optionally ε-thinned on the utility axis after each merge —
keeping one representative per utility cell of width
``epsilon · utility_scale / T`` — which bounds both the list length and
the total utility error of the final front by ``epsilon ·
utility_scale`` (each of the T merges forfeits at most one cell).
``epsilon=0`` is fully exact and is validated against brute-force
enumeration on tiny instances by ``tests/test_exact_baselines.py``.

An (energy, makespan) variant does the same for the second trade-off
axis studied in the Khaleghzadeh line of work: sweep the candidate
completion-time thresholds in ascending order, and at each threshold
give every task its cheapest machine that still meets it (per-task
prefix-minimum energies over completion-sorted options make the whole
sweep O(T·M log(T·M))).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.analysis.indicators import additive_epsilon, igd
from repro.core.dominance import nondominated_mask
from repro.core.objectives import ENERGY_UTILITY, BiObjectiveSpace, ObjectiveSense
from repro.errors import AnalysisError, OptimizationError
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.evaluator import ScheduleEvaluator

__all__ = [
    "ExactFront",
    "brute_force_energy_utility_front",
    "contention_free_options",
    "distance_to_exact",
    "exact_energy_makespan_front",
    "exact_energy_utility_front",
]

#: (minimize energy, minimize makespan) — the objective space of the
#: second exact baseline.
ENERGY_MAKESPAN = BiObjectiveSpace(
    senses=(ObjectiveSense.MINIMIZE, ObjectiveSense.MINIMIZE),
    names=("energy", "makespan"),
)

#: Guard on the brute-force enumerator: ``prod(options per task)``.
_BRUTE_FORCE_LIMIT = 2_000_000

#: Guard on the unthinned (epsilon=0) DP front length — beyond this the
#: instance needs ε-thinning to stay tractable.
_EXACT_DP_LIMIT = 200_000


@dataclass(frozen=True)
class ExactFront:
    """An exactly computed reference front.

    Attributes
    ----------
    points:
        ``(F, 2)`` front points, sorted ascending by the first
        objective.
    space:
        The objective space the points live in.
    epsilon:
        The ε-thinning parameter the front was computed with (0 =
        provably exact; positive values bound the utility error by
        ``epsilon × utility_scale``).
    """

    points: FloatArray
    space: BiObjectiveSpace
    epsilon: float = 0.0

    @property
    def size(self) -> int:
        """Number of points on the front."""
        return int(self.points.shape[0])


def contention_free_options(
    evaluator: "ScheduleEvaluator",
) -> list[FloatArray]:
    """Per-task nondominated ``(energy, utility)`` options.

    For each task, one row per feasible machine: energy
    ``EEC(τ, m)`` and the utility upper bound ``Υ_τ(ETC(τ, m))``
    (elapsed time without any queueing).  Options dominated within a
    task — at least as much energy for at most as much utility — are
    pruned; they can never appear in any relaxed Pareto-optimal sum.
    """
    etc = np.asarray(evaluator._etc_rows, dtype=np.float64)
    eec = np.asarray(evaluator._eec_rows, dtype=np.float64)
    feasible = np.asarray(evaluator._feasible_rows, dtype=bool)
    task_types = evaluator._task_types
    table = evaluator.tuf_table
    T, M = etc.shape
    # Utility of each (task, machine) at zero waiting time: evaluate
    # the TUF of each task's type at its ETC column by column.
    util = np.empty((T, M), dtype=np.float64)
    for m in range(M):
        util[:, m] = table.evaluate(task_types, etc[:, m])
    options: list[FloatArray] = []
    for t in range(T):
        ok = np.flatnonzero(feasible[t])
        if ok.size == 0:
            raise AnalysisError(
                f"task {t} has no feasible machine; the relaxation is empty"
            )
        pts = np.column_stack([eec[t, ok], util[t, ok]])
        keep = nondominated_mask(pts, space=ENERGY_UTILITY)
        options.append(pts[keep])
    return options


def _pareto_sorted(
    points: FloatArray, space: BiObjectiveSpace
) -> FloatArray:
    """Nondominated subset of *points*, sorted by the first objective."""
    keep = nondominated_mask(points, space=space)
    pts = points[keep]
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    return pts[order]


def _thin_by_utility(points: FloatArray, du: float) -> FloatArray:
    """Keep one representative per utility cell of width *du*.

    *points* must be a nondominated (energy, utility) front.  Within a
    cell the representative is the highest-utility point (which, on a
    front, is also the most expensive — the error is one cell of
    utility, never energy infeasibility: every kept point is a genuine
    achievable sum).
    """
    if du <= 0 or points.shape[0] <= 2:
        return points
    cells = np.floor(points[:, 1] / du).astype(np.int64)
    # Front sorted ascending by energy has ascending utility too; the
    # last point of each cell run has that cell's max utility.
    last_of_cell = np.ones(points.shape[0], dtype=bool)
    last_of_cell[:-1] = cells[:-1] != cells[1:]
    return points[last_of_cell]


def exact_energy_utility_front(
    evaluator: "ScheduleEvaluator",
    epsilon: float = 0.0,
) -> ExactFront:
    """Exact (energy, utility) front of the contention-free relaxation.

    Parameters
    ----------
    evaluator:
        The (system, trace) evaluator whose relaxation to solve.
    epsilon:
        Relative utility resolution of the ε-thinned DP.  ``0``
        (default) computes the provably exact front — exponential in
        the worst case, fine for the paper's instance sizes; ``1e-3``
        bounds the front's utility error by 0.1 % of the total utility
        upper bound while keeping the DP list roughly ``T / epsilon``
        entries.
    """
    if epsilon < 0:
        raise OptimizationError(f"epsilon must be >= 0, got {epsilon}")
    options = contention_free_options(evaluator)
    utility_scale = float(
        evaluator.tuf_table.utility_upper_bound(evaluator._task_types)
    )
    du = (
        epsilon * utility_scale / max(len(options), 1)
        if epsilon > 0 and utility_scale > 0
        else 0.0
    )
    # DP merge: front ⊕ options[t], pruned (and thinned) every step.
    front = np.zeros((1, 2), dtype=np.float64)
    for opts in options:
        combined = (front[:, None, :] + opts[None, :, :]).reshape(-1, 2)
        front = _pareto_sorted(combined, ENERGY_UTILITY)
        front = _thin_by_utility(front, du)
        if du == 0.0 and front.shape[0] > _EXACT_DP_LIMIT:
            raise AnalysisError(
                f"exact DP front exceeded {_EXACT_DP_LIMIT:,} points; "
                "this instance needs epsilon > 0 (the error stays "
                "bounded by epsilon × total utility upper bound)"
            )
    return ExactFront(points=front, space=ENERGY_UTILITY, epsilon=epsilon)


def exact_energy_makespan_front(
    evaluator: "ScheduleEvaluator",
) -> ExactFront:
    """Exact (energy, makespan) front of the contention-free relaxation.

    Task *t* on machine *m* completes at ``arrival_t + ETC(τ_t, m)``;
    the relaxed makespan of an assignment is the max of those.  Sweeping
    the candidate makespan thresholds in ascending order and giving
    every task its cheapest option that meets the threshold yields the
    minimum energy at each makespan — the exact front of this
    bi-objective relaxation (cf. the heterogeneous energy/performance
    baselines of Khaleghzadeh et al.).
    """
    etc = np.asarray(evaluator._etc_rows, dtype=np.float64)
    eec = np.asarray(evaluator._eec_rows, dtype=np.float64)
    feasible = np.asarray(evaluator._feasible_rows, dtype=bool)
    arrivals = np.asarray(evaluator._arrivals, dtype=np.float64)
    T = etc.shape[0]
    completions: list[FloatArray] = []
    prefix_energy: list[FloatArray] = []
    for t in range(T):
        ok = np.flatnonzero(feasible[t])
        if ok.size == 0:
            raise AnalysisError(
                f"task {t} has no feasible machine; the relaxation is empty"
            )
        c = arrivals[t] + etc[t, ok]
        e = eec[t, ok]
        order = np.argsort(c, kind="stable")
        completions.append(c[order])
        prefix_energy.append(np.minimum.accumulate(e[order]))
    # Feasible thresholds: at least every task's fastest completion.
    lower = max(float(c[0]) for c in completions)
    candidates = np.unique(np.concatenate(completions))
    candidates = candidates[candidates >= lower]
    points = np.empty((candidates.shape[0], 2), dtype=np.float64)
    for i, tau in enumerate(candidates):
        total = 0.0
        for c, pe in zip(completions, prefix_energy):
            j = int(np.searchsorted(c, tau, side="right")) - 1
            total += float(pe[j])
        points[i] = (total, float(tau))
    return ExactFront(
        points=_pareto_sorted(points, ENERGY_MAKESPAN),
        space=ENERGY_MAKESPAN,
    )


def brute_force_energy_utility_front(
    evaluator: "ScheduleEvaluator",
) -> ExactFront:
    """Enumerate every relaxed assignment (validation oracle).

    Walks the full cross product of per-task nondominated options —
    only viable on tiny instances (guarded at 2,000,000 combinations) —
    and Pareto-filters the sums.  Exists to validate
    :func:`exact_energy_utility_front` with ``epsilon=0``.
    """
    options = contention_free_options(evaluator)
    combos = 1
    for opts in options:
        combos *= opts.shape[0]
        if combos > _BRUTE_FORCE_LIMIT:
            raise AnalysisError(
                f"brute force would enumerate > {_BRUTE_FORCE_LIMIT:,} "
                "assignments; use exact_energy_utility_front instead"
            )
    sums = np.array(
        [np.sum(choice, axis=0) for choice in product(*options)],
        dtype=np.float64,
    )
    return ExactFront(
        points=_pareto_sorted(sums, ENERGY_UTILITY), space=ENERGY_UTILITY
    )


def distance_to_exact(
    front_points: FloatArray,
    exact: ExactFront,
    space: Optional[BiObjectiveSpace] = None,
) -> dict[str, float]:
    """Optimality-gap indicators of an evolved front against *exact*.

    Returns ``{"igd", "additive_epsilon"}`` — both 0 when the evolved
    front reaches the exact one, positive otherwise.  Because the exact
    front outer-bounds everything achievable, these are upper bounds on
    the true optimality gap.
    """
    sp = space if space is not None else exact.space
    return {
        "igd": igd(front_points, exact.points, space=sp),
        "additive_epsilon": additive_epsilon(
            front_points, exact.points, space=sp
        ),
    }
