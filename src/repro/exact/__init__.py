"""Exact bi-objective baselines for distance-to-optimal reporting.

The MOEA portfolio approximates the Pareto front; this package computes
*provable* reference fronts for relaxations of the paper's scheduling
problem, in the spirit of the exact bi-objective algorithms of
Khaleghzadeh et al. (arXiv:1907.04080, arXiv:2209.02475).  Because the
contention-free relaxation only ever improves utility at equal energy,
its exact front is an **outer bound** on every achievable
(energy, utility) point — so "distance to the exact front" upper-bounds
the true optimality gap of an evolved front.
"""

from repro.exact.baselines import (
    ExactFront,
    brute_force_energy_utility_front,
    contention_free_options,
    distance_to_exact,
    exact_energy_makespan_front,
    exact_energy_utility_front,
)

__all__ = [
    "ExactFront",
    "brute_force_energy_utility_front",
    "contention_free_options",
    "distance_to_exact",
    "exact_energy_makespan_front",
    "exact_energy_utility_front",
]
