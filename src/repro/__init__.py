"""repro — analysis framework for utility/energy trade-offs in
heterogeneous computing.

A from-scratch reproduction of Friese et al., *"An Analysis Framework
for Investigating the Trade-offs Between System Performance and Energy
Consumption in a Heterogeneous Computing Environment"* (IPDPSW 2013):
heterogeneous system model with ETC/EPC matrices, time-utility
functions, heterogeneity-preserving synthetic data generation
(Gram-Charlier), a vectorized schedule simulator, an adapted NSGA-II
with the paper's chromosome/operators, the four seeding heuristics,
Pareto-front analysis (including the max utility-per-energy region
method of Figure 5), and drivers reproducing every table and figure.

Quickstart::

    from repro import dataset1, figure3

    bundle = dataset1(seed=7)          # real 5x9 data, 250-task trace
    result = figure3(dataset=bundle)   # 5 seeded NSGA-II populations
    print(result.render())

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.analysis import (
    EfficiencyRegion,
    ParetoFront,
    hypervolume,
    max_utility_per_energy_region,
)
from repro.core import (
    NSGA2,
    NSGA2Config,
    OperatorConfig,
    ParetoArchive,
    dominates,
    fast_nondominated_sort,
)
from repro.data import (
    GramCharlierPDF,
    HeterogeneityStats,
    expand_matrix_pair,
    historical_epc,
    historical_etc,
    historical_system,
    mvsk,
)
from repro.errors import ReproError
from repro.experiments import (
    dataset1,
    dataset2,
    dataset3,
    figure3,
    figure4,
    figure5,
    figure6,
    run_seeded_populations,
    table1,
    table2,
    table3,
)
from repro.heuristics import (
    SEEDING_HEURISTICS,
    MaxUtility,
    MaxUtilityPerEnergy,
    MinEnergy,
    MinMinCompletionTime,
)
from repro.model import SystemModel
from repro.sim import (
    EvaluationResult,
    ResourceAllocation,
    ScheduleEvaluator,
    simulate_reference,
)
from repro.utility import TimeUtilityFunction, UtilityClass
from repro.workload import Trace, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # model & data
    "SystemModel",
    "historical_system",
    "historical_etc",
    "historical_epc",
    "HeterogeneityStats",
    "mvsk",
    "GramCharlierPDF",
    "expand_matrix_pair",
    # utility & workload
    "TimeUtilityFunction",
    "UtilityClass",
    "Trace",
    "WorkloadGenerator",
    # simulation
    "ResourceAllocation",
    "ScheduleEvaluator",
    "EvaluationResult",
    "simulate_reference",
    # optimization
    "NSGA2",
    "NSGA2Config",
    "OperatorConfig",
    "ParetoArchive",
    "dominates",
    "fast_nondominated_sort",
    # heuristics
    "SEEDING_HEURISTICS",
    "MinEnergy",
    "MaxUtility",
    "MaxUtilityPerEnergy",
    "MinMinCompletionTime",
    # analysis
    "ParetoFront",
    "EfficiencyRegion",
    "max_utility_per_energy_region",
    "hypervolume",
    # experiments
    "dataset1",
    "dataset2",
    "dataset3",
    "run_seeded_populations",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table1",
    "table2",
    "table3",
]
