"""repro — analysis framework for utility/energy trade-offs in
heterogeneous computing.

A from-scratch reproduction of Friese et al., *"An Analysis Framework
for Investigating the Trade-offs Between System Performance and Energy
Consumption in a Heterogeneous Computing Environment"* (IPDPSW 2013):
heterogeneous system model with ETC/EPC matrices, time-utility
functions, heterogeneity-preserving synthetic data generation
(Gram-Charlier), a vectorized schedule simulator, a pluggable MOEA
portfolio (the paper's adapted NSGA-II plus steady-state NSGA-II,
SPEA2, MOEA/D, and an ε-archive variant behind one ``Algorithm`` API),
the four seeding heuristics, exact contention-free baselines for
distance-to-optimal reporting, Pareto-front analysis (including the
max utility-per-energy region method of Figure 5), and drivers
reproducing every table and figure.

Quickstart::

    from repro import dataset1, figure3

    bundle = dataset1(seed=7)          # real 5x9 data, 250-task trace
    result = figure3(dataset=bundle)   # 5 seeded NSGA-II populations
    print(result.render())

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.analysis import (
    EfficiencyRegion,
    ParetoFront,
    hypervolume,
    max_utility_per_energy_region,
)
from repro.core import (
    ALGORITHMS,
    NSGA2,
    MOEAD,
    SPEA2,
    Algorithm,
    AlgorithmConfig,
    EpsilonArchiveNSGA2,
    EvolutionaryAlgorithm,
    NSGA2Config,
    OperatorConfig,
    ParetoArchive,
    available_algorithms,
    dominates,
    fast_nondominated_sort,
    make_algorithm,
)
from repro.exact import (
    ExactFront,
    distance_to_exact,
    exact_energy_makespan_front,
    exact_energy_utility_front,
)
from repro.data import (
    GramCharlierPDF,
    HeterogeneityStats,
    expand_matrix_pair,
    historical_epc,
    historical_etc,
    historical_system,
    mvsk,
)
from repro.errors import ReproError
from repro.experiments import (
    dataset1,
    dataset2,
    dataset3,
    figure3,
    figure4,
    figure5,
    figure6,
    run_portfolio,
    run_seeded_populations,
    table1,
    table2,
    table3,
)
from repro.heuristics import (
    SEEDING_HEURISTICS,
    MaxUtility,
    MaxUtilityPerEnergy,
    MinEnergy,
    MinMinCompletionTime,
)
from repro.model import SystemModel
from repro.sim import (
    EvaluationResult,
    ResourceAllocation,
    ScheduleEvaluator,
    simulate_reference,
)
from repro.utility import TimeUtilityFunction, UtilityClass
from repro.workload import Trace, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # model & data
    "SystemModel",
    "historical_system",
    "historical_etc",
    "historical_epc",
    "HeterogeneityStats",
    "mvsk",
    "GramCharlierPDF",
    "expand_matrix_pair",
    # utility & workload
    "TimeUtilityFunction",
    "UtilityClass",
    "Trace",
    "WorkloadGenerator",
    # simulation
    "ResourceAllocation",
    "ScheduleEvaluator",
    "EvaluationResult",
    "simulate_reference",
    # optimization portfolio
    "Algorithm",
    "AlgorithmConfig",
    "EvolutionaryAlgorithm",
    "NSGA2",
    "NSGA2Config",
    "SPEA2",
    "MOEAD",
    "EpsilonArchiveNSGA2",
    "ALGORITHMS",
    "available_algorithms",
    "make_algorithm",
    "OperatorConfig",
    "ParetoArchive",
    "dominates",
    "fast_nondominated_sort",
    # exact baselines
    "ExactFront",
    "exact_energy_utility_front",
    "exact_energy_makespan_front",
    "distance_to_exact",
    # heuristics
    "SEEDING_HEURISTICS",
    "MinEnergy",
    "MaxUtility",
    "MaxUtilityPerEnergy",
    "MinMinCompletionTime",
    # analysis
    "ParetoFront",
    "EfficiencyRegion",
    "max_utility_per_energy_region",
    "hypervolume",
    # experiments
    "dataset1",
    "dataset2",
    "dataset3",
    "run_seeded_populations",
    "run_portfolio",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table1",
    "table2",
    "table3",
]
