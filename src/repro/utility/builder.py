"""Fluent builder for time-utility functions.

Writing multi-interval utility classes by hand means tracking fraction
contiguity manually; :class:`TUFBuilder` chains segments and validates
once at :meth:`build`:

    tuf = (
        TUFBuilder(priority=10.0, urgency=1.0 / 300.0)
        .hold(seconds=60.0)                  # full value for a minute
        .exponential_to(0.5)                 # decay to 50%...
        .exponential_to(0.1, modifier=3.0)   # ...then faster to 10%
        .linear_to_zero(modifier=5.0)        # then drop to nothing
        .build()
    )

Each ``*_to`` method appends an interval starting at the previous
interval's end fraction, so contiguity holds by construction.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import UtilityFunctionError
from repro.utility.intervals import DecayShape, UtilityClass, UtilityInterval
from repro.utility.tuf import TimeUtilityFunction

__all__ = ["TUFBuilder"]


class TUFBuilder:
    """Chainable construction of a :class:`TimeUtilityFunction`.

    Parameters
    ----------
    priority:
        Maximum utility (> 0).
    urgency:
        Base decay rate (> 0); interval modifiers scale it.
    name:
        Label of the resulting utility class.
    """

    def __init__(self, priority: float, urgency: float, name: str = "built") -> None:
        if priority <= 0:
            raise UtilityFunctionError(f"priority must be > 0, got {priority}")
        if urgency <= 0:
            raise UtilityFunctionError(f"urgency must be > 0, got {urgency}")
        self._priority = priority
        self._urgency = urgency
        self._name = name
        self._intervals: list[UtilityInterval] = []
        self._current_fraction = 1.0

    @property
    def current_fraction(self) -> float:
        """Fraction the next interval will start at."""
        return self._current_fraction

    def hold(self, seconds: float) -> "TUFBuilder":
        """Hold the current value constant for *seconds*."""
        self._intervals.append(
            UtilityInterval(
                start_fraction=self._current_fraction,
                end_fraction=self._current_fraction,
                shape=DecayShape.CONSTANT,
                duration=seconds,
            )
        )
        return self

    def exponential_to(
        self, fraction: float, modifier: float = 1.0
    ) -> "TUFBuilder":
        """Decay exponentially from the current fraction to *fraction*."""
        self._intervals.append(
            UtilityInterval(
                start_fraction=self._current_fraction,
                end_fraction=fraction,
                urgency_modifier=modifier,
                shape=DecayShape.EXPONENTIAL,
            )
        )
        self._current_fraction = fraction
        return self

    def linear_to(self, fraction: float, modifier: float = 1.0) -> "TUFBuilder":
        """Decay linearly from the current fraction to *fraction*."""
        self._intervals.append(
            UtilityInterval(
                start_fraction=self._current_fraction,
                end_fraction=fraction,
                urgency_modifier=modifier,
                shape=DecayShape.LINEAR,
            )
        )
        self._current_fraction = fraction
        return self

    def linear_to_zero(self, modifier: float = 1.0) -> "TUFBuilder":
        """Decay linearly from the current fraction to zero."""
        return self.linear_to(0.0, modifier=modifier)

    def drop_to(self, fraction: float) -> "TUFBuilder":
        """Near-instant drop to *fraction* (steep linear, 1000x modifier)."""
        return self.linear_to(fraction, modifier=1000.0)

    def build(self) -> TimeUtilityFunction:
        """Validate and assemble the TUF."""
        if not self._intervals:
            raise UtilityFunctionError(
                "builder has no intervals; add hold()/exponential_to()/"
                "linear_to() segments first"
            )
        return TimeUtilityFunction(
            priority=self._priority,
            urgency=self._urgency,
            utility_class=UtilityClass(
                intervals=tuple(self._intervals), name=self._name
            ),
        )
