"""Time-utility functions (paper Section IV-B1, Briceno et al. HCW 2011).

Each task type carries a monotonically non-increasing *time-utility
function* (TUF) built from three parameter sets:

* **priority** — the maximum utility the task can earn;
* **urgency** — the base rate at which utility decays with completion
  time;
* **utility characteristic class** — an ordered list of intervals, each
  spanning a begin/end percentage of maximum priority with its own
  urgency modifier and decay shape.

This package defines the interval/class/TUF value objects, compiles
them into breakpoint tables, and provides fully vectorized batch
evaluation for the simulator hot path.
"""

from repro.utility.intervals import DecayShape, UtilityClass, UtilityInterval
from repro.utility.presets import PresetCatalog, default_catalog, assign_presets
from repro.utility.tuf import CompiledTUF, TimeUtilityFunction
from repro.utility.vectorized import TUFTable

__all__ = [
    "DecayShape",
    "UtilityInterval",
    "UtilityClass",
    "TimeUtilityFunction",
    "CompiledTUF",
    "TUFTable",
    "PresetCatalog",
    "default_catalog",
    "assign_presets",
]
