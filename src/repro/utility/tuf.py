"""Time-utility functions and their compiled breakpoint form.

A :class:`TimeUtilityFunction` combines the three parameter sets of the
paper — priority, urgency, utility characteristic class — into the
monotone non-increasing function ``Υ(t)`` that returns the utility a
task earns when it completes ``t`` seconds after arrival.

For simulator throughput the function is *compiled* once into a
:class:`CompiledTUF`: arrays of time breakpoints plus per-segment
(shape, start value, rate) parameters, evaluated with
``np.searchsorted``.  Batch evaluation across many task types lives in
:mod:`repro.utility.vectorized`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Iterable, Union

import numpy as np

from repro.errors import UtilityFunctionError
from repro.types import FloatArray
from repro.utility.intervals import DecayShape, UtilityClass, UtilityInterval

__all__ = ["TimeUtilityFunction", "CompiledTUF", "SEGMENT_KIND"]

#: Integer codes for compiled segment kinds.
SEGMENT_KIND = {
    DecayShape.CONSTANT: 0,
    DecayShape.LINEAR: 1,
    DecayShape.EXPONENTIAL: 2,
}


@dataclass(frozen=True)
class CompiledTUF:
    """Breakpoint-table form of a TUF, for vectorized evaluation.

    Attributes
    ----------
    breakpoints:
        Ascending segment start times, length ``K`` with
        ``breakpoints[0] == 0``.  Times past the last segment earn the
        constant ``tail_value``.
    kinds:
        Integer segment kinds (see :data:`SEGMENT_KIND`), length ``K``.
    start_values:
        Utility value at each segment start, length ``K``.
    rates:
        Per-segment decay parameter: ``λ`` (1/s) for exponential
        segments, slope (utility/s) for linear segments, 0 for constant
        segments.  Length ``K``.
    durations:
        Segment time spans; ``durations[-1]`` may be ``inf`` only if the
        final segment is constant.
    tail_value:
        Utility earned at/after the end of the last segment.
    """

    breakpoints: FloatArray
    kinds: np.ndarray
    start_values: FloatArray
    rates: FloatArray
    durations: FloatArray
    tail_value: float

    @property
    def end_time(self) -> float:
        """Time after which utility is the constant tail value."""
        return float(self.breakpoints[-1] + self.durations[-1])

    def evaluate(self, elapsed: Union[float, FloatArray]) -> Union[float, FloatArray]:
        """Utility at the given elapsed time(s) since task arrival.

        Negative elapsed times are clamped to zero (a task cannot
        complete before it arrives; callers guard this, but clamping
        keeps the function total).
        """
        t = np.asarray(elapsed, dtype=np.float64)
        scalar = t.ndim == 0
        t = np.atleast_1d(np.maximum(t, 0.0))
        seg = np.searchsorted(self.breakpoints, t, side="right") - 1
        past = seg >= len(self.breakpoints) - 1
        # Clamp indices; the last segment handles its own overshoot.
        seg = np.clip(seg, 0, len(self.breakpoints) - 1)
        dt = t - self.breakpoints[seg]
        kind = self.kinds[seg]
        v0 = self.start_values[seg]
        rate = self.rates[seg]
        value = np.where(
            kind == SEGMENT_KIND[DecayShape.EXPONENTIAL],
            v0 * np.exp(-rate * dt),
            np.where(
                kind == SEGMENT_KIND[DecayShape.LINEAR],
                v0 - rate * dt,
                v0,
            ),
        )
        overshoot = dt > self.durations[seg]
        value = np.where(overshoot, self.tail_value, value)
        value = np.maximum(value, self.tail_value if self.tail_value > 0 else 0.0)
        del past  # readability: overshoot handles the tail uniformly
        return float(value[0]) if scalar else value


@dataclass(frozen=True)
class TimeUtilityFunction:
    """The paper's TUF: priority × utility-class shape at base urgency.

    Attributes
    ----------
    priority:
        Maximum utility the task can earn (> 0) — "how important a task
        is".
    urgency:
        Base decay rate (1/s for exponential intervals; fraction of
        priority per second for linear intervals) — "the rate of decay
        of utility ... as a function of completion time".
    utility_class:
        The interval structure (see :mod:`repro.utility.intervals`).
    """

    priority: float
    urgency: float
    utility_class: UtilityClass

    def __post_init__(self) -> None:
        if self.priority <= 0:
            raise UtilityFunctionError(f"priority must be > 0, got {self.priority}")
        if self.urgency <= 0:
            raise UtilityFunctionError(f"urgency must be > 0, got {self.urgency}")

    @cached_property
    def compiled(self) -> CompiledTUF:
        """Compile the interval structure into a breakpoint table."""
        breaks: list[float] = []
        kinds: list[int] = []
        v0s: list[float] = []
        rates: list[float] = []
        durations: list[float] = []
        t = 0.0
        for iv in self.utility_class.intervals:
            d = iv.derived_duration(self.urgency)
            breaks.append(t)
            kinds.append(SEGMENT_KIND[iv.shape])
            v0s.append(self.priority * iv.start_fraction)
            if iv.shape is DecayShape.EXPONENTIAL:
                rates.append(self.urgency * iv.urgency_modifier)
            elif iv.shape is DecayShape.LINEAR:
                # slope in utility units per second
                rates.append(self.urgency * iv.urgency_modifier * self.priority)
            else:
                rates.append(0.0)
            durations.append(d)
            t += d
        tail = self.priority * self.utility_class.final_fraction
        return CompiledTUF(
            breakpoints=np.asarray(breaks, dtype=np.float64),
            kinds=np.asarray(kinds, dtype=np.int64),
            start_values=np.asarray(v0s, dtype=np.float64),
            rates=np.asarray(rates, dtype=np.float64),
            durations=np.asarray(durations, dtype=np.float64),
            tail_value=tail,
        )

    # -- evaluation ------------------------------------------------------

    def __call__(self, elapsed: Union[float, FloatArray]) -> Union[float, FloatArray]:
        """``Υ`` evaluated at elapsed completion time(s) since arrival."""
        return self.compiled.evaluate(elapsed)

    @property
    def max_utility(self) -> float:
        """Utility for instantaneous completion (== priority)."""
        return self.priority

    @property
    def zero_utility_time(self) -> float:
        """Earliest elapsed time at which the minimum (tail) value is reached."""
        return self.compiled.end_time

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "priority": self.priority,
            "urgency": self.urgency,
            "utility_class": self.utility_class.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TimeUtilityFunction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            priority=data["priority"],
            urgency=data["urgency"],
            utility_class=UtilityClass.from_dict(data["utility_class"]),
        )

    # -- convenience constructors -----------------------------------------

    @classmethod
    def exponential(
        cls, priority: float, urgency: float, floor_fraction: float = 0.01
    ) -> "TimeUtilityFunction":
        """Single-interval exponential TUF decaying to a small floor."""
        return cls(priority, urgency, UtilityClass.single_exponential(floor_fraction))

    @classmethod
    def linear(cls, priority: float, urgency: float) -> "TimeUtilityFunction":
        """Single-interval linear TUF decaying to zero."""
        return cls(priority, urgency, UtilityClass.linear_to_zero())

    @classmethod
    def hard_deadline(
        cls, priority: float, deadline_seconds: float
    ) -> "TimeUtilityFunction":
        """Full priority until *deadline_seconds*, ~zero afterwards."""
        if deadline_seconds <= 0:
            raise UtilityFunctionError(
                f"deadline must be positive, got {deadline_seconds}"
            )
        return cls(
            priority,
            urgency=1.0,
            utility_class=UtilityClass.hard_deadline(deadline_seconds),
        )

    @classmethod
    def figure1_example(cls) -> "TimeUtilityFunction":
        """A staircase TUF matching the paper's Figure 1 spot checks.

        The figure shows a monotone staircase where a task completing at
        time 20 earns 12 units and one completing at time 47 earns 7.
        We realize it as constant plateaus at 12 and 7 over those times
        joined by steep linear drops from an initial maximum of 16.
        """
        # Fractions of priority 16: 1.0 -> 0.75 (=12) -> 0.4375 (=7) -> 0.
        return cls(
            priority=16.0,
            urgency=1.0,
            utility_class=UtilityClass(
                name="figure-1",
                intervals=(
                    UtilityInterval(1.0, 1.0, shape=DecayShape.CONSTANT, duration=10.0),
                    UtilityInterval(1.0, 0.75, 100.0, DecayShape.LINEAR),
                    UtilityInterval(0.75, 0.75, shape=DecayShape.CONSTANT, duration=20.0),
                    UtilityInterval(0.75, 0.4375, 100.0, DecayShape.LINEAR),
                    UtilityInterval(0.4375, 0.4375, shape=DecayShape.CONSTANT, duration=25.0),
                    UtilityInterval(0.4375, 0.0, 100.0, DecayShape.LINEAR),
                ),
            ),
        )
