"""Batch TUF evaluation across heterogeneous task types.

The simulator must evaluate, per chromosome, ``Υ_τ(completion −
arrival)`` for thousands of tasks whose types carry *different*
compiled TUFs.  :class:`TUFTable` stacks every task type's breakpoint
table into padded 2-D arrays so one evaluation is a handful of fancy
gathers — no Python-level loop over tasks (see the HPC guide's
"vectorizing for loops").

Layout: with ``K`` = max segments over all types, the table holds
``(num_types, K)`` arrays ``breakpoints``, ``kinds``, ``start_values``,
``rates``, ``durations``; rows are padded with repeats of the last real
segment so the search below never indexes padding with smaller times.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.errors import UtilityFunctionError
from repro.types import FloatArray, IntArray
from repro.utility.tuf import SEGMENT_KIND, TimeUtilityFunction
from repro.utility.intervals import DecayShape

__all__ = ["TUFTable"]

_KIND_EXP = SEGMENT_KIND[DecayShape.EXPONENTIAL]
_KIND_LIN = SEGMENT_KIND[DecayShape.LINEAR]


@dataclass(frozen=True)
class TUFTable:
    """Stacked compiled TUFs for all task types of a system."""

    breakpoints: FloatArray  # (num_types, K) segment start times
    kinds: np.ndarray  # (num_types, K) int codes
    start_values: FloatArray  # (num_types, K)
    rates: FloatArray  # (num_types, K)
    end_times: FloatArray  # (num_types,) time after which tail applies
    tail_values: FloatArray  # (num_types,)
    max_utilities: FloatArray  # (num_types,) value at elapsed == 0

    @classmethod
    def from_functions(
        cls, functions: Sequence[TimeUtilityFunction]
    ) -> "TUFTable":
        """Stack the compiled forms of *functions* (one per task type)."""
        if not functions:
            raise UtilityFunctionError("TUFTable requires >= 1 function")
        compiled = [f.compiled for f in functions]
        K = max(len(c.breakpoints) for c in compiled)
        n = len(compiled)
        breakpoints = np.empty((n, K), dtype=np.float64)
        kinds = np.empty((n, K), dtype=np.int64)
        start_values = np.empty((n, K), dtype=np.float64)
        rates = np.empty((n, K), dtype=np.float64)
        end_times = np.empty(n, dtype=np.float64)
        tail_values = np.empty(n, dtype=np.float64)
        max_utils = np.empty(n, dtype=np.float64)
        for i, c in enumerate(compiled):
            k = len(c.breakpoints)
            breakpoints[i, :k] = c.breakpoints
            kinds[i, :k] = c.kinds
            start_values[i, :k] = c.start_values
            rates[i, :k] = c.rates
            if k < K:
                # Pad with +inf start times: the segment search below can
                # never select padding because elapsed < inf always puts
                # the insertion point before it.
                breakpoints[i, k:] = np.inf
                kinds[i, k:] = 0
                start_values[i, k:] = c.tail_value
                rates[i, k:] = 0.0
            end_times[i] = c.end_time
            tail_values[i] = c.tail_value
            max_utils[i] = c.start_values[0]
        for arr in (breakpoints, kinds, start_values, rates, end_times,
                    tail_values, max_utils):
            arr.setflags(write=False)
        return cls(
            breakpoints=breakpoints,
            kinds=kinds,
            start_values=start_values,
            rates=rates,
            end_times=end_times,
            tail_values=tail_values,
            max_utilities=max_utils,
        )

    @classmethod
    def from_system(cls, system) -> "TUFTable":
        """Build the table from a system whose task types carry TUFs."""
        functions = []
        for tt in system.task_types:
            if tt.utility_function is None:
                raise UtilityFunctionError(
                    f"task type {tt.name!r} has no utility function; call "
                    "SystemModel.with_utility_functions first"
                )
            functions.append(tt.utility_function)
        return cls.from_functions(functions)

    @property
    def num_types(self) -> int:
        """Number of task types in the table."""
        return self.breakpoints.shape[0]

    @cached_property
    def tail_floors(self) -> FloatArray:
        """Per-type lower clamp: the tail value when positive, else 0."""
        floors = np.where(self.tail_values > 0, self.tail_values, 0.0)
        floors.setflags(write=False)
        return floors

    @cached_property
    def _fast(self) -> tuple:
        """Evaluation-ready layout with the tail folded in as a segment.

        Appending a constant segment ``(end_time, tail_value)`` after
        each type's real segments makes the tail a normal search result
        — the separate ``t >= end_time`` overwrite disappears.  The
        returned tuple holds per-column breakpoint arrays (for the
        additive segment search; all-inf columns dropped) and flattened
        parameter arrays indexed by ``type × Ke + segment``.
        """
        K = self.breakpoints.shape[1]
        n = self.num_types
        Ke = K + 1
        bp = np.full((n, Ke), np.inf)
        kd = np.full((n, Ke), -1, dtype=np.int64)  # -1 = constant
        sv = np.empty((n, Ke))
        rt = np.zeros((n, Ke))
        for i in range(n):
            pad = np.flatnonzero(np.isinf(self.breakpoints[i]))
            k = int(pad[0]) if pad.size else K
            bp[i, :k] = self.breakpoints[i, :k]
            kd[i, :k] = self.kinds[i, :k]
            sv[i, :k] = self.start_values[i, :k]
            rt[i, :k] = self.rates[i, :k]
            bp[i, k] = self.end_times[i]
            sv[i, k:] = self.tail_values[i]
        cols = []
        for k in range(1, Ke):  # breakpoints are nondecreasing per row,
            col = np.ascontiguousarray(bp[:, k])  # so inf columns trail
            if np.isinf(col).all():
                break
            cols.append(col)
        return (tuple(cols), Ke, bp.ravel(), sv.ravel(), rt.ravel(), kd.ravel())

    def evaluate(self, task_types: IntArray, elapsed: FloatArray) -> FloatArray:
        """Utility for each task given its type and elapsed completion time.

        Parameters
        ----------
        task_types:
            ``(T,)`` int array of task-type indices.
        elapsed:
            ``(T,)`` float array of ``completion − arrival`` seconds.

        Returns
        -------
        ``(T,)`` float array of utilities.
        """
        task_types = np.asarray(task_types, dtype=np.int64)
        t = np.maximum(np.asarray(elapsed, dtype=np.float64), 0.0)
        if task_types.shape != t.shape:
            raise UtilityFunctionError(
                f"task_types shape {task_types.shape} does not match elapsed "
                f"shape {t.shape}"
            )
        cols, Ke, bp_flat, sv_flat, rt_flat, kd_flat = self._fast
        # Segment index = count of breakpoints <= t, accumulated one
        # (num_types,)-gathered column at a time — no (n, K) temporary.
        # The folded-in tail segment makes end-of-life a search result.
        seg = np.zeros(t.shape, dtype=np.int64)
        for col in cols:
            seg += np.take(col, task_types) <= t
        lin = task_types * Ke + seg
        dt = t - np.take(bp_flat, lin)
        kind = np.take(kd_flat, lin)
        v0 = np.take(sv_flat, lin)
        rate = np.take(rt_flat, lin)
        # Linear/constant first; the transcendental exp only where an
        # exponential segment was actually selected (same values as the
        # everywhere-exp formulation, element for element).
        value = np.where(kind == _KIND_LIN, v0 - rate * dt, v0)
        exp_mask = kind == _KIND_EXP
        if exp_mask.any():
            value[exp_mask] = v0[exp_mask] * np.exp(
                -rate[exp_mask] * dt[exp_mask]
            )
        return np.maximum(value, np.take(self.tail_floors, task_types))

    def utility_upper_bound(self, task_types: IntArray) -> float:
        """Sum of maximum utilities — the unreachable ideal ``U``."""
        return float(self.max_utilities[np.asarray(task_types, dtype=np.int64)].sum())
