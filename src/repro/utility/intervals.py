"""Utility characteristic classes — the interval structure of a TUF.

The paper (Section IV-B1): *"Utility characteristic class allows the
utility function to be separated into discrete intervals. Each interval
can have a beginning and ending percentage of maximum priority, as well
as an urgency modifier to control the rate of decay of utility."*

An interval therefore spans utility *values* (fractions of priority),
not times; the time span of each interval is derived from the decay
shape, urgency, and the modifier when the TUF is compiled.  Three decay
shapes are supported:

* ``EXPONENTIAL`` — value decays as ``v0 * exp(-λ Δt)`` with
  ``λ = urgency × modifier``; requires a strictly positive end fraction
  (the exponential never reaches zero in finite time).
* ``LINEAR`` — value decays at ``urgency × modifier × priority`` units
  per second; may reach zero.
* ``CONSTANT`` — value holds for an explicit ``duration``; start and
  end fractions must be equal.  Used for grace periods before decay and
  for staircase TUFs such as the paper's Figure 1.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import UtilityFunctionError

__all__ = ["DecayShape", "UtilityInterval", "UtilityClass"]

_FRACTION_TOL = 1e-12


class DecayShape(enum.Enum):
    """How utility decays across one interval of a utility class."""

    EXPONENTIAL = "exponential"
    LINEAR = "linear"
    CONSTANT = "constant"


@dataclass(frozen=True, slots=True)
class UtilityInterval:
    """One interval of a utility characteristic class.

    Attributes
    ----------
    start_fraction:
        Utility value at the start of the interval, as a fraction of
        maximum priority (``1.0`` = full priority).
    end_fraction:
        Utility value at the end of the interval, same units.
    urgency_modifier:
        Multiplier applied to the task's base urgency inside this
        interval (> 0 for decaying shapes; ignored for CONSTANT).
    shape:
        Decay shape within the interval.
    duration:
        Required for CONSTANT intervals (seconds the value holds);
        must be ``None`` for decaying shapes, whose durations are
        derived at compile time.
    """

    start_fraction: float
    end_fraction: float
    urgency_modifier: float = 1.0
    shape: DecayShape = DecayShape.EXPONENTIAL
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.end_fraction <= self.start_fraction <= 1.0 + _FRACTION_TOL):
            raise UtilityFunctionError(
                "interval fractions must satisfy 0 <= end <= start <= 1; got "
                f"start={self.start_fraction}, end={self.end_fraction}"
            )
        if self.shape is DecayShape.CONSTANT:
            if abs(self.start_fraction - self.end_fraction) > _FRACTION_TOL:
                raise UtilityFunctionError(
                    "CONSTANT interval must have equal start and end fractions; "
                    f"got {self.start_fraction} -> {self.end_fraction}"
                )
            if self.duration is None or self.duration <= 0:
                raise UtilityFunctionError(
                    "CONSTANT interval requires a positive duration"
                )
        else:
            if self.duration is not None:
                raise UtilityFunctionError(
                    f"{self.shape.value} interval must not set duration "
                    "(it is derived from urgency)"
                )
            if self.urgency_modifier <= 0:
                raise UtilityFunctionError(
                    "decaying interval requires urgency_modifier > 0; got "
                    f"{self.urgency_modifier}"
                )
            if self.start_fraction - self.end_fraction <= _FRACTION_TOL:
                raise UtilityFunctionError(
                    "decaying interval must strictly decrease; use CONSTANT "
                    "for flat segments"
                )
        if self.shape is DecayShape.EXPONENTIAL and self.end_fraction <= 0.0:
            raise UtilityFunctionError(
                "EXPONENTIAL interval cannot end at zero utility in finite "
                "time; use a LINEAR interval to reach zero"
            )

    def derived_duration(self, urgency: float) -> float:
        """Time (seconds) this interval spans for a given base urgency.

        * exponential: ``ln(start/end) / (urgency × modifier)``
        * linear: ``(start − end) / (urgency × modifier)`` — the linear
          rate is ``urgency × modifier`` fractions of priority/second.
        * constant: the explicit duration.
        """
        if self.shape is DecayShape.CONSTANT:
            assert self.duration is not None
            return self.duration
        if urgency <= 0:
            raise UtilityFunctionError(f"urgency must be > 0, got {urgency}")
        rate = urgency * self.urgency_modifier
        if self.shape is DecayShape.EXPONENTIAL:
            return math.log(self.start_fraction / self.end_fraction) / rate
        return (self.start_fraction - self.end_fraction) / rate

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "start_fraction": self.start_fraction,
            "end_fraction": self.end_fraction,
            "urgency_modifier": self.urgency_modifier,
            "shape": self.shape.value,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "UtilityInterval":
        """Inverse of :meth:`to_dict`."""
        return cls(
            start_fraction=data["start_fraction"],
            end_fraction=data["end_fraction"],
            urgency_modifier=data.get("urgency_modifier", 1.0),
            shape=DecayShape(data["shape"]),
            duration=data.get("duration"),
        )


@dataclass(frozen=True, slots=True)
class UtilityClass:
    """An ordered, contiguous sequence of utility intervals.

    Contract (validated): the first interval starts at fraction 1.0,
    consecutive intervals are value-contiguous (interval *i*+1 starts
    where interval *i* ends), and fractions are non-increasing
    throughout — making every TUF built from the class monotone
    non-increasing by construction.
    """

    intervals: tuple[UtilityInterval, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if not self.intervals:
            raise UtilityFunctionError("utility class requires >= 1 interval")
        first = self.intervals[0]
        if abs(first.start_fraction - 1.0) > _FRACTION_TOL:
            raise UtilityFunctionError(
                "first interval must start at fraction 1.0 (full priority); "
                f"got {first.start_fraction}"
            )
        for prev, nxt in zip(self.intervals, self.intervals[1:]):
            if abs(prev.end_fraction - nxt.start_fraction) > 1e-9:
                raise UtilityFunctionError(
                    "intervals must be value-contiguous: interval ending at "
                    f"{prev.end_fraction} followed by one starting at "
                    f"{nxt.start_fraction}"
                )

    @property
    def final_fraction(self) -> float:
        """Residual utility fraction after the last interval elapses."""
        return self.intervals[-1].end_fraction

    def total_duration(self, urgency: float) -> float:
        """Total time span of all intervals at the given base urgency."""
        return sum(iv.derived_duration(urgency) for iv in self.intervals)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "name": self.name,
            "intervals": [iv.to_dict() for iv in self.intervals],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "UtilityClass":
        """Inverse of :meth:`to_dict`."""
        return cls(
            intervals=tuple(
                UtilityInterval.from_dict(d) for d in data["intervals"]
            ),
            name=data.get("name", "custom"),
        )

    # -- common shapes ---------------------------------------------------

    @classmethod
    def single_exponential(cls, floor_fraction: float = 0.01) -> "UtilityClass":
        """One exponential interval decaying to *floor_fraction*."""
        return cls(
            intervals=(
                UtilityInterval(1.0, floor_fraction, 1.0, DecayShape.EXPONENTIAL),
            ),
            name="single-exponential",
        )

    @classmethod
    def linear_to_zero(cls) -> "UtilityClass":
        """One linear interval decaying from full priority to zero."""
        return cls(
            intervals=(UtilityInterval(1.0, 0.0, 1.0, DecayShape.LINEAR),),
            name="linear-to-zero",
        )

    @classmethod
    def hard_deadline(cls, hold_seconds: float) -> "UtilityClass":
        """Full utility for *hold_seconds*, then an immediate drop to zero.

        The drop is modeled as a steep linear interval (modifier 1000x),
        keeping the function finite-valued and monotone.
        """
        return cls(
            intervals=(
                UtilityInterval(
                    1.0, 1.0, shape=DecayShape.CONSTANT, duration=hold_seconds
                ),
                UtilityInterval(1.0, 0.0, 1000.0, DecayShape.LINEAR),
            ),
            name="hard-deadline",
        )
