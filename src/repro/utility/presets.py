"""Policy catalogue of TUF presets and assignment to task types.

The paper does not publish the numeric priority/urgency/class values
used in the ESSC experiments ("determined by system administrators ...
policy decisions"), only their structure.  This module provides a
catalogue of presets spanning that structure — three priority levels,
three urgency levels, and four characteristic-class shapes — and a
seeded assignment of presets to task types, so experiments are fully
reproducible while exercising the full TUF shape family.

Urgency values are scaled relative to the workload's time horizon: an
urgency of ``k / horizon`` makes utility decay by a factor of ``e^k``
across the trace window, which is the regime in which the
utility/energy trade-off is non-trivial (decay too slow and every
allocation earns full utility; too fast and none does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from repro.errors import UtilityFunctionError
from repro.rng import SeedLike, ensure_rng
from repro.utility.intervals import DecayShape, UtilityClass, UtilityInterval
from repro.utility.tuf import TimeUtilityFunction

__all__ = ["PresetCatalog", "default_catalog", "assign_presets"]

#: Priority levels: (name, max utility).
PRIORITY_LEVELS: tuple[tuple[str, float], ...] = (
    ("high", 8.0),
    ("medium", 4.0),
    ("low", 1.0),
)

#: Urgency levels as multiples of 1/horizon: (name, k).
URGENCY_LEVELS: tuple[tuple[str, float], ...] = (
    ("urgent", 8.0),
    ("steady", 3.0),
    ("relaxed", 1.0),
)


def _class_shapes() -> tuple[tuple[str, UtilityClass], ...]:
    """The four characteristic-class shapes in the catalogue."""
    two_phase = UtilityClass(
        name="two-phase",
        intervals=(
            UtilityInterval(1.0, 0.5, 1.0, DecayShape.EXPONENTIAL),
            UtilityInterval(0.5, 0.05, 3.0, DecayShape.EXPONENTIAL),
        ),
    )
    grace_then_decay = UtilityClass(
        name="grace-then-decay",
        intervals=(
            UtilityInterval(1.0, 1.0, shape=DecayShape.CONSTANT, duration=30.0),
            UtilityInterval(1.0, 0.02, 1.0, DecayShape.EXPONENTIAL),
        ),
    )
    return (
        ("single-exponential", UtilityClass.single_exponential(0.01)),
        ("linear-to-zero", UtilityClass.linear_to_zero()),
        ("two-phase", two_phase),
        ("grace-then-decay", grace_then_decay),
    )


@dataclass(frozen=True)
class PresetCatalog:
    """All (priority, urgency, class) combinations available for assignment."""

    functions: tuple[TimeUtilityFunction, ...]
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.functions) != len(self.names):
            raise UtilityFunctionError("catalogue functions/names length mismatch")
        if not self.functions:
            raise UtilityFunctionError("catalogue must be non-empty")

    def __len__(self) -> int:
        return len(self.functions)

    def __getitem__(self, i: int) -> TimeUtilityFunction:
        return self.functions[i]


def default_catalog(horizon_seconds: float) -> PresetCatalog:
    """Build the default preset catalogue for a trace window length.

    Parameters
    ----------
    horizon_seconds:
        The workload window (e.g. 900 s for the paper's 15-minute
        traces); urgencies are expressed relative to it.
    """
    if horizon_seconds <= 0:
        raise UtilityFunctionError(
            f"horizon must be positive, got {horizon_seconds}"
        )
    functions: list[TimeUtilityFunction] = []
    names: list[str] = []
    for pname, priority in PRIORITY_LEVELS:
        for uname, k in URGENCY_LEVELS:
            urgency = k / horizon_seconds
            for cname, uclass in _class_shapes():
                functions.append(
                    TimeUtilityFunction(
                        priority=priority, urgency=urgency, utility_class=uclass
                    )
                )
                names.append(f"{pname}/{uname}/{cname}")
    return PresetCatalog(functions=tuple(functions), names=tuple(names))


def assign_presets(
    num_task_types: int,
    horizon_seconds: float,
    seed: SeedLike = None,
    catalog: PresetCatalog | None = None,
) -> list[TimeUtilityFunction]:
    """Assign one preset TUF to each of *num_task_types* task types.

    Assignment is uniform over the catalogue from a seeded stream, so a
    given ``(num_task_types, horizon, seed)`` triple always produces the
    same policy — the reproducibility contract the experiments rely on.
    """
    if num_task_types <= 0:
        raise UtilityFunctionError(
            f"num_task_types must be positive, got {num_task_types}"
        )
    rng = ensure_rng(seed)
    cat = catalog if catalog is not None else default_catalog(horizon_seconds)
    picks = rng.integers(0, len(cat), size=num_task_types)
    return [cat[int(i)] for i in picks]
