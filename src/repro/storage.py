"""Durable JSON artifact IO.

Long experiments write results and checkpoints that must survive the
process dying at any instant.  Two failure modes matter:

* **torn writes** — a crash mid-``write_text`` leaves a truncated file
  where a valid artifact used to be.  :func:`atomic_write_json` writes
  to a temporary file in the destination directory, fsyncs it, and
  ``os.replace``\\ s it into place, so readers only ever observe the old
  or the new complete artifact;
* **silent corruption** — a complete-looking file whose payload was
  scribbled over (bad disk, concurrent writer, manual edit).  Every
  artifact carries a SHA-256 checksum of its serialized payload;
  :func:`read_json_artifact` verifies it and raises
  :class:`~repro.errors.CorruptArtifactError` on mismatch, keeping
  "artifact is damaged" distinct from "artifact does not exist"
  (``FileNotFoundError``, which callers translate into their own
  missing-artifact errors).

Legacy artifacts written before checksumming (a bare JSON document with
no envelope) still load, unchecked.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Union

from repro.errors import CorruptArtifactError

__all__ = [
    "WriteReceipt",
    "payload_checksum",
    "atomic_write_json",
    "read_json_artifact",
]

#: Envelope format tag; bump on incompatible envelope changes.
ENVELOPE_FORMAT = "repro.artifact/1"


def payload_checksum(payload_text: str) -> str:
    """SHA-256 hex digest of the serialized payload."""
    return hashlib.sha256(payload_text.encode("utf-8")).hexdigest()


def _serialize_payload(payload: Any) -> str:
    # allow_nan=False: NaN/Infinity are not valid JSON, and a payload
    # containing them would not re-serialize identically on verify.
    return json.dumps(payload, allow_nan=False)


@dataclass(frozen=True, slots=True)
class WriteReceipt:
    """What one durable write cost: envelope bytes and fsync latency."""

    bytes_written: int
    fsync_seconds: float


def atomic_write_json(path: Union[str, Path], payload: Any) -> WriteReceipt:
    """Write *payload* as a checksummed JSON artifact, atomically.

    The document on disk is an envelope
    ``{"format": ..., "checksum": sha256(payload_json), "payload": ...}``
    written via a same-directory temporary file and ``os.replace`` so a
    crash never leaves a truncated artifact at *path*.  Returns a
    :class:`WriteReceipt` so callers (checkpoint metrics) can account
    for bytes written and fsync latency without re-statting the file.
    """
    path = Path(path)
    payload_text = _serialize_payload(payload)
    doc = (
        f'{{"format": "{ENVELOPE_FORMAT}", '
        f'"checksum": "{payload_checksum(payload_text)}", '
        f'"payload": {payload_text}}}'
    )
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(doc)
            handle.flush()
            t0 = time.perf_counter()
            os.fsync(handle.fileno())
            fsync_seconds = time.perf_counter() - t0
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    receipt = WriteReceipt(
        bytes_written=len(doc.encode("utf-8")), fsync_seconds=fsync_seconds
    )
    # Best-effort directory fsync so the rename itself is durable.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return receipt
    try:
        t0 = time.perf_counter()
        os.fsync(dir_fd)
        receipt = WriteReceipt(
            bytes_written=receipt.bytes_written,
            fsync_seconds=fsync_seconds + (time.perf_counter() - t0),
        )
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return receipt


def read_json_artifact(path: Union[str, Path]) -> Any:
    """Load and verify an artifact written by :func:`atomic_write_json`.

    Returns the payload.  Raises ``FileNotFoundError`` when *path* does
    not exist and :class:`~repro.errors.CorruptArtifactError` when it
    exists but is undecodable or fails its checksum.  Bare (legacy,
    pre-envelope) JSON documents are returned as-is, unchecked.
    """
    path = Path(path)
    text = path.read_text()  # FileNotFoundError propagates deliberately
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise CorruptArtifactError(
            f"artifact {path} is not decodable JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or "checksum" not in doc:
        return doc  # legacy artifact without an integrity envelope
    if "payload" not in doc:
        raise CorruptArtifactError(
            f"artifact {path} has a checksum but no payload"
        )
    payload = doc["payload"]
    try:
        actual = payload_checksum(_serialize_payload(payload))
    except ValueError as exc:
        raise CorruptArtifactError(
            f"artifact {path} payload is not re-serializable: {exc}"
        ) from exc
    if actual != doc["checksum"]:
        raise CorruptArtifactError(
            f"artifact {path} failed its integrity check: stored checksum "
            f"{doc['checksum']!r} != computed {actual!r}"
        )
    return payload
