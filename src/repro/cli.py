"""``repro-analyze`` — command-line front end.

Subcommands:

* ``tables`` — print Tables I, II, III.
* ``figure`` — reproduce one of Figures 3/4/5/6 (optionally save JSON
  results, tidy CSV, and per-subplot SVG plots).
* ``seeds`` — evaluate the four seeding heuristics on a data set.
* ``datagen`` — expand the historical matrices and report the
  heterogeneity preservation (mvsk of real vs synthetic).
* ``system`` — describe a data set's system and save it as JSON.
* ``gantt`` — render a heuristic's schedule as a text Gantt chart.
* ``repetitions`` — run R independent optimizer repetitions and report
  attainment surfaces and hypervolume spread.
* ``resume`` — continue an interrupted ``report`` experiment from its
  durable optimizer checkpoints (see docs/fault_tolerance.md).
* ``portfolio`` — run every registered algorithm head-to-head on one
  data set and score the fronts against the exact contention-free
  baseline (see docs/algorithms.md).
* ``trace`` — summarize a recorded observability directory (slowest
  spans, GA stage breakdown, cache hit rate, retry/fault timeline; see
  docs/observability.md).
* ``grid`` — inspect (``status``) or re-drive (``resume``,
  ``retry-quarantined``) a durable grid directory written via
  ``--grid-dir`` (see docs/fault_tolerance.md).

Execution subcommands (``report``, ``resume``, ``reproduce-all``,
``repetitions``) accept ``--obs-dir`` to record a run-scoped trace /
metrics / event-log directory, ``--obs-level`` to pick its detail
level (``debug`` adds per-generation stage spans), and ``--algorithm``
to choose the optimizer from the portfolio registry.  ``report``,
``repetitions``, and ``portfolio`` accept ``--grid-dir`` to journal
every cell into a durable manifest so an interrupted sweep can be
re-driven with ``repro-analyze grid resume``.

Examples::

    repro-analyze tables
    repro-analyze figure --name figure3 --scale 0.01 --plot
    repro-analyze seeds --dataset 2
    repro-analyze datagen --new-task-types 25 --seed 7
    repro-analyze report --dataset 1 --obs-dir obs/run1
    repro-analyze report --dataset 1 --algorithm spea2
    repro-analyze portfolio --dataset 1 --generations 20
    repro-analyze repetitions --dataset 1 --workers 4 --grid-dir grids/r1
    repro-analyze grid status grids/r1
    repro-analyze grid resume grids/r1 --workers 4
    repro-analyze trace obs/run1
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


from repro.analysis.report import format_table
from repro.core.registry import available_algorithms
from repro.data.heterogeneity import mvsk
from repro.data.historical import HISTORICAL_EPC, HISTORICAL_ETC
from repro.data.synthetic import expand_matrix_pair
from repro.experiments.datasets import dataset1, dataset2, dataset3
from repro.experiments.figures import figure3, figure4, figure5, figure6
from repro.experiments.io import save_figure_result
from repro.experiments.tables import render_table1, render_table2, render_table3
from repro.heuristics import SEEDING_HEURISTICS
from repro.model.serialization import save_system
from repro.sim.evaluator import DEFAULT_KERNEL_METHOD, ScheduleEvaluator

__all__ = ["main"]

_DATASETS = {"1": dataset1, "2": dataset2, "3": dataset3}
_FIGURES = {"figure3": figure3, "figure4": figure4, "figure6": figure6}

_OBS_LEVELS = ("debug", "info", "warning", "error")


def _obs_from_args(args: argparse.Namespace, **fields):
    """Build a RunContext from ``--obs-dir``/``--obs-level`` (or None)."""
    obs_dir = getattr(args, "obs_dir", None)
    if obs_dir is None:
        return None
    from repro.obs import RunContext

    return RunContext.create(
        obs_dir=obs_dir, level=getattr(args, "obs_level", "info"), **fields
    )


def _flush_obs(obs) -> None:
    if obs is not None:
        out = obs.flush()
        if out is not None:
            print(f"observability artifacts: {out}")


def _cmd_tables(_args: argparse.Namespace) -> int:
    print(render_table1())
    print()
    print(render_table2())
    print()
    print(render_table3())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name == "figure5":
        fig5 = figure5(scale=args.scale, base_seed=args.seed)
        print(fig5.render())
        return 0
    driver = _FIGURES[args.name]
    result = driver(scale=args.scale, base_seed=args.seed)
    print(result.render(plot=args.plot))
    if args.output:
        save_figure_result(result, args.output)
        print(f"\nsaved: {args.output}")
    if args.csv:
        from repro.analysis.export import figure_to_csv

        figure_to_csv(result, args.csv)
        print(f"saved: {args.csv}")
    if args.svg_dir:
        from repro.analysis.export import figure_to_svg

        for path in figure_to_svg(result, args.svg_dir):
            print(f"saved: {path}")
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.heuristics import SEEDING_HEURISTICS as _H
    from repro.sim.events import simulate_reference
    from repro.sim.gantt import render_gantt

    bundle = _DATASETS[args.dataset](args.seed)
    heuristic = _H[args.heuristic]()
    alloc = heuristic.build(bundle.system, bundle.trace)
    ref = simulate_reference(bundle.system, bundle.trace, alloc)
    print(
        f"{heuristic.name} on {bundle.name}: energy "
        f"{ref.energy / 1e6:.3f} MJ, utility {ref.utility:.1f}"
    )
    print(render_gantt(ref, system=bundle.system, width=args.width,
                       max_machines=args.max_machines))
    return 0


def _cmd_report(args: argparse.Namespace, resume: bool = False) -> int:
    from repro.analysis.summary import experiment_report
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import RetryPolicy, run_seeded_populations

    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    grid_dir = getattr(args, "grid_dir", None)
    if resume and checkpoint_dir is None and grid_dir is None:
        print("resume requires --checkpoint-dir or --grid-dir",
              file=sys.stderr)
        return 2
    bundle = _DATASETS[args.dataset](args.seed)
    config = ExperimentConfig.for_paper_checkpoints(
        [100, 1000, 10000],
        scale=args.scale,
        population_size=args.population,
        base_seed=args.seed,
        algorithm=args.algorithm,
        kernel_method=args.kernel_method,
    )
    obs = _obs_from_args(args, command="resume" if resume else "report",
                         seed=args.seed)
    try:
        result = run_seeded_populations(
            bundle,
            config,
            workers=args.workers,
            transport=args.transport,
            retry=RetryPolicy(max_attempts=args.max_attempts,
                              timeout=args.timeout),
            strict=args.strict,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            grid_dir=grid_dir,
            obs=obs,
        )
    finally:
        _flush_obs(obs)
    print(experiment_report(result))
    for failure in result.failures:
        print(
            f"FAILED population {failure.label!r} after {failure.attempts} "
            f"attempt(s): {failure.error}",
            file=sys.stderr,
        )
    return 1 if result.failures else 0


def _cmd_resume(args: argparse.Namespace) -> int:
    return _cmd_report(args, resume=True)


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    from repro.experiments.reproduce import reproduce_all

    obs = _obs_from_args(args, command="reproduce-all", seed=args.seed)
    try:
        reproduce_all(
            args.output,
            scale=args.scale,
            base_seed=args.seed,
            population_size=args.population,
            workers=args.workers,
            transport=args.transport,
            algorithm=args.algorithm,
            kernel_method=args.kernel_method,
            obs=obs,
        )
    finally:
        _flush_obs(obs)
    return 0


def _cmd_repetitions(args: argparse.Namespace) -> int:
    from repro.experiments.repetitions import run_repetitions

    bundle = _DATASETS[args.dataset](args.seed)
    obs = _obs_from_args(args, command="repetitions", seed=args.seed)
    try:
        result = run_repetitions(
            bundle,
            repetitions=args.repetitions,
            generations=args.generations,
            population_size=args.population,
            seed_label=args.population_label,
            base_seed=args.seed,
            workers=args.workers,
            transport=args.transport,
            algorithm=args.algorithm,
            kernel_method=args.kernel_method,
            grid_dir=getattr(args, "grid_dir", None),
            obs=obs,
        )
    finally:
        _flush_obs(obs)
    rows = []
    for name in ("best", "median", "worst"):
        surface = result.attainment[name]
        rows.append(
            [
                name,
                surface.size,
                f"{surface.energy_range[0] / 1e6:.3f}-"
                f"{surface.energy_range[1] / 1e6:.3f}",
                f"{surface.utility_range[0]:.1f}-"
                f"{surface.utility_range[1]:.1f}",
            ]
        )
    print(
        format_table(
            ["attainment", "points", "energy (MJ)", "utility"],
            rows,
            title=f"{args.repetitions} {args.algorithm} repetitions of the "
            f"'{args.population_label}' population on {bundle.name}",
        )
    )
    hv = result.hypervolume
    print(
        f"hypervolume: mean {hv.mean:.4g} +- {hv.std:.2g} "
        f"(range {hv.minimum:.4g}..{hv.maximum:.4g})"
    )
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.portfolio import run_portfolio

    bundle = _DATASETS[args.dataset](args.seed)
    config = ExperimentConfig(
        population_size=args.population,
        generations=args.generations,
        checkpoints=(args.generations,),
        base_seed=args.seed,
        kernel_method=args.kernel_method,
    )
    obs = _obs_from_args(args, command="portfolio", seed=args.seed)
    try:
        result = run_portfolio(
            bundle,
            config,
            algorithms=args.algorithms,
            exact_epsilon=None if args.no_exact else args.exact_epsilon,
            grid_dir=getattr(args, "grid_dir", None),
            obs=obs,
        )
    finally:
        _flush_obs(obs)
    print(result.render())
    best = result.comparison.best_by_hypervolume()
    print(f"best hypervolume: {best.algorithm} ({best.hypervolume:.4g})")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from repro.errors import GridManifestError
    from repro.experiments.grid import grid_status, render_status, resume_grid

    try:
        if args.grid_command == "status":
            print(render_status(grid_status(args.grid_dir)))
            return 0
        if args.grid_command == "watch":
            from repro.obs.watch import watch_grid

            try:
                snapshot = watch_grid(
                    args.grid_dir,
                    obs_dir=args.obs_dir,
                    once=args.once,
                    interval=args.interval,
                    prom_path=args.prom,
                )
            except KeyboardInterrupt:
                return 130
            counts = snapshot.get("counts", {})
            done = counts.get("done", 0)
            return 0 if done == snapshot.get("total") else 1
        from repro.experiments.runner import RetryPolicy

        obs = _obs_from_args(args, command=f"grid-{args.grid_command}")
        try:
            resume_grid(
                args.grid_dir,
                workers=args.workers,
                transport=args.transport,
                retry=RetryPolicy(max_attempts=args.max_attempts,
                                  timeout=args.timeout),
                retry_quarantined=args.grid_command == "retry-quarantined",
                obs=obs,
            )
        finally:
            _flush_obs(obs)
        status = grid_status(args.grid_dir)
        print(render_status(status))
        return 0 if status.complete else 1
    except GridManifestError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_seeds(args: argparse.Namespace) -> int:
    bundle = _DATASETS[args.dataset](args.seed)
    evaluator = ScheduleEvaluator(bundle.system, bundle.trace)
    rows = []
    for name, cls in SEEDING_HEURISTICS.items():
        energy, utility = evaluator.objectives(cls().build(bundle.system, bundle.trace))
        rows.append([name, f"{energy / 1e6:.4f}", f"{utility:.2f}",
                     f"{utility / energy * 1e6:.3f}"])
    print(
        format_table(
            ["heuristic", "energy (MJ)", "utility", "utility/MJ"],
            rows,
            title=f"Seeding heuristics on {bundle.name} "
            f"({bundle.num_tasks} tasks, {bundle.system.num_machines} machines)",
        )
    )
    return 0


def _cmd_datagen(args: argparse.Namespace) -> int:
    etc_exp, epc_exp = expand_matrix_pair(
        HISTORICAL_ETC, HISTORICAL_EPC, args.new_task_types, seed=args.seed
    )
    rows = []
    for label, exp in (("ETC", etc_exp), ("EPC", epc_exp)):
        real = exp.row_average_stats
        synth = mvsk(exp.new_rows().mean(axis=1))
        rows.append([f"{label} real rows", f"{real.mean:.2f}", f"{real.cov:.3f}",
                     f"{real.skewness:.3f}", f"{real.kurtosis:.3f}"])
        rows.append([f"{label} synthetic rows", f"{synth.mean:.2f}", f"{synth.cov:.3f}",
                     f"{synth.skewness:.3f}", f"{synth.kurtosis:.3f}"])
    print(
        format_table(
            ["collection (row averages)", "mean", "CV", "skewness", "kurtosis"],
            rows,
            title=f"Heterogeneity preservation, {args.new_task_types} new task types",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs import trace_report, validate_run_dir
    from repro.obs.report import resolve_run_dir

    if args.validate:
        # Parallel runs: validate the collector's merged multi-process
        # view when one exists (strictly more complete than the
        # coordinator-only artifacts).
        run_dir = resolve_run_dir(args.run_dir)
        problems = validate_run_dir(run_dir)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        print(f"{run_dir}: valid observability directory")
        return 0
    try:
        print(trace_report(args.run_dir, top=args.top))
    except ObservabilityError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    bundle = _DATASETS[args.dataset](args.seed)
    print(bundle.system.describe())
    print(f"trace: {bundle.num_tasks} tasks over {bundle.horizon_seconds:.0f} s")
    if args.output:
        save_system(bundle.system, args.output)
        print(f"saved: {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Utility/energy trade-off analysis framework "
        "(Friese et al., IPDPSW 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I, II, III")

    p_fig = sub.add_parser("figure", help="reproduce a paper figure")
    p_fig.add_argument(
        "--name", choices=["figure3", "figure4", "figure5", "figure6"],
        default="figure3",
    )
    p_fig.add_argument("--scale", type=float, default=None,
                       help="generation scale vs paper (default: REPRO_SCALE or 0.002)")
    p_fig.add_argument("--seed", type=int, default=2013)
    p_fig.add_argument("--plot", action="store_true", help="ASCII scatter plots")
    p_fig.add_argument("--output", default=None, help="save result JSON here")
    p_fig.add_argument("--csv", default=None, help="save tidy CSV here")
    p_fig.add_argument("--svg-dir", default=None,
                       help="write per-subplot SVG plots into this directory")

    p_seeds = sub.add_parser("seeds", help="evaluate the seeding heuristics")
    p_seeds.add_argument("--dataset", choices=["1", "2", "3"], default="1")
    p_seeds.add_argument("--seed", type=int, default=2013)

    p_gen = sub.add_parser("datagen", help="synthetic-data heterogeneity check")
    p_gen.add_argument("--new-task-types", type=int, default=25)
    p_gen.add_argument("--seed", type=int, default=2013)

    p_sys = sub.add_parser("system", help="describe / export a data set system")
    p_sys.add_argument("--dataset", choices=["1", "2", "3"], default="1")
    p_sys.add_argument("--seed", type=int, default=2013)
    p_sys.add_argument("--output", default=None, help="save system JSON here")

    p_gantt = sub.add_parser("gantt", help="text Gantt chart of a heuristic schedule")
    p_gantt.add_argument("--dataset", choices=["1", "2", "3"], default="1")
    p_gantt.add_argument(
        "--heuristic",
        choices=sorted(SEEDING_HEURISTICS),
        default="min-min-completion-time",
    )
    p_gantt.add_argument("--seed", type=int, default=2013)
    p_gantt.add_argument("--width", type=int, default=100)
    p_gantt.add_argument("--max-machines", type=int, default=None)

    def _add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--obs-dir", default=None,
                       help="record a run-scoped observability directory "
                       "(trace.jsonl, events.jsonl, metrics.json/.prom) "
                       "readable by 'repro-analyze trace'")
        p.add_argument("--obs-level", choices=_OBS_LEVELS, default="info",
                       help="observability detail; 'debug' adds "
                       "per-generation stage spans")

    def _add_algorithm_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--algorithm", choices=available_algorithms(),
                       default="nsga2",
                       help="optimizer from the portfolio registry "
                       "(default: nsga2)")

    def _add_kernel_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--kernel-method",
                       choices=["fast", "reference", "batch",
                                "batch-reference"],
                       default=DEFAULT_KERNEL_METHOD,
                       help="evaluation kernel: the population-at-once "
                       "'batch' kernel with queue-state reuse (default) "
                       "and its scalar oracle 'batch-reference', or the "
                       "per-row 'fast' kernel and its oracle 'reference' "
                       "(see docs/performance.md)")

    def _add_workers_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=0,
                       help="process-pool size (0 = sequential); parallel "
                       "runs share dataset arrays zero-copy and are "
                       "bit-identical to sequential ones")
        p.add_argument("--transport", choices=["auto", "shm", "pickle"],
                       default="auto",
                       help="parallel array transport: shared memory when "
                       "available (auto), forced shm, or pickle fallback")

    def _add_grid_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--grid-dir", default=None,
                       help="durable grid directory (manifest + result "
                       "store); interrupted runs continue with "
                       "'repro-analyze grid resume'")

    def _add_execution_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=["1", "2", "3"], default="1")
        p.add_argument("--scale", type=float, default=None)
        p.add_argument("--population", type=int, default=60)
        _add_workers_args(p)
        p.add_argument("--seed", type=int, default=2013)
        p.add_argument("--checkpoint-dir", default=None,
                       help="durable NSGA-II checkpoints (one file per "
                       "population) for crash recovery")
        _add_grid_dir_arg(p)
        p.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per population before recording a "
                       "failure")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-attempt timeout in seconds (parallel only)")
        p.add_argument("--strict", action="store_true",
                       help="fail fast on the first exhausted population "
                       "instead of degrading gracefully")
        _add_algorithm_arg(p)
        _add_kernel_arg(p)
        _add_obs_args(p)

    p_report = sub.add_parser(
        "report", help="full experiment report for one data set"
    )
    _add_execution_args(p_report)

    p_resume = sub.add_parser(
        "resume",
        help="resume an interrupted report experiment from --checkpoint-dir",
    )
    _add_execution_args(p_resume)

    p_all = sub.add_parser(
        "reproduce-all",
        help="run every table and figure, writing artifacts to a directory",
    )
    p_all.add_argument("--output", default="reproduction")
    p_all.add_argument("--scale", type=float, default=None,
                       help="generation scale vs paper (1.0 = paper scale)")
    p_all.add_argument("--seed", type=int, default=2013)
    p_all.add_argument("--population", type=int, default=100)
    _add_workers_args(p_all)
    _add_algorithm_arg(p_all)
    _add_kernel_arg(p_all)
    _add_obs_args(p_all)

    p_rep = sub.add_parser(
        "repetitions", help="multi-repetition NSGA-II statistics"
    )
    p_rep.add_argument("--dataset", choices=["1", "2", "3"], default="1")
    p_rep.add_argument("--repetitions", type=int, default=5)
    p_rep.add_argument("--generations", type=int, default=50)
    p_rep.add_argument("--population", type=int, default=50)
    p_rep.add_argument(
        "--population-label",
        default="random",
        choices=["random", *sorted(SEEDING_HEURISTICS)],
    )
    p_rep.add_argument("--seed", type=int, default=2013)
    _add_workers_args(p_rep)
    _add_algorithm_arg(p_rep)
    _add_kernel_arg(p_rep)
    _add_grid_dir_arg(p_rep)
    _add_obs_args(p_rep)

    p_port = sub.add_parser(
        "portfolio",
        help="head-to-head algorithm comparison with distance-to-optimal",
    )
    p_port.add_argument("--dataset", choices=["1", "2", "3"], default="1")
    p_port.add_argument("--generations", type=int, default=20)
    p_port.add_argument("--population", type=int, default=50)
    p_port.add_argument("--seed", type=int, default=2013)
    p_port.add_argument(
        "--algorithms", nargs="+", choices=available_algorithms(),
        default=None, metavar="NAME",
        help=f"subset to run (default: all of {', '.join(available_algorithms())})",
    )
    p_port.add_argument("--exact-epsilon", type=float, default=0.05,
                        help="utility resolution of the exact baseline "
                        "(relative; bounds its error — see docs/algorithms.md)")
    p_port.add_argument("--no-exact", action="store_true",
                        help="skip the exact baseline and its "
                        "distance-to-optimal columns")
    _add_kernel_arg(p_port)
    _add_grid_dir_arg(p_port)
    _add_obs_args(p_port)

    p_grid = sub.add_parser(
        "grid",
        help="inspect or re-drive a durable grid directory "
        "(see docs/fault_tolerance.md)",
    )
    grid_sub = p_grid.add_subparsers(dest="grid_command", required=True)
    g_status = grid_sub.add_parser(
        "status", help="cell lifecycle counts and quarantined cells"
    )
    g_status.add_argument("grid_dir", help="directory holding manifest.jsonl")
    g_watch = grid_sub.add_parser(
        "watch",
        help="live dashboard over the grid journal and worker telemetry",
    )
    g_watch.add_argument("grid_dir", help="directory holding manifest.jsonl")
    g_watch.add_argument("--obs-dir", default=None,
                         help="the run's observability directory "
                         "(default: <grid_dir>/obs when present)")
    g_watch.add_argument("--once", action="store_true",
                         help="render one frame and exit")
    g_watch.add_argument("--interval", type=float, default=2.0,
                         help="refresh period in seconds (live mode)")
    g_watch.add_argument("--prom", default=None,
                         help="also write aggregated grid metrics to this "
                         "Prometheus textfile on every refresh")
    for verb, verb_help in (
        ("resume", "re-drive every unfinished cell of an interrupted grid"),
        ("retry-quarantined", "requeue quarantined cells, then resume"),
    ):
        g_run = grid_sub.add_parser(verb, help=verb_help)
        g_run.add_argument("grid_dir",
                           help="directory holding manifest.jsonl")
        _add_workers_args(g_run)
        g_run.add_argument("--max-attempts", type=int, default=3,
                           help="attempts per cell before recording a "
                           "failure")
        g_run.add_argument("--timeout", type=float, default=None,
                           help="per-attempt timeout in seconds "
                           "(parallel only)")
        _add_obs_args(g_run)

    p_trace = sub.add_parser(
        "trace",
        help="summarize a recorded observability directory",
    )
    p_trace.add_argument("run_dir",
                         help="directory written via --obs-dir")
    p_trace.add_argument("--top", type=int, default=10,
                         help="how many slowest spans to list")
    p_trace.add_argument("--validate", action="store_true",
                         help="only validate the artifacts against the "
                         "repro.obs/1 schema")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": _cmd_tables,
        "figure": _cmd_figure,
        "seeds": _cmd_seeds,
        "datagen": _cmd_datagen,
        "system": _cmd_system,
        "gantt": _cmd_gantt,
        "repetitions": _cmd_repetitions,
        "reproduce-all": _cmd_reproduce_all,
        "portfolio": _cmd_portfolio,
        "report": _cmd_report,
        "resume": _cmd_resume,
        "trace": _cmd_trace,
        "grid": _cmd_grid,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
