"""JSON-friendly serialization of system models.

Systems (machine types, machines, task types, matrices) round-trip
through plain dictionaries so experiments can be archived and reloaded.
Time-utility functions are serialized through their own ``to_dict`` /
``from_dict`` protocol when present.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro.errors import ModelError
from repro.model.machine import Machine, MachineCategory, MachineType
from repro.model.matrices import EPCMatrix, ETCMatrix
from repro.model.system import SystemModel
from repro.model.task import TaskCategory, TaskType

__all__ = ["system_to_dict", "system_from_dict", "save_system", "load_system"]


def _matrix_to_dict(values: np.ndarray, feasible: np.ndarray) -> dict[str, Any]:
    out = np.where(feasible, values, -1.0)  # -1 encodes infeasible in JSON
    return {
        "values": out.tolist(),
        "feasible": feasible.astype(int).tolist(),
    }


def _matrix_from_dict(data: dict[str, Any]) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(data["values"], dtype=np.float64)
    feasible = np.asarray(data["feasible"], dtype=bool)
    values = np.where(feasible, values, np.inf)
    return values, feasible


def system_to_dict(system: SystemModel) -> dict[str, Any]:
    """Serialize *system* to a JSON-compatible dictionary."""
    return {
        "format": "repro.system/1",
        "machine_types": [
            {
                "name": mt.name,
                "index": mt.index,
                "category": mt.category.value,
                "supported_task_types": (
                    sorted(mt.supported_task_types)
                    if mt.supported_task_types is not None
                    else None
                ),
                "idle_power_watts": mt.idle_power_watts,
            }
            for mt in system.machine_types
        ],
        "machines": [
            {"name": m.name, "index": m.index, "machine_type": m.machine_type.index}
            for m in system.machines
        ],
        "task_types": [
            {
                "name": tt.name,
                "index": tt.index,
                "category": tt.category.value,
                "special_machine_type": tt.special_machine_type,
                "utility_function": (
                    tt.utility_function.to_dict()
                    if tt.utility_function is not None
                    else None
                ),
            }
            for tt in system.task_types
        ],
        "etc": _matrix_to_dict(system.etc.values, system.etc.feasible),
        "epc": _matrix_to_dict(system.epc.values, system.epc.feasible),
    }


def system_from_dict(data: dict[str, Any]) -> SystemModel:
    """Reconstruct a :class:`SystemModel` from :func:`system_to_dict` output."""
    if data.get("format") != "repro.system/1":
        raise ModelError(
            f"unrecognized system format {data.get('format')!r}; expected "
            "'repro.system/1'"
        )
    machine_types = tuple(
        MachineType(
            name=d["name"],
            index=d["index"],
            category=MachineCategory(d["category"]),
            supported_task_types=(
                frozenset(d["supported_task_types"])
                if d["supported_task_types"] is not None
                else None
            ),
            idle_power_watts=d.get("idle_power_watts", 0.0),
        )
        for d in data["machine_types"]
    )
    machines = tuple(
        Machine(
            name=d["name"],
            index=d["index"],
            machine_type=machine_types[d["machine_type"]],
        )
        for d in data["machines"]
    )

    # Deferred import: utility depends on nothing in model, but model
    # serialization needs to rebuild TUFs when present.
    from repro.utility.tuf import TimeUtilityFunction

    task_types = tuple(
        TaskType(
            name=d["name"],
            index=d["index"],
            category=TaskCategory(d["category"]),
            special_machine_type=d["special_machine_type"],
            utility_function=(
                TimeUtilityFunction.from_dict(d["utility_function"])
                if d.get("utility_function") is not None
                else None
            ),
        )
        for d in data["task_types"]
    )
    etc_values, etc_feasible = _matrix_from_dict(data["etc"])
    epc_values, epc_feasible = _matrix_from_dict(data["epc"])
    return SystemModel(
        machine_types=machine_types,
        machines=machines,
        task_types=task_types,
        etc=ETCMatrix(etc_values, etc_feasible),
        epc=EPCMatrix(epc_values, epc_feasible),
    )


def save_system(system: SystemModel, path: Union[str, Path]) -> None:
    """Write *system* as JSON to *path*."""
    Path(path).write_text(json.dumps(system_to_dict(system), indent=2))


def load_system(path: Union[str, Path]) -> SystemModel:
    """Load a system previously written by :func:`save_system`."""
    return system_from_dict(json.loads(Path(path).read_text()))
