"""The validated :class:`SystemModel` — machines + task types + matrices.

A ``SystemModel`` bundles everything Section III defines about the
computing environment:

* the machine-type list and the machine instances of each type
  (dataset 2/3 allot several machines per type — Table III);
* the task-type list, each optionally carrying a time-utility function;
* the ETC and EPC matrices (task types × machine types) and the derived
  EEC matrix;
* consistency validation between categories and feasibility masks.

It also precomputes the *per-machine* expansions used by the hot
simulator path: ``etc_task_machine[i, m]`` for task type ``i`` on
machine instance ``m`` (columns repeated according to machine type),
so the evaluator can gather directly by machine index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.model.machine import Machine, MachineType
from repro.model.matrices import EECMatrix, EPCMatrix, ETCMatrix
from repro.model.task import TaskType
from repro.types import BoolArray, FloatArray, IntArray

__all__ = ["SystemModel"]


@dataclass(frozen=True)
class SystemModel:
    """A complete heterogeneous computing environment.

    Construct via the constructor (validates everything) or the
    :meth:`from_matrices` convenience for simple all-general systems.
    """

    machine_types: tuple[MachineType, ...]
    machines: tuple[Machine, ...]
    task_types: tuple[TaskType, ...]
    etc: ETCMatrix
    epc: EPCMatrix

    def __post_init__(self) -> None:
        if not self.machine_types:
            raise ModelError("system must define at least one machine type")
        if not self.machines:
            raise ModelError("system must contain at least one machine")
        if not self.task_types:
            raise ModelError("system must define at least one task type")

        for i, mt in enumerate(self.machine_types):
            if mt.index != i:
                raise ModelError(
                    f"machine type {mt.name!r} has index {mt.index}, expected "
                    f"position {i}"
                )
        for i, tt in enumerate(self.task_types):
            if tt.index != i:
                raise ModelError(
                    f"task type {tt.name!r} has index {tt.index}, expected "
                    f"position {i}"
                )
        for i, m in enumerate(self.machines):
            if m.index != i:
                raise ModelError(
                    f"machine {m.name!r} has index {m.index}, expected {i}"
                )
            if m.machine_type is not self.machine_types[m.machine_type.index]:
                # Allow equal-but-distinct objects as long as indices map.
                if m.machine_type.index >= len(self.machine_types):
                    raise ModelError(
                        f"machine {m.name!r} references unknown machine type "
                        f"index {m.machine_type.index}"
                    )

        T, M = len(self.task_types), len(self.machine_types)
        if self.etc.shape != (T, M):
            raise ModelError(
                f"ETC shape {self.etc.shape} does not match "
                f"({T} task types, {M} machine types)"
            )
        if self.epc.shape != (T, M):
            raise ModelError(
                f"EPC shape {self.epc.shape} does not match "
                f"({T} task types, {M} machine types)"
            )
        if not np.array_equal(self.etc.feasible, self.epc.feasible):
            raise ModelError("ETC and EPC feasibility masks disagree")

        self._validate_category_consistency()

        for tt in self.task_types:
            if not self.etc.feasible[tt.index].any():
                raise ModelError(
                    f"task type {tt.name!r} cannot execute on any machine type"
                )

    def _validate_category_consistency(self) -> None:
        """Check feasibility mask against machine/task categories.

        The paper's rules: a special-purpose machine type executes only
        its declared task subset; a general-purpose machine type
        executes every task type; a special-purpose task type runs on
        its one special machine type plus the general-purpose types.
        """
        for mt in self.machine_types:
            col = self.etc.feasible[:, mt.index]
            if mt.is_special_purpose:
                declared = mt.supported_task_types or frozenset()
                actual = set(np.nonzero(col)[0].tolist())
                if actual != set(declared):
                    raise ModelError(
                        f"special-purpose machine type {mt.name!r} feasibility "
                        f"column {sorted(actual)} disagrees with declared "
                        f"supported task types {sorted(declared)}"
                    )
            else:
                if not col.all():
                    missing = np.nonzero(~col)[0].tolist()
                    raise ModelError(
                        f"general-purpose machine type {mt.name!r} must execute "
                        f"every task type; infeasible for {missing}"
                    )

    # -- convenience construction --------------------------------------

    @classmethod
    def from_matrices(
        cls,
        etc_values: FloatArray,
        epc_values: FloatArray,
        machine_type_names: Optional[Sequence[str]] = None,
        task_type_names: Optional[Sequence[str]] = None,
        machines_per_type: Optional[Sequence[int]] = None,
    ) -> "SystemModel":
        """Build an all-general-purpose system straight from arrays.

        Parameters
        ----------
        etc_values, epc_values:
            ``(T, M)`` arrays of execution times / powers (all feasible).
        machine_type_names, task_type_names:
            Optional name lists; defaults are generated.
        machines_per_type:
            Number of machine instances per type; default one each.
        """
        etc_values = np.asarray(etc_values, dtype=np.float64)
        epc_values = np.asarray(epc_values, dtype=np.float64)
        T, M = etc_values.shape
        if machine_type_names is None:
            machine_type_names = [f"machine-type-{j}" for j in range(M)]
        if task_type_names is None:
            task_type_names = [f"task-type-{i}" for i in range(T)]
        if machines_per_type is None:
            machines_per_type = [1] * M
        if len(machine_type_names) != M:
            raise ModelError("machine_type_names length must equal ETC columns")
        if len(task_type_names) != T:
            raise ModelError("task_type_names length must equal ETC rows")
        if len(machines_per_type) != M:
            raise ModelError("machines_per_type length must equal ETC columns")

        machine_types = tuple(
            MachineType(name=name, index=j)
            for j, name in enumerate(machine_type_names)
        )
        machines: list[Machine] = []
        for j, count in enumerate(machines_per_type):
            if count < 1:
                raise ModelError(
                    f"machines_per_type[{j}] must be >= 1, got {count}"
                )
            for k in range(count):
                machines.append(
                    Machine(
                        name=f"{machine_type_names[j]}#{k}",
                        index=len(machines),
                        machine_type=machine_types[j],
                    )
                )
        task_types = tuple(
            TaskType(name=name, index=i) for i, name in enumerate(task_type_names)
        )
        return cls(
            machine_types=machine_types,
            machines=tuple(machines),
            task_types=task_types,
            etc=ETCMatrix(etc_values),
            epc=EPCMatrix(epc_values),
        )

    def with_utility_functions(self, tufs: Sequence) -> "SystemModel":
        """Return a copy whose task types carry the given TUFs (by index)."""
        if len(tufs) != self.num_task_types:
            raise ModelError(
                f"expected {self.num_task_types} utility functions, got {len(tufs)}"
            )
        new_task_types = tuple(
            tt.with_utility_function(tuf) for tt, tuf in zip(self.task_types, tufs)
        )
        return SystemModel(
            machine_types=self.machine_types,
            machines=self.machines,
            task_types=new_task_types,
            etc=self.etc,
            epc=self.epc,
        )

    # -- sizes ----------------------------------------------------------

    @property
    def num_machine_types(self) -> int:
        """Number of machine types ``μ``."""
        return len(self.machine_types)

    @property
    def num_machines(self) -> int:
        """Number of machine instances ``M``."""
        return len(self.machines)

    @property
    def num_task_types(self) -> int:
        """Number of task types ``τ``."""
        return len(self.task_types)

    # -- derived matrices -----------------------------------------------

    @cached_property
    def eec(self) -> EECMatrix:
        """Estimated Energy Consumption matrix (Eq. 2)."""
        return EECMatrix.from_etc_epc(self.etc, self.epc)

    @cached_property
    def machine_type_of_machine(self) -> IntArray:
        """``Ω(m)``: machine-type index for each machine instance."""
        arr = np.array([m.machine_type.index for m in self.machines], dtype=np.int64)
        arr.setflags(write=False)
        return arr

    @cached_property
    def etc_task_machine(self) -> FloatArray:
        """ETC expanded to machine instances: shape ``(T, num_machines)``."""
        arr = self.etc.values[:, self.machine_type_of_machine]
        arr.setflags(write=False)
        return arr

    @cached_property
    def epc_task_machine(self) -> FloatArray:
        """EPC expanded to machine instances: shape ``(T, num_machines)``."""
        arr = self.epc.values[:, self.machine_type_of_machine]
        arr.setflags(write=False)
        return arr

    @cached_property
    def eec_task_machine(self) -> FloatArray:
        """EEC expanded to machine instances: shape ``(T, num_machines)``."""
        arr = self.eec.values[:, self.machine_type_of_machine]
        arr.setflags(write=False)
        return arr

    @cached_property
    def feasible_task_machine(self) -> BoolArray:
        """Feasibility expanded to machine instances."""
        arr = self.etc.feasible[:, self.machine_type_of_machine]
        arr.setflags(write=False)
        return arr

    def feasible_machines(self, task_type: int) -> IntArray:
        """Machine-instance indices that can execute *task_type*."""
        return np.nonzero(self.feasible_task_machine[task_type])[0]

    # -- descriptive -----------------------------------------------------

    def describe(self) -> str:
        """One-paragraph summary used by the CLI and reports."""
        n_special_mt = sum(mt.is_special_purpose for mt in self.machine_types)
        n_special_tt = sum(tt.is_special_purpose for tt in self.task_types)
        return (
            f"SystemModel: {self.num_machines} machines across "
            f"{self.num_machine_types} machine types ({n_special_mt} special-"
            f"purpose), {self.num_task_types} task types ({n_special_tt} "
            f"special-purpose)"
        )
