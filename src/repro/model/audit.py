"""System sanity auditing — warnings beyond hard validation.

:class:`~repro.model.system.SystemModel` construction rejects
*inconsistent* systems; this module flags *suspicious but legal* ones —
the mistakes users actually make when assembling ETC/EPC data by hand.
Each finding carries a severity, a machine-readable code, and a human
explanation; nothing here ever raises.

Checks:

* ``dominated-machine-type`` — a machine type that is slower **and**
  hungrier than another for every task type.  Under queueing such a
  machine can still be worth using (it relieves waiting), so this is
  informational — but it means the min-energy mapping will never pick
  it and single-task placements on it are always regrettable.
* ``uniform-row`` — a task type with (near-)identical execution time
  on every machine: contributes nothing to heterogeneity analysis.
* ``extreme-ratio`` — a task type whose slowest general-purpose
  machine is more than ``ratio_limit`` times its fastest: plausible
  for exotic hardware mixes, usually a typo in hand-entered data.
* ``etc-epc-scale`` — EPC values outside a plausible power envelope
  (defaults: 1 W – 10 kW per machine).
* ``unreferenced-special`` — a special-purpose machine type none of
  whose supported task types is marked special-purpose (it would work,
  but the categorization is inconsistent in spirit).
* ``idle-power-without-dvfs`` — nonzero idle power declared although
  the paper's energy model never charges idle time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.model.system import SystemModel

__all__ = ["Severity", "AuditFinding", "audit_system"]


class Severity(enum.Enum):
    """How concerning a finding is."""

    INFO = "info"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class AuditFinding:
    """One audit observation."""

    code: str
    severity: Severity
    message: str


def audit_system(
    system: SystemModel,
    ratio_limit: float = 50.0,
    power_floor: float = 1.0,
    power_ceiling: float = 10_000.0,
    uniform_tolerance: float = 1e-9,
) -> list[AuditFinding]:
    """Audit *system* and return findings (possibly empty)."""
    findings: list[AuditFinding] = []
    etc = system.etc.values
    epc = system.epc.values
    feasible = system.etc.feasible

    # dominated-machine-type: for general-purpose columns only (special
    # columns are incomparable due to feasibility).
    general = [mt.index for mt in system.machine_types if not mt.is_special_purpose]
    for j in general:
        for k in general:
            if j == k:
                continue
            worse_time = np.all(etc[:, j] >= etc[:, k])
            worse_power = np.all(epc[:, j] >= epc[:, k])
            strictly = np.any(etc[:, j] > etc[:, k]) or np.any(
                epc[:, j] > epc[:, k]
            )
            if worse_time and worse_power and strictly:
                findings.append(
                    AuditFinding(
                        code="dominated-machine-type",
                        severity=Severity.INFO,
                        message=(
                            f"machine type {system.machine_types[j].name!r} is "
                            f"slower and draws more power than "
                            f"{system.machine_types[k].name!r} for every task "
                            "type; it earns its keep only by relieving queues"
                        ),
                    )
                )
                break  # one report per dominated type suffices

    # uniform-row.
    for tt in system.task_types:
        row = etc[tt.index][feasible[tt.index]]
        if row.size > 1 and float(row.max() - row.min()) <= uniform_tolerance * max(
            1.0, float(row.mean())
        ):
            findings.append(
                AuditFinding(
                    code="uniform-row",
                    severity=Severity.INFO,
                    message=(
                        f"task type {tt.name!r} runs in identical time on every "
                        "machine; it adds no machine heterogeneity"
                    ),
                )
            )

    # extreme-ratio (general-purpose entries only).
    for tt in system.task_types:
        mask = feasible[tt.index].copy()
        for mt in system.machine_types:
            if mt.is_special_purpose:
                mask[mt.index] = False
        row = etc[tt.index][mask]
        if row.size > 1:
            fastest = float(row.min())
            slowest = float(row.max())
            if fastest > 0 and slowest / fastest > ratio_limit:
                findings.append(
                    AuditFinding(
                        code="extreme-ratio",
                        severity=Severity.WARNING,
                        message=(
                            f"task type {tt.name!r} runs {slowest / fastest:.0f}x "
                            "slower on its slowest general-purpose machine than "
                            "its fastest; check for a typo"
                        ),
                    )
                )

    # etc-epc-scale.
    finite_epc = epc[feasible]
    if finite_epc.size:
        lo, hi = float(finite_epc.min()), float(finite_epc.max())
        if lo < power_floor or hi > power_ceiling:
            findings.append(
                AuditFinding(
                    code="etc-epc-scale",
                    severity=Severity.WARNING,
                    message=(
                        f"EPC values span {lo:.3g}-{hi:.3g} W, outside the "
                        f"plausible {power_floor:g}-{power_ceiling:g} W "
                        "envelope; are the units right?"
                    ),
                )
            )

    # unreferenced-special.
    special_tasks = {
        tt.index for tt in system.task_types if tt.is_special_purpose
    }
    for mt in system.machine_types:
        if mt.is_special_purpose and mt.supported_task_types:
            if not (set(mt.supported_task_types) & special_tasks):
                findings.append(
                    AuditFinding(
                        code="unreferenced-special",
                        severity=Severity.INFO,
                        message=(
                            f"special-purpose machine type {mt.name!r} supports "
                            "only task types not themselves marked "
                            "special-purpose"
                        ),
                    )
                )

    # idle-power-without-dvfs.
    for mt in system.machine_types:
        if mt.idle_power_watts > 0:
            findings.append(
                AuditFinding(
                    code="idle-power-without-dvfs",
                    severity=Severity.INFO,
                    message=(
                        f"machine type {mt.name!r} declares idle power "
                        f"{mt.idle_power_watts:g} W, but the energy model "
                        "charges execution energy only (idle power is unused "
                        "outside the DVFS extension)"
                    ),
                )
            )
            break  # summarize once

    return findings
