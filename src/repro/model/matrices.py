"""ETC / EPC / EEC matrices (paper Sections III-D and IV-B2).

An entry ``ETC(τ, μ)`` is the estimated time (seconds) a task of type
``τ`` takes on a machine of type ``μ``; ``EPC(τ, μ)`` is the average
power (watts) it draws there.  Their elementwise product is the
Estimated Energy Consumption ``EEC(τ, μ) = ETC(τ, μ) × EPC(τ, μ)``
(joules) — Eq. (2) of the paper.

Infeasible (task type, machine type) pairs — a general-purpose task on a
special-purpose machine, or a special-purpose task on the *wrong*
special-purpose machine — are represented as ``np.inf`` in the values
array together with a boolean feasibility mask.  Using ``inf`` (rather
than NaN) means greedy heuristics that take argmins over machines
naturally avoid infeasible placements without branching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.types import BoolArray, FloatArray

__all__ = ["TypedMatrix", "ETCMatrix", "EPCMatrix", "EECMatrix"]


@dataclass(frozen=True)
class TypedMatrix:
    """A (task type × machine type) matrix with a feasibility mask.

    Attributes
    ----------
    values:
        Shape ``(num_task_types, num_machine_types)`` float64 array.
        Entries for infeasible pairs are ``np.inf``.
    feasible:
        Boolean array of the same shape; ``True`` where the pair is
        feasible.  Derived automatically when not supplied.
    name:
        Label used in error messages ("ETC", "EPC", "EEC").
    """

    values: FloatArray
    feasible: BoolArray = field(default=None)  # type: ignore[assignment]
    name: str = "matrix"

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 2:
            raise ModelError(
                f"{self.name} must be 2-D (task types x machine types); "
                f"got shape {values.shape}"
            )
        if values.size == 0:
            raise ModelError(f"{self.name} must be non-empty")
        if np.any(np.isnan(values)):
            raise ModelError(f"{self.name} must not contain NaN")
        feasible = self.feasible
        if feasible is None:
            feasible = np.isfinite(values)
        else:
            feasible = np.asarray(feasible, dtype=bool)
            if feasible.shape != values.shape:
                raise ModelError(
                    f"{self.name} feasibility mask shape {feasible.shape} does "
                    f"not match values shape {values.shape}"
                )
            if np.any(~np.isfinite(values) & feasible):
                raise ModelError(
                    f"{self.name} marks non-finite entries as feasible"
                )
        finite = values[feasible]
        if finite.size and np.any(finite <= 0):
            raise ModelError(
                f"{self.name} feasible entries must be strictly positive"
            )
        # Normalize infeasible entries to +inf for argmin-safety.
        values = values.copy()
        values[~feasible] = np.inf
        values.setflags(write=False)
        feasible = feasible.copy()
        feasible.setflags(write=False)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "feasible", feasible)

    # -- shape ---------------------------------------------------------

    @property
    def num_task_types(self) -> int:
        """Number of rows (task types ``τ``)."""
        return self.values.shape[0]

    @property
    def num_machine_types(self) -> int:
        """Number of columns (machine types ``μ``)."""
        return self.values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_task_types, num_machine_types)``."""
        return self.values.shape  # type: ignore[return-value]

    # -- access --------------------------------------------------------

    def __getitem__(self, key) -> np.ndarray:
        return self.values[key]

    def entry(self, task_type: int, machine_type: int) -> float:
        """Scalar lookup ``matrix(τ, μ)`` with bounds checking."""
        if not (0 <= task_type < self.num_task_types):
            raise ModelError(
                f"task type index {task_type} out of range "
                f"[0, {self.num_task_types})"
            )
        if not (0 <= machine_type < self.num_machine_types):
            raise ModelError(
                f"machine type index {machine_type} out of range "
                f"[0, {self.num_machine_types})"
            )
        return float(self.values[task_type, machine_type])

    def is_feasible(self, task_type: int, machine_type: int) -> bool:
        """Whether the (τ, μ) pair is executable."""
        return bool(self.feasible[task_type, machine_type])

    def feasible_machine_types(self, task_type: int) -> np.ndarray:
        """Indices of machine types that can execute *task_type*."""
        return np.nonzero(self.feasible[task_type])[0]

    # -- statistics ----------------------------------------------------

    def row_average(self, task_type: int) -> float:
        """Mean over *feasible* machine types for one task type.

        This is the "row average task execution time" used by the
        synthetic-data method of Section III-D2.
        """
        row = self.values[task_type]
        mask = self.feasible[task_type]
        if not mask.any():
            raise ModelError(f"task type {task_type} has no feasible machines")
        return float(row[mask].mean())

    def row_averages(self) -> FloatArray:
        """Vector of row averages over feasible entries."""
        masked = np.where(self.feasible, self.values, np.nan)
        with np.errstate(invalid="ignore"):
            means = np.nanmean(masked, axis=1)
        if np.any(np.isnan(means)):
            bad = np.nonzero(np.isnan(means))[0]
            raise ModelError(f"task types {bad.tolist()} have no feasible machines")
        return means

    def ratio_matrix(self) -> FloatArray:
        """Execution-time ratios: entry / its row average.

        Infeasible entries remain ``inf``.  Faster-than-average machines
        yield ratios below one (paper Section III-D2 example: 8 min on a
        10-min-average task -> 0.8).
        """
        means = self.row_averages()
        return self.values / means[:, None]

    # -- restriction ---------------------------------------------------

    def submatrix(
        self,
        task_types: Optional[Sequence[int]] = None,
        machine_types: Optional[Sequence[int]] = None,
    ) -> "TypedMatrix":
        """Restrict to the given row/column index lists (reindexed)."""
        rows = np.arange(self.num_task_types) if task_types is None else np.asarray(task_types)
        cols = np.arange(self.num_machine_types) if machine_types is None else np.asarray(machine_types)
        return TypedMatrix(
            values=self.values[np.ix_(rows, cols)],
            feasible=self.feasible[np.ix_(rows, cols)],
            name=self.name,
        )


class ETCMatrix(TypedMatrix):
    """Estimated Time to Compute matrix (seconds)."""

    def __init__(self, values: FloatArray, feasible: Optional[BoolArray] = None):
        super().__init__(values=values, feasible=feasible, name="ETC")


class EPCMatrix(TypedMatrix):
    """Estimated Power Consumption matrix (watts)."""

    def __init__(self, values: FloatArray, feasible: Optional[BoolArray] = None):
        super().__init__(values=values, feasible=feasible, name="EPC")


class EECMatrix(TypedMatrix):
    """Estimated Energy Consumption matrix (joules), Eq. (2).

    Built from ETC and EPC via :meth:`from_etc_epc`; kept as its own
    class so analysis code can dispatch on matrix meaning.
    """

    def __init__(self, values: FloatArray, feasible: Optional[BoolArray] = None):
        super().__init__(values=values, feasible=feasible, name="EEC")

    @classmethod
    def from_etc_epc(cls, etc: TypedMatrix, epc: TypedMatrix) -> "EECMatrix":
        """``EEC(τ, μ) = ETC(τ, μ) × EPC(τ, μ)`` elementwise."""
        if etc.shape != epc.shape:
            raise ModelError(
                f"ETC shape {etc.shape} does not match EPC shape {epc.shape}"
            )
        if not np.array_equal(etc.feasible, epc.feasible):
            raise ModelError("ETC and EPC feasibility masks disagree")
        values = np.where(etc.feasible, etc.values * epc.values, np.inf)
        return cls(values=values, feasible=etc.feasible)
