"""Task-type definitions (paper Section III-C).

Each task in a workload trace is an instance of a *task type* ``τ``.
Task types have unique execution/power characteristics on each machine
type (the rows of the ETC/EPC matrices) and belong to one of two
categories:

* **general-purpose** task types execute only on general-purpose
  machine types;
* **special-purpose** task types additionally execute on one specific
  special-purpose machine type at a ~10x faster rate.

A task type also carries the *time-utility function* (TUF) parameters
that determine how much utility its instances earn as a function of
completion time; the TUF object itself lives in :mod:`repro.utility`
and is referenced here opaquely to avoid an import cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ModelError

__all__ = ["TaskCategory", "TaskType"]


class TaskCategory(enum.Enum):
    """Category of a task type (Section III-C)."""

    GENERAL_PURPOSE = "general-purpose"
    SPECIAL_PURPOSE = "special-purpose"


@dataclass(frozen=True, slots=True)
class TaskType:
    """A task type ``τ`` — a row of the ETC/EPC matrices.

    Attributes
    ----------
    name:
        Human-readable designation (e.g. ``"C-Ray"``).
    index:
        Row index of this type in the system's ETC/EPC matrices.
    category:
        General-purpose or special-purpose.
    special_machine_type:
        For special-purpose task types, the index of the one
        special-purpose *machine type* that accelerates them.  ``None``
        for general-purpose task types.
    utility_function:
        The :class:`repro.utility.tuf.TimeUtilityFunction` assigned to
        instances of this type (held as ``Any`` to keep the model layer
        free of utility-layer imports).  May be ``None`` for systems
        used in pure energy/makespan studies.
    """

    name: str
    index: int
    category: TaskCategory = TaskCategory.GENERAL_PURPOSE
    special_machine_type: Optional[int] = None
    utility_function: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"task type index must be >= 0, got {self.index}")
        if self.category is TaskCategory.SPECIAL_PURPOSE:
            if self.special_machine_type is None:
                raise ModelError(
                    f"special-purpose task type {self.name!r} must name its "
                    "accelerating special_machine_type"
                )
        elif self.special_machine_type is not None:
            raise ModelError(
                f"general-purpose task type {self.name!r} must not reference a "
                "special machine type"
            )

    @property
    def is_special_purpose(self) -> bool:
        """Whether a special-purpose machine type accelerates this type."""
        return self.category is TaskCategory.SPECIAL_PURPOSE

    def with_utility_function(self, tuf: Any) -> "TaskType":
        """Return a copy of this task type carrying *tuf*."""
        return TaskType(
            name=self.name,
            index=self.index,
            category=self.category,
            special_machine_type=self.special_machine_type,
            utility_function=tuf,
        )
