"""Machine and machine-type definitions (paper Section III-B).

A *machine type* captures performance/power characteristics shared by
all machines of that type (one row of heterogeneity in the suite); a
*machine* is a physical instance of a type.  Machine types belong to one
of two categories:

* **general-purpose** — can execute every task type in the system and
  make up the majority of the suite;
* **special-purpose** — can execute only a small subset of task types
  (typically 2–3), roughly 10x faster than the general-purpose types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.errors import ModelError

__all__ = ["MachineCategory", "MachineType", "Machine"]


class MachineCategory(enum.Enum):
    """Category of a machine type (Section III-B)."""

    GENERAL_PURPOSE = "general-purpose"
    SPECIAL_PURPOSE = "special-purpose"


@dataclass(frozen=True, slots=True)
class MachineType:
    """A machine type ``μ`` — a column of the ETC/EPC matrices.

    Attributes
    ----------
    name:
        Human-readable designation (the paper designates machine types
        by CPU, e.g. ``"Intel Core i7 3770K"``).
    index:
        Column index of this type in the system's ETC/EPC matrices.
    category:
        General-purpose or special-purpose.
    supported_task_types:
        For special-purpose types, the frozen set of task-type indices
        the type can execute.  ``None`` for general-purpose types, which
        support every task type.
    idle_power_watts:
        Optional idle power draw; the paper's energy model charges only
        task execution energy (EEC), so this defaults to 0 and is used
        only by the DVFS extension.
    """

    name: str
    index: int
    category: MachineCategory = MachineCategory.GENERAL_PURPOSE
    supported_task_types: Optional[FrozenSet[int]] = None
    idle_power_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"machine type index must be >= 0, got {self.index}")
        if self.idle_power_watts < 0:
            raise ModelError(
                f"idle power must be non-negative, got {self.idle_power_watts}"
            )
        if self.category is MachineCategory.SPECIAL_PURPOSE:
            if not self.supported_task_types:
                raise ModelError(
                    f"special-purpose machine type {self.name!r} must declare a "
                    "non-empty supported_task_types set"
                )
        elif self.supported_task_types is not None:
            raise ModelError(
                f"general-purpose machine type {self.name!r} must not restrict "
                "supported_task_types (it can execute every task type)"
            )

    @property
    def is_special_purpose(self) -> bool:
        """Whether this type only executes a subset of task types."""
        return self.category is MachineCategory.SPECIAL_PURPOSE

    def supports(self, task_type_index: int) -> bool:
        """Whether a task of type *task_type_index* can run on this type."""
        if self.supported_task_types is None:
            return True
        return task_type_index in self.supported_task_types


@dataclass(frozen=True, slots=True)
class Machine:
    """A physical machine instance ``m`` of a machine type ``Ω(m)``.

    The simulator schedules tasks onto machines; performance and power
    characteristics are looked up through the machine's *type*.
    """

    name: str
    index: int
    machine_type: MachineType

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"machine index must be >= 0, got {self.index}")

    @property
    def type_index(self) -> int:
        """Index of the machine's type — ``Ω(m)`` in the paper."""
        return self.machine_type.index

    def supports(self, task_type_index: int) -> bool:
        """Whether this machine can execute tasks of the given type."""
        return self.machine_type.supports(task_type_index)
