"""System model: machines, task types, and ETC/EPC/EEC matrices.

This package implements Section III of the paper: a suite of
heterogeneous machines (general-purpose and special-purpose), a set of
task types, and the Estimated Time to Compute (ETC) / Estimated Power
Consumption (EPC) matrices that characterize them.  The derived
Estimated Energy Consumption (EEC) matrix is ``ETC * EPC`` (Eq. 2).
"""

from repro.model.machine import Machine, MachineCategory, MachineType
from repro.model.matrices import EECMatrix, EPCMatrix, ETCMatrix, TypedMatrix
from repro.model.system import SystemModel
from repro.model.task import TaskCategory, TaskType

__all__ = [
    "Machine",
    "MachineCategory",
    "MachineType",
    "TaskCategory",
    "TaskType",
    "TypedMatrix",
    "ETCMatrix",
    "EPCMatrix",
    "EECMatrix",
    "SystemModel",
]
