"""Exception hierarchy for the :mod:`repro` analysis framework.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch framework failures without
swallowing genuine programming errors (``TypeError`` from misuse of
NumPy, etc.).  The subclasses partition failures by subsystem:

* :class:`ModelError` — inconsistent machine/task/matrix definitions.
* :class:`DataGenerationError` — the synthetic-data pipeline could not
  honour the requested heterogeneity statistics.
* :class:`UtilityFunctionError` — a time-utility function definition is
  not monotone decreasing / has malformed intervals.
* :class:`WorkloadError` — trace generation parameters are infeasible.
* :class:`ScheduleError` — an allocation references unknown tasks or
  infeasible machines.
* :class:`OptimizationError` — an optimization engine was configured
  inconsistently (population size, operator probabilities, ...).
* :class:`AlgorithmLookupError` — a requested algorithm name is not in
  the portfolio registry (see :mod:`repro.core.registry`).
* :class:`AnalysisError` — a Pareto-front analysis was asked of an
  empty or degenerate front.
* :class:`ExperimentError` — experiment configuration/IO failures.
* :class:`CheckpointError` — a checkpoint is missing, incompatible with
  the requesting run, or structurally malformed.
* :class:`CorruptArtifactError` — an on-disk artifact exists but failed
  its integrity check (undecodable JSON or checksum mismatch).  Kept
  distinct from the missing-artifact case so callers can decide between
  "restart from scratch" and "refuse to silently discard data".
* :class:`ObservabilityError` — the observability layer was misused
  (duplicate metric registered under a different type, unreadable or
  schema-invalid trace/event artifacts).
* :class:`ParallelExecutionError` — the shared-memory parallel
  execution engine failed (segment creation/attachment, engine misuse).
  Like the checkpoint/artifact errors it refines
  :class:`ExperimentError`, since parallel execution is an experiment
  concern.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "DataGenerationError",
    "UtilityFunctionError",
    "WorkloadError",
    "ScheduleError",
    "OptimizationError",
    "AlgorithmLookupError",
    "AnalysisError",
    "ExperimentError",
    "CheckpointError",
    "CorruptArtifactError",
    "ObservabilityError",
    "ParallelExecutionError",
]


class ReproError(Exception):
    """Base class for every intentional failure raised by :mod:`repro`."""


class ModelError(ReproError):
    """The system model (machines, task types, ETC/EPC) is inconsistent."""


class DataGenerationError(ReproError):
    """Synthetic data generation failed or was configured infeasibly."""


class UtilityFunctionError(ReproError):
    """A time-utility function definition violates the TUF contract."""


class WorkloadError(ReproError):
    """Workload/trace generation parameters are invalid."""


class ScheduleError(ReproError):
    """A resource allocation is malformed or infeasible."""


class OptimizationError(ReproError):
    """The bi-objective optimizer was configured or used incorrectly."""


class AlgorithmLookupError(OptimizationError):
    """A requested algorithm name is not registered in the portfolio."""


class AnalysisError(ReproError):
    """A Pareto-front analysis could not be performed."""


class ExperimentError(ReproError):
    """An experiment definition or its IO failed."""


class CheckpointError(ExperimentError):
    """A checkpoint is missing, malformed, or incompatible with the run."""


class CorruptArtifactError(ExperimentError):
    """An on-disk artifact failed its integrity (checksum/decode) check."""


class ObservabilityError(ReproError):
    """The observability layer was misconfigured or fed invalid data."""


class ParallelExecutionError(ExperimentError):
    """The shared-memory parallel execution engine failed."""
