"""Exception hierarchy for the :mod:`repro` analysis framework.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch framework failures without
swallowing genuine programming errors (``TypeError`` from misuse of
NumPy, etc.).  The subclasses partition failures by subsystem:

* :class:`ModelError` — inconsistent machine/task/matrix definitions.
* :class:`DataGenerationError` — the synthetic-data pipeline could not
  honour the requested heterogeneity statistics.
* :class:`UtilityFunctionError` — a time-utility function definition is
  not monotone decreasing / has malformed intervals.
* :class:`WorkloadError` — trace generation parameters are infeasible.
* :class:`ScheduleError` — an allocation references unknown tasks or
  infeasible machines.
* :class:`OptimizationError` — an optimization engine was configured
  inconsistently (population size, operator probabilities, ...).
* :class:`AlgorithmLookupError` — a requested algorithm name is not in
  the portfolio registry (see :mod:`repro.core.registry`).
* :class:`AnalysisError` — a Pareto-front analysis was asked of an
  empty or degenerate front.
* :class:`ExperimentError` — experiment configuration/IO failures.
* :class:`CheckpointError` — a checkpoint is missing, incompatible with
  the requesting run, or structurally malformed.
* :class:`CorruptArtifactError` — an on-disk artifact exists but failed
  its integrity check (undecodable JSON or checksum mismatch).  Kept
  distinct from the missing-artifact case so callers can decide between
  "restart from scratch" and "refuse to silently discard data".
* :class:`ObservabilityError` — the observability layer was misused
  (duplicate metric registered under a different type, unreadable or
  schema-invalid trace/event artifacts).
* :class:`ParallelExecutionError` — the shared-memory parallel
  execution engine failed (segment creation/attachment, engine misuse).
  Like the checkpoint/artifact errors it refines
  :class:`ExperimentError`, since parallel execution is an experiment
  concern.  It carries a structured failure taxonomy: every instance
  has a ``kind`` drawn from :data:`FAILURE_KINDS` (``worker-death``,
  ``timeout``, ``cell-exception``, ``corrupt-result``) plus the ``cell``
  and ``attempt`` it concerns, so supervisors and the grid manifest can
  journal *why* a cell failed without parsing messages.  The refinements
  :class:`WorkerCrashError`, :class:`CellTimeoutError` (also a
  ``TimeoutError``), and :class:`CorruptResultError` pre-bind their
  kinds; :func:`classify_failure` maps arbitrary exceptions onto the
  taxonomy.
* :class:`GridManifestError` — the durable grid manifest was misused
  (unloadable directory, spec mismatch on resume).  Replay itself is
  total and never raises this for damaged journal *content* — torn
  tails and duplicate transitions are tolerated by design (see
  :mod:`repro.parallel.manifest`).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from typing import Any, Optional

__all__ = [
    "ReproError",
    "ModelError",
    "DataGenerationError",
    "UtilityFunctionError",
    "WorkloadError",
    "ScheduleError",
    "OptimizationError",
    "AlgorithmLookupError",
    "AnalysisError",
    "ExperimentError",
    "CheckpointError",
    "CorruptArtifactError",
    "ObservabilityError",
    "ParallelExecutionError",
    "WorkerCrashError",
    "CellTimeoutError",
    "CorruptResultError",
    "GridManifestError",
    "FAILURE_KINDS",
    "classify_failure",
]


class ReproError(Exception):
    """Base class for every intentional failure raised by :mod:`repro`."""


class ModelError(ReproError):
    """The system model (machines, task types, ETC/EPC) is inconsistent."""


class DataGenerationError(ReproError):
    """Synthetic data generation failed or was configured infeasibly."""


class UtilityFunctionError(ReproError):
    """A time-utility function definition violates the TUF contract."""


class WorkloadError(ReproError):
    """Workload/trace generation parameters are invalid."""


class ScheduleError(ReproError):
    """A resource allocation is malformed or infeasible."""


class OptimizationError(ReproError):
    """The bi-objective optimizer was configured or used incorrectly."""


class AlgorithmLookupError(OptimizationError):
    """A requested algorithm name is not registered in the portfolio."""


class AnalysisError(ReproError):
    """A Pareto-front analysis could not be performed."""


class ExperimentError(ReproError):
    """An experiment definition or its IO failed."""


class CheckpointError(ExperimentError):
    """A checkpoint is missing, malformed, or incompatible with the run."""


class CorruptArtifactError(ExperimentError):
    """An on-disk artifact failed its integrity (checksum/decode) check."""


class ObservabilityError(ReproError):
    """The observability layer was misconfigured or fed invalid data."""


#: The structured failure taxonomy of parallel grid execution.
FAILURE_KINDS = ("worker-death", "timeout", "cell-exception", "corrupt-result")


class ParallelExecutionError(ExperimentError):
    """The shared-memory parallel execution engine failed.

    Attributes
    ----------
    kind:
        One of :data:`FAILURE_KINDS`, or ``None`` for engine-misuse
        errors that are not a cell failure (bad worker count, closed
        engine, ...).
    cell:
        The grid-cell key the failure concerns, when known.
    attempt:
        The 1-based attempt that failed, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: Optional[str] = None,
        cell: Any = None,
        attempt: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.cell = cell
        self.attempt = attempt


class WorkerCrashError(ParallelExecutionError):
    """A pool worker died (SIGKILL, OOM, segfault) while holding a cell."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("kind", "worker-death")
        super().__init__(message, **kwargs)


class CellTimeoutError(ParallelExecutionError, TimeoutError):
    """A cell attempt exceeded its per-attempt deadline.

    Also a ``TimeoutError`` so pre-taxonomy callers that matched on the
    builtin keep working.
    """

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("kind", "timeout")
        super().__init__(message, **kwargs)


class CorruptResultError(ParallelExecutionError):
    """A completed cell's stored result failed its integrity check."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("kind", "corrupt-result")
        super().__init__(message, **kwargs)


class GridManifestError(ExperimentError):
    """The durable grid manifest was misused (missing dir, bad spec)."""


def classify_failure(exc: BaseException) -> str:
    """Map *exc* onto the :data:`FAILURE_KINDS` taxonomy.

    Exceptions that already carry a valid ``kind`` attribute (the
    :class:`ParallelExecutionError` refinements) keep it; otherwise
    timeouts map to ``timeout``, executor breakage (a worker killed
    under the pool) to ``worker-death``, damaged artifacts to
    ``corrupt-result``, and everything else — an exception raised *by*
    the cell body — to ``cell-exception``.
    """
    kind = getattr(exc, "kind", None)
    if kind in FAILURE_KINDS:
        return kind
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, BrokenExecutor):
        return "worker-death"
    if isinstance(exc, CorruptArtifactError):
        return "corrupt-result"
    return "cell-exception"
