"""DVFS — the paper's second named future-work direction.

Dynamic voltage and frequency scaling lets a processor trade speed for
power.  We model each machine as exposing a small set of **P-states**
(operating points): at P-state *p* with speed factor ``s_p`` and power
factor ``w_p``, a task's execution time becomes ``ETC/s_p`` and its
power ``EPC·w_p`` (so energy scales by ``w_p/s_p`` — sub-linear power
factors at reduced frequency save energy, the classic DVFS trade-off,
since dynamic power falls roughly cubically with frequency while time
grows only linearly).

**Encoding.** Each (machine, P-state) pair becomes a *virtual machine*
with its own ETC/EPC column, and all virtual machines of one physical
machine share a single queue via the evaluator's ``queue_groups``
mapping (see :class:`repro.sim.evaluator.ScheduleEvaluator`).  The
chromosome's machine gene then selects placement *and* frequency
jointly, and the unchanged NSGA-II machinery optimizes both — no new
operators required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.model.machine import Machine, MachineType
from repro.model.matrices import EPCMatrix, ETCMatrix
from repro.model.system import SystemModel
from repro.sim.evaluator import DEFAULT_KERNEL_METHOD, ScheduleEvaluator
from repro.types import IntArray
from repro.workload.trace import Trace

__all__ = ["PState", "DVFS_PRESETS", "expand_system_dvfs", "make_dvfs_evaluator"]


@dataclass(frozen=True, slots=True)
class PState:
    """One processor operating point.

    Attributes
    ----------
    name:
        Label (e.g. ``"p0"`` for nominal).
    speed_factor:
        Execution-rate multiplier (1.0 = nominal; 0.7 = 30% slower).
    power_factor:
        Power multiplier under load (1.0 = nominal).  Energy per task
        scales by ``power_factor / speed_factor``.
    """

    name: str
    speed_factor: float
    power_factor: float

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ModelError(f"speed_factor must be > 0, got {self.speed_factor}")
        if self.power_factor <= 0:
            raise ModelError(f"power_factor must be > 0, got {self.power_factor}")

    @property
    def energy_factor(self) -> float:
        """Per-task energy multiplier at this operating point."""
        return self.power_factor / self.speed_factor


#: A three-point DVFS ladder with roughly cubic dynamic-power scaling
#: plus a static floor: f³·0.7 + 0.3 at relative frequency f.
DVFS_PRESETS: tuple[PState, ...] = (
    PState("p0-nominal", speed_factor=1.0, power_factor=1.0),
    PState("p1-reduced", speed_factor=0.8, power_factor=0.7 * 0.8**3 + 0.3),
    PState("p2-low", speed_factor=0.6, power_factor=0.7 * 0.6**3 + 0.3),
)


def expand_system_dvfs(
    system: SystemModel, pstates: Sequence[PState] = DVFS_PRESETS
) -> tuple[SystemModel, IntArray]:
    """Expand *system* with one virtual machine per (machine, P-state).

    Returns
    -------
    ``(virtual_system, queue_groups)`` where ``queue_groups[v]`` is the
    physical machine index of virtual machine *v*.  Virtual machines
    are laid out machine-major: ``v = m * P + p``.

    Machine *types* are expanded the same way (type-major), so the
    virtual system's ETC/EPC matrices carry the scaled values and every
    downstream component (TUF tables, heuristics, serialization) works
    unchanged.
    """
    if not pstates:
        raise ModelError("at least one P-state is required")
    P = len(pstates)
    Mt = system.num_machine_types

    etc = system.etc.values
    epc = system.epc.values
    feasible = system.etc.feasible
    # Column layout: type-major — columns [j*P + p].
    etc_v = np.empty((system.num_task_types, Mt * P), dtype=np.float64)
    epc_v = np.empty_like(etc_v)
    feas_v = np.empty(etc_v.shape, dtype=bool)
    for p, ps in enumerate(pstates):
        etc_v[:, p::P] = etc / ps.speed_factor
        epc_v[:, p::P] = epc * ps.power_factor
        feas_v[:, p::P] = feasible
    etc_v[~feas_v] = np.inf
    epc_v[~feas_v] = np.inf

    machine_types: list[MachineType] = []
    for mt in system.machine_types:
        for p, ps in enumerate(pstates):
            machine_types.append(
                MachineType(
                    name=f"{mt.name} @{ps.name}",
                    index=mt.index * P + p,
                    category=mt.category,
                    supported_task_types=mt.supported_task_types,
                    idle_power_watts=mt.idle_power_watts,
                )
            )
    machines: list[Machine] = []
    queue_groups = np.empty(system.num_machines * P, dtype=np.int64)
    for m in system.machines:
        for p, ps in enumerate(pstates):
            v = m.index * P + p
            machines.append(
                Machine(
                    name=f"{m.name} @{ps.name}",
                    index=v,
                    machine_type=machine_types[m.machine_type.index * P + p],
                )
            )
            queue_groups[v] = m.index

    virtual = SystemModel(
        machine_types=tuple(machine_types),
        machines=tuple(machines),
        task_types=system.task_types,
        etc=ETCMatrix(etc_v, feas_v),
        epc=EPCMatrix(epc_v, feas_v),
    )
    return virtual, queue_groups


def make_dvfs_evaluator(
    system: SystemModel,
    trace: Trace,
    pstates: Sequence[PState] = DVFS_PRESETS,
    check_feasibility: bool = False,
    kernel_method: str = DEFAULT_KERNEL_METHOD,
) -> ScheduleEvaluator:
    """A schedule evaluator over the DVFS-expanded virtual machine space.

    Plug the returned evaluator into :class:`repro.core.nsga2.NSGA2`
    exactly like a plain one; chromosomes then choose (machine,
    P-state) jointly.  Virtual machines of one physical machine share
    its queue.
    """
    virtual, queue_groups = expand_system_dvfs(system, pstates)
    return ScheduleEvaluator(
        virtual, trace,
        check_feasibility=check_feasibility,
        queue_groups=queue_groups,
        kernel_method=kernel_method,
    )
