"""Future-work extensions named in the paper's conclusion (Section VII).

"There are many possible directions for future work.  Two are:
dropping tasks that will generate negligible utility when they
complete, and incorporating dynamic voltage and frequency scaling
capabilities of processors."

* :mod:`repro.extensions.dropping` — post-allocation task dropping:
  tasks whose earned utility falls below a threshold are removed from
  their queues (saving their energy and pulling later queue-mates
  earlier), iterated to a fixed point.
* :mod:`repro.extensions.dvfs` — per-task DVFS: every machine exposes
  several P-states (operating points); the allocation problem gains a
  per-task operating-point choice, modeled as virtual machines that
  share the physical machine's queue, so the unchanged NSGA-II
  optimizes placement and frequency jointly.
"""

from repro.extensions.dropping import DroppingPolicy, apply_dropping
from repro.extensions.dvfs import PState, DVFS_PRESETS, expand_system_dvfs, make_dvfs_evaluator
from repro.extensions.robustness import (
    NoiseModel,
    RobustnessAnalyzer,
    RobustnessReport,
    front_robustness,
)
from repro.extensions.online import (
    BudgetedUtilityPolicy,
    MaxUtilityPolicy,
    OnlineDispatcher,
    UtilityPerEnergyPolicy,
    budget_from_front,
)

__all__ = [
    "DroppingPolicy",
    "apply_dropping",
    "PState",
    "DVFS_PRESETS",
    "expand_system_dvfs",
    "make_dvfs_evaluator",
    "OnlineDispatcher",
    "MaxUtilityPolicy",
    "UtilityPerEnergyPolicy",
    "BudgetedUtilityPolicy",
    "budget_from_front",
    "NoiseModel",
    "RobustnessAnalyzer",
    "RobustnessReport",
    "front_robustness",
]
