"""Online dynamic dispatch under an energy constraint.

The paper positions its offline bi-objective analysis as the *tuning
stage* for a live system: "A system administrator can use this
bi-objective optimization approach to analyze the utility-energy
trade-offs ... and then set parameters, such as energy constraints,
according to the needs of that system.  These energy constraints could
then be used in conjunction with a separate online dynamic utility
maximization heuristics."

This module closes that loop.  An :class:`OnlineDispatcher` replays a
trace *without lookahead* — each task is revealed at its arrival time
and must be mapped (or dropped) immediately — under a pluggable policy:

* :class:`MaxUtilityPolicy` — the online analogue of the Max Utility
  seed: dispatch to the machine maximizing the task's utility given
  current queues.
* :class:`UtilityPerEnergyPolicy` — online Max Utility-per-Energy.
* :class:`BudgetedUtilityPolicy` — utility maximization subject to a
  total energy budget: machines whose energy cost no longer fits the
  remaining budget are excluded; when no machine fits, the task is
  dropped (consuming nothing).  The budget typically comes from the
  offline Pareto front via :func:`budget_from_front` — e.g. the energy
  coordinate of the max utility-per-energy region.

The dispatcher's accounting is identical to the offline simulator's
(same ETC/EPC/TUF semantics), so online outcomes are directly
comparable to offline front points.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.efficiency import max_utility_per_energy_region
from repro.analysis.pareto_front import ParetoFront
from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.types import BoolArray, FloatArray, IntArray
from repro.utility.vectorized import TUFTable
from repro.workload.trace import Trace

__all__ = [
    "DispatchContext",
    "OnlinePolicy",
    "MaxUtilityPolicy",
    "UtilityPerEnergyPolicy",
    "BudgetedUtilityPolicy",
    "OnlineOutcome",
    "OnlineDispatcher",
    "budget_from_front",
]

#: Sentinel a policy returns to drop the task.
DROP = -1


@dataclass(frozen=True)
class DispatchContext:
    """Everything a policy may inspect for one dispatch decision.

    All arrays are indexed by machine instance; infeasible machines
    carry ``inf`` costs.

    Attributes
    ----------
    task:
        Index of the arriving task.
    task_type:
        Its task type.
    now:
        The arrival time (decision instant).
    completion_times:
        Would-be completion time on each machine (queueing included).
    utilities:
        Utility earned on each machine at those completions
        (``-inf`` where infeasible).
    energies:
        Energy cost (EEC) on each machine.
    remaining_budget:
        Energy remaining under the active budget (``inf`` if none).
    """

    task: int
    task_type: int
    now: float
    completion_times: FloatArray
    utilities: FloatArray
    energies: FloatArray
    remaining_budget: float


class OnlinePolicy(abc.ABC):
    """Maps one arriving task to a machine (or drops it)."""

    #: Report name; subclasses override.
    name: str = "policy"

    @abc.abstractmethod
    def choose(self, context: DispatchContext) -> int:
        """Return a machine index, or :data:`DROP` to drop the task."""


class MaxUtilityPolicy(OnlinePolicy):
    """Online utility maximization (ties: earlier completion)."""

    name = "online-max-utility"

    def choose(self, context: DispatchContext) -> int:
        best = context.utilities.max()
        if best == -np.inf:
            return DROP
        candidates = np.flatnonzero(context.utilities == best)
        return int(candidates[np.argmin(context.completion_times[candidates])])


class UtilityPerEnergyPolicy(OnlinePolicy):
    """Online utility-per-energy maximization."""

    name = "online-utility-per-energy"

    def choose(self, context: DispatchContext) -> int:
        with np.errstate(invalid="ignore"):
            ratio = np.where(
                np.isfinite(context.energies),
                context.utilities / context.energies,
                -np.inf,
            )
        best = ratio.max()
        if best == -np.inf:
            return DROP
        candidates = np.flatnonzero(ratio == best)
        sub = np.lexsort(
            (context.completion_times[candidates], context.energies[candidates])
        )
        return int(candidates[sub[0]])


@dataclass
class BudgetedUtilityPolicy(OnlinePolicy):
    """Utility maximization under a hard total-energy budget.

    Attributes
    ----------
    drop_worthless:
        Also drop tasks whose best achievable utility is below this
        threshold even when the budget would allow them — spending
        budget on hopeless tasks starves later valuable ones.
    """

    drop_worthless: float = 0.0
    name = "online-budgeted-utility"

    def choose(self, context: DispatchContext) -> int:
        affordable = context.energies <= context.remaining_budget
        utilities = np.where(affordable, context.utilities, -np.inf)
        best = utilities.max()
        if best == -np.inf or best < self.drop_worthless:
            return DROP
        candidates = np.flatnonzero(utilities == best)
        # Among equal-utility choices prefer the cheaper one: stretch
        # the budget.
        sub = np.lexsort(
            (context.completion_times[candidates], context.energies[candidates])
        )
        return int(candidates[sub[0]])


@dataclass(frozen=True)
class OnlineOutcome:
    """Result of one online replay.

    Attributes
    ----------
    policy:
        Policy name.
    energy, utility:
        Totals over executed tasks.
    dropped:
        ``(T,)`` mask of dropped tasks.
    machine_assignment:
        ``(T,)`` machine per task (−1 where dropped).
    start_times, completion_times:
        ``(T,)`` arrays (0 where dropped).
    budget:
        The energy budget in force (``inf`` if none).
    """

    policy: str
    energy: float
    utility: float
    dropped: BoolArray
    machine_assignment: IntArray
    start_times: FloatArray
    completion_times: FloatArray
    budget: float

    @property
    def num_dropped(self) -> int:
        """Number of tasks dropped."""
        return int(self.dropped.sum())

    @property
    def objectives(self) -> tuple[float, float]:
        """``(energy, utility)`` for comparison with offline fronts."""
        return (self.energy, self.utility)


class OnlineDispatcher:
    """Replays a trace task by task under an online policy.

    Unlike the offline NSGA-II (which knows the whole trace), the
    dispatcher sees each task only at its arrival and never reorders:
    machines execute their queues in dispatch order.  This is the
    "online dynamic heuristic" regime the paper's conclusions target.
    """

    def __init__(self, system: SystemModel, trace: Trace) -> None:
        trace.validate_against(system.num_task_types)
        self.system = system
        self.trace = trace
        self._etc = system.etc_task_machine[trace.task_types]
        self._eec = system.eec_task_machine[trace.task_types]
        self._tuf = TUFTable.from_system(system)

    def run(
        self,
        policy: OnlinePolicy,
        energy_budget: Optional[float] = None,
    ) -> OnlineOutcome:
        """Replay the trace under *policy*.

        Parameters
        ----------
        policy:
            The dispatch rule.
        energy_budget:
            Optional hard total-energy budget made visible to the
            policy via ``remaining_budget`` (and enforced: a dispatch
            exceeding it raises, so policies must respect it).
        """
        if energy_budget is not None and energy_budget < 0:
            raise ScheduleError(
                f"energy budget must be >= 0, got {energy_budget}"
            )
        T = self.trace.num_tasks
        M = self.system.num_machines
        available = np.zeros(M, dtype=np.float64)
        remaining = np.inf if energy_budget is None else float(energy_budget)

        assignment = np.full(T, -1, dtype=np.int64)
        dropped = np.zeros(T, dtype=bool)
        start = np.zeros(T, dtype=np.float64)
        finish = np.zeros(T, dtype=np.float64)
        total_energy = 0.0
        total_utility = 0.0

        for t in range(T):  # online replay: inherently sequential
            arrival = float(self.trace.arrival_times[t])
            tt = int(self.trace.task_types[t])
            begin = np.maximum(available, arrival)
            completion = begin + self._etc[t]
            feasible = np.isfinite(completion)
            utilities = np.full(M, -np.inf)
            idx = np.flatnonzero(feasible)
            utilities[idx] = self._tuf.evaluate(
                np.full(idx.size, tt, dtype=np.int64), completion[idx] - arrival
            )
            context = DispatchContext(
                task=t,
                task_type=tt,
                now=arrival,
                completion_times=completion,
                utilities=utilities,
                energies=self._eec[t],
                remaining_budget=remaining,
            )
            choice = policy.choose(context)
            if choice == DROP:
                dropped[t] = True
                continue
            if not (0 <= choice < M) or not feasible[choice]:
                raise ScheduleError(
                    f"{policy.name}: chose invalid machine {choice} for task {t}"
                )
            cost = float(self._eec[t, choice])
            if cost > remaining + 1e-9:
                raise ScheduleError(
                    f"{policy.name}: dispatch of task {t} exceeds the energy "
                    f"budget (cost {cost:.1f} J, remaining {remaining:.1f} J)"
                )
            assignment[t] = choice
            start[t] = begin[choice]
            finish[t] = completion[choice]
            available[choice] = completion[choice]
            total_energy += cost
            total_utility += float(utilities[choice])
            remaining -= cost

        return OnlineOutcome(
            policy=policy.name,
            energy=total_energy,
            utility=total_utility,
            dropped=dropped,
            machine_assignment=assignment,
            start_times=start,
            completion_times=finish,
            budget=np.inf if energy_budget is None else float(energy_budget),
        )


def budget_from_front(front: ParetoFront, slack: float = 1.0) -> float:
    """Derive an online energy budget from an offline Pareto front.

    Returns the energy coordinate of the front's max utility-per-energy
    point scaled by *slack* — the administrator workflow the paper
    sketches (run the offline analysis, read off the efficient region,
    constrain the online system to it).
    """
    if slack <= 0:
        raise ScheduleError(f"slack must be positive, got {slack}")
    region = max_utility_per_energy_region(front)
    return region.peak_energy * slack
