"""Robustness of allocations under ETC estimation error.

ETC entries are *estimates* ("Estimated Time to Compute"); real
runtimes deviate.  The robustness literature the paper cites (Apodaca
et al. 2011; Abbasi et al. 2006) asks how allocations behave under
that uncertainty.  This module answers it by Monte-Carlo:

* actual execution time = ``ETC × ξ`` with per-task multiplicative
  noise ``ξ`` drawn from a mean-1 lognormal (σ parameterizes estimate
  quality; power is unchanged, so actual energy = ``EPC × actual
  time``, scaling with the same ξ);
* each noise sample re-simulates the allocation's queues (the
  recurrence is re-run, so delays *cascade* — the interesting part);
* :class:`RobustnessReport` summarizes the induced (energy, utility)
  distributions and the probability of staying within a tolerance of
  the nominal utility.

:func:`front_robustness` applies this to every chromosome of a final
NSGA-II snapshot, exposing which front regions are fragile — typically
the max-utility end, whose tightly packed queues amplify overruns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.nsga2 import GenerationSnapshot
from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.rng import SeedLike, ensure_rng
from repro.sim.evaluator import _segmented_finish_times
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray
from repro.utility.vectorized import TUFTable
from repro.workload.trace import Trace

__all__ = ["NoiseModel", "RobustnessReport", "RobustnessAnalyzer", "front_robustness"]


@dataclass(frozen=True, slots=True)
class NoiseModel:
    """Mean-1 lognormal multiplicative runtime noise.

    Attributes
    ----------
    sigma:
        Log-space standard deviation; 0.1 ≈ ±10% typical error, 0.5 ≈
        heavy-tailed estimates.
    """

    sigma: float = 0.2

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ScheduleError(f"sigma must be >= 0, got {self.sigma}")

    def sample(self, shape, rng: np.random.Generator) -> FloatArray:
        """Draw mean-1 lognormal factors of the given shape."""
        if self.sigma == 0:
            return np.ones(shape)
        # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2): set mu so
        # the mean is exactly 1.
        mu = -0.5 * self.sigma**2
        return rng.lognormal(mean=mu, sigma=self.sigma, size=shape)


@dataclass(frozen=True)
class RobustnessReport:
    """Monte-Carlo outcome distribution of one allocation.

    Attributes
    ----------
    nominal_energy, nominal_utility:
        Noise-free objective values.
    mean_energy, std_energy, mean_utility, std_utility:
        Sample statistics over noise draws.
    utility_q05, utility_q95:
        5th/95th percentile of realized utility.
    prob_within_tolerance:
        Fraction of samples whose utility stayed above
        ``(1 − tolerance) × nominal_utility``.
    samples:
        Number of Monte-Carlo draws.
    """

    nominal_energy: float
    nominal_utility: float
    mean_energy: float
    std_energy: float
    mean_utility: float
    std_utility: float
    utility_q05: float
    utility_q95: float
    prob_within_tolerance: float
    samples: int

    @property
    def utility_degradation(self) -> float:
        """Relative mean-utility loss versus nominal (>= -eps)."""
        if self.nominal_utility == 0:
            return 0.0
        return 1.0 - self.mean_utility / self.nominal_utility


class RobustnessAnalyzer:
    """Monte-Carlo robustness evaluation for one (system, trace)."""

    def __init__(
        self,
        system: SystemModel,
        trace: Trace,
        noise: NoiseModel = NoiseModel(),
        samples: int = 200,
        tolerance: float = 0.1,
        seed: SeedLike = None,
    ) -> None:
        if samples < 1:
            raise ScheduleError(f"samples must be >= 1, got {samples}")
        if not (0.0 <= tolerance < 1.0):
            raise ScheduleError(f"tolerance must be in [0, 1); got {tolerance}")
        trace.validate_against(system.num_task_types)
        self.system = system
        self.trace = trace
        self.noise = noise
        self.samples = samples
        self.tolerance = tolerance
        self._rng = ensure_rng(seed)
        self._task_types = trace.task_types
        self._arrivals = trace.arrival_times
        self._etc_rows = system.etc_task_machine[self._task_types]
        self._epc_rows = system.epc_task_machine[self._task_types]
        self._tuf = TUFTable.from_system(system)
        self._row_index = np.arange(trace.num_tasks)

    def analyze(self, allocation: ResourceAllocation) -> RobustnessReport:
        """Monte-Carlo report for one allocation.

        All noise draws are evaluated in a single segmented pass: the S
        samples are laid out like S chromosomes sharing the allocation
        but with perturbed execution times.
        """
        if allocation.num_tasks != self.trace.num_tasks:
            raise ScheduleError(
                f"allocation covers {allocation.num_tasks} tasks; trace has "
                f"{self.trace.num_tasks}"
            )
        T = self.trace.num_tasks
        S = self.samples
        assignment = allocation.machine_assignment
        base_exec = self._etc_rows[self._row_index, assignment]
        power = self._epc_rows[self._row_index, assignment]
        if not np.all(np.isfinite(base_exec)):
            raise ScheduleError("allocation places tasks on infeasible machines")

        # Nominal (noise-free) evaluation.
        nominal_finish = _segmented_finish_times(
            assignment, allocation.scheduling_order, self._arrivals, base_exec
        )
        nominal_utility = float(
            self._tuf.evaluate(self._task_types, nominal_finish - self._arrivals).sum()
        )
        nominal_energy = float((base_exec * power).sum())

        # S perturbed evaluations in one pass.
        factors = self.noise.sample((S, T), self._rng)
        exec_times = (base_exec[None, :] * factors).ravel()
        group = (
            np.tile(assignment, S)
            + np.repeat(np.arange(S, dtype=np.int64), T) * self.system.num_machines
        )
        orders = np.tile(allocation.scheduling_order, S)
        arrivals = np.tile(self._arrivals, S)
        finish = _segmented_finish_times(group, orders, arrivals, exec_times)
        elapsed = finish - arrivals
        utilities = self._tuf.evaluate(
            np.tile(self._task_types, S), elapsed
        ).reshape(S, T).sum(axis=1)
        energies = (exec_times * np.tile(power, S)).reshape(S, T).sum(axis=1)

        within = np.mean(
            utilities >= (1.0 - self.tolerance) * nominal_utility
        )
        return RobustnessReport(
            nominal_energy=nominal_energy,
            nominal_utility=nominal_utility,
            mean_energy=float(energies.mean()),
            std_energy=float(energies.std()),
            mean_utility=float(utilities.mean()),
            std_utility=float(utilities.std()),
            utility_q05=float(np.quantile(utilities, 0.05)),
            utility_q95=float(np.quantile(utilities, 0.95)),
            prob_within_tolerance=float(within),
            samples=S,
        )


def front_robustness(
    analyzer: RobustnessAnalyzer, snapshot: GenerationSnapshot
) -> list[RobustnessReport]:
    """Robustness report for every chromosome of a front snapshot.

    The snapshot must carry solutions (``store_front_solutions`` or a
    final snapshot).
    """
    if snapshot.front_assignments is None or snapshot.front_orders is None:
        raise ScheduleError(
            "snapshot does not carry chromosomes; use a final snapshot or "
            "enable store_front_solutions"
        )
    reports = []
    for i in range(snapshot.front_size):
        alloc = ResourceAllocation(
            machine_assignment=snapshot.front_assignments[i],
            scheduling_order=snapshot.front_orders[i],
        )
        reports.append(analyzer.analyze(alloc))
    return reports
