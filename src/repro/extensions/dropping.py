"""Task dropping — the paper's first named future-work direction.

"Dropping tasks that will generate negligible utility when they
complete": if a task's time-utility function has decayed to (nearly)
nothing by its completion time, executing it wastes energy.  This
module evaluates an allocation under a dropping policy:

1. simulate the allocation;
2. mark tasks whose earned utility is below the threshold as dropped;
3. remove them from their machine queues (their energy is saved and
   every later task on that machine starts earlier, possibly *raising*
   later tasks' utility);
4. repeat — shortening queues only raises the remaining tasks'
   utilities, so the dropped set grows monotonically and the iteration
   reaches a fixed point in at most T rounds (tested).

The result is a strictly-no-worse (energy, utility) point for any
threshold of 0-utility tasks, and a tunable energy/utility knob above
that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.sim.evaluator import EvaluationResult, ScheduleEvaluator
from repro.sim.schedule import ResourceAllocation
from repro.types import BoolArray

__all__ = ["DroppingPolicy", "DroppingResult", "apply_dropping"]


@dataclass(frozen=True, slots=True)
class DroppingPolicy:
    """Parameters of the dropping rule.

    Attributes
    ----------
    utility_threshold:
        Tasks earning strictly less than this are dropped.  0 drops
        nothing (utilities are non-negative); small positive values
        drop the "negligible utility" tail the paper describes.
    max_rounds:
        Safety bound on fixed-point iterations (the loop provably
        terminates in at most T rounds; in practice a handful).
    """

    utility_threshold: float = 1e-9
    max_rounds: int = 50

    def __post_init__(self) -> None:
        if self.utility_threshold < 0:
            raise ScheduleError(
                f"utility_threshold must be >= 0, got {self.utility_threshold}"
            )
        if self.max_rounds < 1:
            raise ScheduleError(f"max_rounds must be >= 1, got {self.max_rounds}")


@dataclass(frozen=True)
class DroppingResult:
    """Outcome of evaluating an allocation under dropping.

    Attributes
    ----------
    energy, utility:
        Objective values counting only executed tasks.
    dropped:
        ``(T,)`` bool mask of dropped tasks.
    rounds:
        Fixed-point iterations performed.
    baseline:
        The no-dropping evaluation, for comparison.
    """

    energy: float
    utility: float
    dropped: BoolArray
    rounds: int
    baseline: EvaluationResult

    @property
    def num_dropped(self) -> int:
        """Number of tasks dropped."""
        return int(self.dropped.sum())

    @property
    def energy_saved(self) -> float:
        """Energy saved versus executing everything."""
        return self.baseline.energy - self.energy


def apply_dropping(
    evaluator: ScheduleEvaluator,
    allocation: ResourceAllocation,
    policy: DroppingPolicy = DroppingPolicy(),
) -> DroppingResult:
    """Evaluate *allocation* under the dropping *policy*.

    Dropped tasks are simulated by reassigning them to a virtual "never
    counted" state: they are excluded from queues by evaluating the
    allocation restricted to kept tasks.  Restriction is implemented by
    giving dropped tasks a scheduling key *after* every kept task on a
    dedicated pass — simplest correct form: re-evaluate the reduced
    problem with the evaluator's arrays masked.
    """
    baseline = evaluator.evaluate(allocation)
    T = allocation.num_tasks
    dropped = np.zeros(T, dtype=bool)
    current = baseline
    rounds = 0

    for rounds in range(1, policy.max_rounds + 1):
        newly = (~dropped) & (current.task_utilities < policy.utility_threshold)
        if not newly.any():
            break
        dropped |= newly
        if dropped.all():
            break
        current = _evaluate_subset(evaluator, allocation, ~dropped)

    if dropped.all():
        return DroppingResult(
            energy=0.0,
            utility=0.0,
            dropped=dropped,
            rounds=rounds,
            baseline=baseline,
        )

    kept = ~dropped
    energy = float(current.task_energies[kept].sum())
    utility = float(current.task_utilities[kept].sum())
    return DroppingResult(
        energy=energy,
        utility=utility,
        dropped=dropped,
        rounds=rounds,
        baseline=baseline,
    )


def _evaluate_subset(
    evaluator: ScheduleEvaluator,
    allocation: ResourceAllocation,
    keep: BoolArray,
) -> EvaluationResult:
    """Evaluate the allocation with dropped tasks removed from queues.

    Dropped tasks are parked on their original machines with zero-cost
    sentinel handling: we simply re-run the closed-form evaluation on
    the kept subset by building a reduced evaluator view.  To avoid
    rebuilding evaluator state per round, the kept tasks keep their
    original scheduling keys (relative order is unchanged), and dropped
    tasks are assigned keys beyond every kept key on their machine —
    equivalent to removal for all kept tasks; the dropped tasks'
    reported utilities/energies are ignored by the caller.
    """
    order = allocation.scheduling_order.astype(np.int64, copy=True)
    # Push dropped tasks after all kept tasks: add a uniform offset
    # larger than the key range.
    span = int(order.max() - order.min()) + 1
    order[~keep] += span
    shifted = ResourceAllocation(
        machine_assignment=allocation.machine_assignment,
        scheduling_order=order,
    )
    return evaluator.evaluate(shifted)
