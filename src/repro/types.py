"""Shared type aliases and small value types used across subsystems.

Keeping these in one leaf module avoids import cycles between the model,
simulator, and optimizer packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import numpy.typing as npt

__all__ = [
    "FloatArray",
    "IntArray",
    "BoolArray",
    "Seconds",
    "Watts",
    "Joules",
    "ObjectivePoint",
]

#: 1-D or 2-D array of float64 values.
FloatArray = npt.NDArray[np.float64]
#: 1-D or 2-D array of integer indices.
IntArray = npt.NDArray[np.int64]
#: Boolean mask array.
BoolArray = npt.NDArray[np.bool_]

#: Execution time, seconds.
Seconds = float
#: Power, watts.
Watts = float
#: Energy, joules.
Joules = float


@dataclass(frozen=True, slots=True)
class ObjectivePoint:
    """A single point in the (energy, utility) objective space.

    Attributes
    ----------
    energy:
        Total energy consumed by the allocation, in joules.
    utility:
        Total utility earned by the allocation (dimensionless units, as
        defined by the time-utility functions).
    """

    energy: Joules
    utility: float

    @property
    def energy_megajoules(self) -> float:
        """Energy in megajoules — the unit on the paper's x-axes."""
        return self.energy / 1.0e6

    @property
    def utility_per_energy(self) -> float:
        """Utility earned per joule spent (``inf``-safe for zero energy)."""
        if self.energy == 0.0:
            return float("inf") if self.utility > 0 else 0.0
        return self.utility / self.energy

    def as_tuple(self) -> tuple[float, float]:
        """``(energy, utility)`` tuple, for array construction."""
        return (self.energy, self.utility)
