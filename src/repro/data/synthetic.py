"""Synthetic data creation preserving heterogeneity (Section III-D2).

The pipeline, exactly as the paper describes it (applied identically to
the ETC and EPC matrices):

1. compute the *row average* of each real task type (its mean value
   across all machines);
2. compute the mvsk heterogeneity measures of those row averages,
   build a Gram-Charlier PDF from them, and sample it to create row
   averages for any number of new task types;
3. compute every real task type's *execution-time ratio* on every
   machine (entry ÷ its row average — faster machines < 1);
4. per machine, compute the mvsk of its ratios, build a Gram-Charlier
   PDF, and sample ratios for the new task types on that machine;
5. the new entry is ``sampled ratio × sampled row average``; the real
   rows are retained unchanged at the top of the expanded matrix.

Positive-support floors are imposed on both PDFs, since execution
times, powers, and ratios must be strictly positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.gram_charlier import GramCharlierPDF
from repro.data.heterogeneity import HeterogeneityStats, mvsk
from repro.errors import DataGenerationError
from repro.rng import SeedLike, spawn
from repro.types import FloatArray

__all__ = ["SyntheticExpansion", "expand_matrix", "expand_matrix_pair"]

#: Fraction of the smallest observed value used as the sampling floor.
_FLOOR_FRACTION = 0.1


@dataclass(frozen=True)
class SyntheticExpansion:
    """Result of expanding one matrix: values plus generation diagnostics.

    Attributes
    ----------
    values:
        ``(num_real + num_new, M)`` expanded matrix; rows
        ``[:num_real]`` are the untouched real data.
    num_real:
        Number of original (real) task-type rows.
    row_average_stats:
        mvsk of the real row averages (the sampling target).
    ratio_stats:
        Per-machine mvsk of the real execution-time ratios.
    """

    values: FloatArray
    num_real: int
    row_average_stats: HeterogeneityStats
    ratio_stats: tuple[HeterogeneityStats, ...]

    @property
    def num_new(self) -> int:
        """Number of synthetic task-type rows appended."""
        return self.values.shape[0] - self.num_real

    def new_rows(self) -> FloatArray:
        """The synthetic rows only."""
        return self.values[self.num_real:]


def expand_matrix(
    base: FloatArray,
    num_new_task_types: int,
    seed: SeedLike = None,
    floor_fraction: float = _FLOOR_FRACTION,
) -> SyntheticExpansion:
    """Expand *base* with *num_new_task_types* heterogeneity-preserving rows.

    Parameters
    ----------
    base:
        ``(T, M)`` real matrix, strictly positive and fully feasible
        (the paper's historical set has no infeasible pairs; special-
        purpose columns are added *after* expansion).
    num_new_task_types:
        Number of synthetic rows to append (>= 0).
    seed:
        Seed or generator; the row-average stream and each machine's
        ratio stream are independent spawns, so adding machines does
        not perturb the row averages drawn.
    floor_fraction:
        Sampling floors are this fraction of the smallest observed
        row average / ratio.
    """
    base = np.asarray(base, dtype=np.float64)
    if base.ndim != 2 or base.size == 0:
        raise DataGenerationError(f"base matrix must be non-empty 2-D; got {base.shape}")
    if not np.all(np.isfinite(base)) or np.any(base <= 0):
        raise DataGenerationError(
            "base matrix must be strictly positive and fully feasible; "
            "add special-purpose columns after expansion"
        )
    if num_new_task_types < 0:
        raise DataGenerationError(
            f"num_new_task_types must be >= 0, got {num_new_task_types}"
        )
    T, M = base.shape

    # Step 1-2: sample new row averages from the Gram-Charlier PDF of the
    # real row averages.
    row_avgs = base.mean(axis=1)
    row_stats = mvsk(row_avgs)
    ratios = base / row_avgs[:, None]
    ratio_stats = tuple(mvsk(ratios[:, j]) for j in range(M))

    if num_new_task_types == 0:
        return SyntheticExpansion(
            values=base.copy(),
            num_real=T,
            row_average_stats=row_stats,
            ratio_stats=ratio_stats,
        )

    streams = spawn(seed, M + 1)
    row_pdf = GramCharlierPDF.from_stats(
        row_stats, support_floor=floor_fraction * float(row_avgs.min())
    )
    new_row_avgs = row_pdf.sample(num_new_task_types, streams[0])

    # Step 3-4: per machine, sample execution-time ratios for the new
    # task types from that machine's ratio PDF.
    new_ratios = np.empty((num_new_task_types, M), dtype=np.float64)
    for j in range(M):
        pdf_j = GramCharlierPDF.from_stats(
            ratio_stats[j],
            support_floor=floor_fraction * float(ratios[:, j].min()),
        )
        new_ratios[:, j] = pdf_j.sample(num_new_task_types, streams[j + 1])

    # Step 5: actual values = ratio × row average.
    new_rows = new_ratios * new_row_avgs[:, None]
    values = np.vstack([base, new_rows])
    return SyntheticExpansion(
        values=values,
        num_real=T,
        row_average_stats=row_stats,
        ratio_stats=ratio_stats,
    )


def expand_matrix_pair(
    etc: FloatArray,
    epc: FloatArray,
    num_new_task_types: int,
    seed: SeedLike = None,
    floor_fraction: float = _FLOOR_FRACTION,
) -> tuple[SyntheticExpansion, SyntheticExpansion]:
    """Expand ETC and EPC together ("the process is identical for EPC").

    The two matrices use independent spawned streams so the ETC
    expansion is unchanged by whether an EPC expansion follows.
    """
    etc = np.asarray(etc, dtype=np.float64)
    epc = np.asarray(epc, dtype=np.float64)
    if etc.shape != epc.shape:
        raise DataGenerationError(
            f"ETC shape {etc.shape} does not match EPC shape {epc.shape}"
        )
    etc_stream, epc_stream = spawn(seed, 2)
    etc_exp = expand_matrix(etc, num_new_task_types, etc_stream, floor_fraction)
    epc_exp = expand_matrix(epc, num_new_task_types, epc_stream, floor_fraction)
    return etc_exp, epc_exp
