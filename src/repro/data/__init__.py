"""Data sets and data-generation methods (paper Section III-D).

* :mod:`repro.data.historical` — the real 5×9 benchmark data set
  (Table I machines × Table II programs), reconstructed from published
  magnitudes (see DESIGN.md substitution table), plus a CSV loader for
  user-supplied real data.
* :mod:`repro.data.heterogeneity` — the mean / coefficient-of-variation
  / skewness / kurtosis ("mvsk") heterogeneity measures of Al-Qawasmeh
  et al. used to characterize and preserve data-set heterogeneity.
* :mod:`repro.data.gram_charlier` — the Gram-Charlier Type-A expansion
  PDF and its sampler, used to draw new row averages and execution-time
  ratios with prescribed mvsk.
* :mod:`repro.data.synthetic` — the Section III-D2 pipeline that
  expands a small real data set into a large one preserving its
  heterogeneity characteristics.
* :mod:`repro.data.special_purpose` — construction of 10x-faster
  special-purpose machine types.
* :mod:`repro.data.cvb` — the classic coefficient-of-variation-based
  ETC generator (Ali et al. 2000), kept as a comparison baseline.
"""

from repro.data.gram_charlier import GramCharlierPDF
from repro.data.heterogeneity import HeterogeneityStats, ks_similarity, mvsk
from repro.data.historical import (
    MACHINE_NAMES,
    PROGRAM_NAMES,
    historical_epc,
    historical_etc,
    historical_system,
)
from repro.data.synthetic import SyntheticExpansion, expand_matrix_pair

__all__ = [
    "MACHINE_NAMES",
    "PROGRAM_NAMES",
    "historical_etc",
    "historical_epc",
    "historical_system",
    "HeterogeneityStats",
    "mvsk",
    "ks_similarity",
    "GramCharlierPDF",
    "SyntheticExpansion",
    "expand_matrix_pair",
]
