"""Coefficient-of-variation-based (CVB) ETC generation.

The classic synthetic-ETC method of Ali, Siegel, Maheswaran, Hensgen &
Ali, *"Representing task and machine heterogeneities for heterogeneous
computing systems"* (2000) — reference [15] of the paper.  It is not
the paper's own generation method (that is the Gram-Charlier pipeline
in :mod:`repro.data.synthetic`) but serves as a well-understood
baseline: the A4 benchmark contrasts heterogeneity preservation of the
two generators, and tests use CVB matrices as independent fixtures.

Method (inconsistent-heterogeneity variant):

1. draw a task vector ``q[i] ~ Gamma(α_task, β_task·)`` with
   ``α_task = 1/V_task²`` and mean ``μ_task`` — one characteristic
   magnitude per task;
2. for each row, draw the machine axis
   ``ETC[i, j] ~ Gamma(α_mach, q[i]/α_mach)`` with
   ``α_mach = 1/V_mach²`` — mean ``q[i]``, machine CV ``V_mach``.

``V_task`` / ``V_mach`` are the task and machine coefficients of
variation that directly control the two heterogeneity dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenerationError
from repro.rng import SeedLike, ensure_rng
from repro.types import FloatArray

__all__ = ["CVBParameters", "generate_cvb_etc"]


@dataclass(frozen=True, slots=True)
class CVBParameters:
    """Parameters of the CVB generator.

    Attributes
    ----------
    mean_task:
        Mean task magnitude ``μ_task`` (e.g. mean execution time, s).
    v_task:
        Task coefficient of variation (> 0): spread *between* tasks.
    v_machine:
        Machine coefficient of variation (> 0): spread *across*
        machines within one task row.
    """

    mean_task: float
    v_task: float
    v_machine: float

    def __post_init__(self) -> None:
        if self.mean_task <= 0:
            raise DataGenerationError(f"mean_task must be > 0, got {self.mean_task}")
        if self.v_task <= 0:
            raise DataGenerationError(f"v_task must be > 0, got {self.v_task}")
        if self.v_machine <= 0:
            raise DataGenerationError(
                f"v_machine must be > 0, got {self.v_machine}"
            )

    # Gamma shape/scale for the task-magnitude draw.
    @property
    def alpha_task(self) -> float:
        """Gamma shape for the task axis: ``1/V_task²``."""
        return 1.0 / (self.v_task**2)

    @property
    def beta_task(self) -> float:
        """Gamma scale for the task axis: ``μ_task/α_task``."""
        return self.mean_task / self.alpha_task

    @property
    def alpha_machine(self) -> float:
        """Gamma shape for the machine axis: ``1/V_mach²``."""
        return 1.0 / (self.v_machine**2)


def generate_cvb_etc(
    num_task_types: int,
    num_machine_types: int,
    params: CVBParameters,
    seed: SeedLike = None,
) -> FloatArray:
    """Generate a ``(num_task_types, num_machine_types)`` CVB ETC matrix."""
    if num_task_types <= 0 or num_machine_types <= 0:
        raise DataGenerationError(
            "matrix dimensions must be positive; got "
            f"({num_task_types}, {num_machine_types})"
        )
    rng = ensure_rng(seed)
    q = rng.gamma(shape=params.alpha_task, scale=params.beta_task,
                  size=num_task_types)
    # Guard against pathological underflow for very small CVs.
    q = np.maximum(q, np.finfo(np.float64).tiny)
    scale = q[:, None] / params.alpha_machine
    etc = rng.gamma(shape=params.alpha_machine, scale=scale,
                    size=(num_task_types, num_machine_types))
    return np.maximum(etc, np.finfo(np.float64).tiny)
