"""Special-purpose machine-type construction (Section III-D2, final step).

Special-purpose machine types execute only a small subset of task types
(two to three each), roughly **10x faster** than the general-purpose
machines: their ETC entry for an accelerated task type is that type's
average execution time across the general-purpose machines divided by
ten.  EPC entries use the average power *without* dividing by ten
("when calculating EPC values, the average power consumption across the
machines is not divided by ten") — so special-purpose execution costs
~10x less *energy*, which is what makes these machines attractive to
both objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DataGenerationError
from repro.rng import SeedLike, ensure_rng
from repro.types import BoolArray, FloatArray

__all__ = ["SpecialPurposePlan", "append_special_purpose_columns", "choose_accelerated_sets"]

#: The paper's speedup factor for special-purpose execution.
SPEEDUP = 10.0


@dataclass(frozen=True)
class SpecialPurposePlan:
    """Which task types each new special-purpose machine type accelerates.

    ``accelerated[k]`` is the tuple of task-type indices supported by
    special machine type ``k``.  Task types must not be shared between
    special machine types (each special-purpose *task* type names one
    accelerating machine type).
    """

    accelerated: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for k, group in enumerate(self.accelerated):
            if not group:
                raise DataGenerationError(
                    f"special machine type {k} accelerates no task types"
                )
            for tt in group:
                if tt in seen:
                    raise DataGenerationError(
                        f"task type {tt} is accelerated by more than one "
                        "special-purpose machine type"
                    )
                seen.add(tt)

    @property
    def num_special_machine_types(self) -> int:
        """Number of special machine types the plan creates."""
        return len(self.accelerated)

    @property
    def accelerated_task_types(self) -> frozenset[int]:
        """All task types accelerated by some special machine type."""
        return frozenset(t for group in self.accelerated for t in group)

    def machine_for_task(self, task_type: int) -> int | None:
        """Index (0-based, within the special group) accelerating *task_type*."""
        for k, group in enumerate(self.accelerated):
            if task_type in group:
                return k
        return None


def choose_accelerated_sets(
    num_task_types: int,
    num_special_machine_types: int,
    seed: SeedLike = None,
    group_sizes: Sequence[int] | None = None,
) -> SpecialPurposePlan:
    """Pick disjoint accelerated task-type sets for the special machines.

    Group sizes default to alternating 3/2 ("two to three for each
    special purpose machine type").
    """
    if num_special_machine_types < 0:
        raise DataGenerationError(
            f"num_special_machine_types must be >= 0, got {num_special_machine_types}"
        )
    if group_sizes is None:
        group_sizes = [3 if k % 2 == 0 else 2 for k in range(num_special_machine_types)]
    if len(group_sizes) != num_special_machine_types:
        raise DataGenerationError(
            f"group_sizes length {len(group_sizes)} does not match "
            f"num_special_machine_types {num_special_machine_types}"
        )
    total = sum(group_sizes)
    if total > num_task_types:
        raise DataGenerationError(
            f"cannot accelerate {total} task types out of only {num_task_types}"
        )
    rng = ensure_rng(seed)
    chosen = rng.choice(num_task_types, size=total, replace=False)
    groups: list[tuple[int, ...]] = []
    pos = 0
    for size in group_sizes:
        groups.append(tuple(int(t) for t in chosen[pos:pos + size]))
        pos += size
    return SpecialPurposePlan(accelerated=tuple(groups))


def append_special_purpose_columns(
    etc_values: FloatArray,
    epc_values: FloatArray,
    plan: SpecialPurposePlan,
    speedup: float = SPEEDUP,
) -> tuple[FloatArray, FloatArray, BoolArray]:
    """Append one ETC/EPC column per special machine type in *plan*.

    Parameters
    ----------
    etc_values, epc_values:
        ``(T, M_general)`` matrices over the general-purpose machine
        types (strictly positive).
    plan:
        The accelerated-task-type assignment.
    speedup:
        Execution-time divisor for accelerated types (paper: 10).

    Returns
    -------
    ``(etc_out, epc_out, feasible)`` with shapes ``(T, M_general + S)``;
    infeasible entries are ``inf`` in the value arrays and ``False`` in
    the mask.  The general-purpose block is fully feasible.
    """
    etc_values = np.asarray(etc_values, dtype=np.float64)
    epc_values = np.asarray(epc_values, dtype=np.float64)
    if etc_values.shape != epc_values.shape:
        raise DataGenerationError("ETC and EPC shapes differ")
    if np.any(~np.isfinite(etc_values)) or np.any(etc_values <= 0):
        raise DataGenerationError("general-purpose ETC must be strictly positive")
    if speedup <= 0:
        raise DataGenerationError(f"speedup must be > 0, got {speedup}")
    T, M = etc_values.shape
    for group in plan.accelerated:
        for tt in group:
            if not (0 <= tt < T):
                raise DataGenerationError(
                    f"accelerated task type {tt} out of range [0, {T})"
                )
    S = plan.num_special_machine_types
    etc_out = np.full((T, M + S), np.inf, dtype=np.float64)
    epc_out = np.full((T, M + S), np.inf, dtype=np.float64)
    feasible = np.zeros((T, M + S), dtype=bool)
    etc_out[:, :M] = etc_values
    epc_out[:, :M] = epc_values
    feasible[:, :M] = True

    etc_row_avgs = etc_values.mean(axis=1)
    epc_row_avgs = epc_values.mean(axis=1)
    for k, group in enumerate(plan.accelerated):
        col = M + k
        for tt in group:
            # ETC: average execution time divided by the speedup.
            etc_out[tt, col] = etc_row_avgs[tt] / speedup
            # EPC: average power, *not* divided (paper Section III-D2).
            epc_out[tt, col] = epc_row_avgs[tt]
            feasible[tt, col] = True
    return etc_out, epc_out, feasible
