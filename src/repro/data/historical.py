"""The real historical data set (paper Tables I & II, Section III-D1).

The paper fills its initial 5×9 ETC/EPC matrices from an
openbenchmarking.org result (`1204229-SU-CPUMONITO81`) that measured
nine 2012-era desktop CPUs (Table I) running five programs (Table II),
reporting average execution time and average power per (program,
machine) pair.  That result is not retrievable offline, so this module
ships **reconstructed** values whose magnitudes and orderings are
consistent with published Phoronix measurements of the same hardware
(see DESIGN.md, substitution table):

* compute-bound programs (C-Ray, 7-Zip, kernel compilation) separate
  the machines strongly — the six-core i7-3960X and the overclocked
  i7s are several times faster than the AMD A8 and dual-core i3;
* GPU-bound programs (Warsow, Unigine Heaven) separate them weakly —
  all machines shared the same GPU in the benchmark;
* power orders the other way: the 3960X and FX-8150 draw the most,
  the i3-2120 the least, and overclocked parts pay a power premium.

This preserves exactly the heterogeneity structure the paper's analysis
depends on.  Real data can be substituted at any time via
:func:`load_matrices_csv`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import DataGenerationError
from repro.model.matrices import EPCMatrix, ETCMatrix
from repro.model.system import SystemModel
from repro.types import FloatArray

__all__ = [
    "MACHINE_NAMES",
    "PROGRAM_NAMES",
    "HISTORICAL_ETC",
    "HISTORICAL_EPC",
    "historical_etc",
    "historical_epc",
    "historical_system",
    "load_matrices_csv",
    "save_matrices_csv",
]

#: Table I — machines (designated by CPU) used in the benchmark.
MACHINE_NAMES: tuple[str, ...] = (
    "AMD A8-3870K",
    "AMD FX-8150",
    "Intel Core i3 2120",
    "Intel Core i5 2400S",
    "Intel Core i5 2500K",
    "Intel Core i7 3960X",
    "Intel Core i7 3960X @ 4.2 GHz",
    "Intel Core i7 3770K",
    "Intel Core i7 3770K @ 4.3 GHz",
)

#: Table II — programs used in the benchmark.
PROGRAM_NAMES: tuple[str, ...] = (
    "C-Ray",
    "7-Zip Compression",
    "Warsow",
    "Unigine Heaven",
    "Timed Linux Kernel Compilation",
)

#: Reconstructed ETC — average execution time, seconds.
#: Rows: programs (Table II order). Columns: machines (Table I order).
HISTORICAL_ETC: FloatArray = np.array(
    [
        #  A8     FX    i3    2400S  2500K  3960X  3960X@ 3770K  3770K@
        [ 90.0,  45.0, 110.0,  70.0,  55.0,  28.0,  23.0,  40.0,  34.0],  # C-Ray
        [120.0,  65.0, 130.0,  95.0,  78.0,  40.0,  34.0,  58.0,  50.0],  # 7-Zip
        [ 60.0,  55.0,  58.0,  52.0,  48.0,  45.0,  43.0,  46.0,  44.0],  # Warsow
        [ 95.0,  92.0,  94.0,  90.0,  88.0,  86.0,  85.0,  87.0,  86.0],  # Heaven
        [300.0, 150.0, 280.0, 210.0, 170.0,  90.0,  78.0, 130.0, 112.0],  # Kernel
    ],
    dtype=np.float64,
)
HISTORICAL_ETC.setflags(write=False)

#: Reconstructed EPC — average system power under load, watts.
HISTORICAL_EPC: FloatArray = np.array(
    [
        #  A8     FX    i3    2400S  2500K  3960X  3960X@ 3770K  3770K@
        [145.0, 230.0,  95.0, 110.0, 140.0, 215.0, 260.0, 135.0, 165.0],  # C-Ray
        [135.0, 215.0,  90.0, 105.0, 130.0, 200.0, 245.0, 125.0, 155.0],  # 7-Zip
        [180.0, 240.0, 150.0, 160.0, 185.0, 235.0, 270.0, 175.0, 200.0],  # Warsow
        [190.0, 250.0, 160.0, 170.0, 195.0, 245.0, 280.0, 185.0, 210.0],  # Heaven
        [140.0, 225.0,  92.0, 108.0, 135.0, 210.0, 255.0, 130.0, 160.0],  # Kernel
    ],
    dtype=np.float64,
)
HISTORICAL_EPC.setflags(write=False)


def historical_etc() -> ETCMatrix:
    """The 5×9 historical ETC matrix (all pairs feasible)."""
    return ETCMatrix(HISTORICAL_ETC.copy())


def historical_epc() -> EPCMatrix:
    """The 5×9 historical EPC matrix (all pairs feasible)."""
    return EPCMatrix(HISTORICAL_EPC.copy())


def historical_system() -> SystemModel:
    """Data set 1 hardware: one machine per Table I type, Table II tasks.

    Time-utility functions are *not* attached here; dataset builders in
    :mod:`repro.experiments.datasets` assign them (they depend on the
    trace horizon).
    """
    return SystemModel.from_matrices(
        etc_values=HISTORICAL_ETC.copy(),
        epc_values=HISTORICAL_EPC.copy(),
        machine_type_names=MACHINE_NAMES,
        task_type_names=PROGRAM_NAMES,
        machines_per_type=[1] * len(MACHINE_NAMES),
    )


# -- CSV interchange ------------------------------------------------------


def save_matrices_csv(
    etc: FloatArray,
    epc: FloatArray,
    path: Union[str, Path],
    machine_names: tuple[str, ...] = MACHINE_NAMES,
    program_names: tuple[str, ...] = PROGRAM_NAMES,
) -> None:
    """Write ETC/EPC to one CSV with a ``matrix`` discriminator column."""
    etc = np.asarray(etc, dtype=np.float64)
    epc = np.asarray(epc, dtype=np.float64)
    if etc.shape != (len(program_names), len(machine_names)):
        raise DataGenerationError(
            f"ETC shape {etc.shape} does not match names "
            f"({len(program_names)} x {len(machine_names)})"
        )
    if epc.shape != etc.shape:
        raise DataGenerationError("ETC and EPC shapes differ")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["matrix", "program", *machine_names])
        for label, matrix in (("ETC", etc), ("EPC", epc)):
            for i, prog in enumerate(program_names):
                writer.writerow([label, prog, *matrix[i].tolist()])


def load_matrices_csv(
    path: Union[str, Path],
) -> tuple[FloatArray, FloatArray, tuple[str, ...], tuple[str, ...]]:
    """Load ``(etc, epc, machine_names, program_names)`` from CSV.

    This is the hook for substituting genuine benchmark data for the
    reconstructed tables: export the openbenchmarking result to the CSV
    layout written by :func:`save_matrices_csv` and load it here.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if not header or header[0] != "matrix" or header[1] != "program":
            raise DataGenerationError(
                f"{path}: expected header 'matrix,program,<machines...>'"
            )
        machine_names = tuple(header[2:])
        rows = {"ETC": {}, "EPC": {}}
        program_order: list[str] = []
        for row in reader:
            if not row:
                continue
            label, prog, *values = row
            if label not in rows:
                raise DataGenerationError(f"{path}: unknown matrix label {label!r}")
            if len(values) != len(machine_names):
                raise DataGenerationError(
                    f"{path}: row for {prog!r} has {len(values)} values, "
                    f"expected {len(machine_names)}"
                )
            if prog not in rows[label]:
                if label == "ETC" and prog not in program_order:
                    program_order.append(prog)
                rows[label][prog] = [float(v) for v in values]
            else:
                raise DataGenerationError(f"{path}: duplicate row {label}/{prog}")
    if set(rows["ETC"]) != set(rows["EPC"]):
        raise DataGenerationError(f"{path}: ETC and EPC program sets differ")
    if not program_order:
        raise DataGenerationError(f"{path}: no data rows found")
    etc = np.array([rows["ETC"][p] for p in program_order], dtype=np.float64)
    epc = np.array([rows["EPC"][p] for p in program_order], dtype=np.float64)
    return etc, epc, machine_names, tuple(program_order)
