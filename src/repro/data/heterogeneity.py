"""Heterogeneity measures: mean, CV, skewness, kurtosis ("mvsk").

The paper (Section III-D2) characterizes data-set heterogeneity with
standard statistical measures — coefficient of variation, skewness, and
kurtosis — following Al-Qawasmeh et al., *"Statistical measures for
quantifying task and machine heterogeneities"* (J. Supercomputing 2011).
Two data sets with similar values of these measures are considered to
have similar heterogeneity.

Conventions: skewness is the standardized third central moment
``E[(x−μ)³]/σ³``; kurtosis is the *non-excess* standardized fourth
moment ``E[(x−μ)⁴]/σ⁴`` (normal = 3), matching the Gram-Charlier
parameterization in :mod:`repro.data.gram_charlier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DataGenerationError
from repro.types import FloatArray

__all__ = [
    "HeterogeneityStats",
    "mvsk",
    "task_heterogeneity",
    "machine_heterogeneity",
    "compare_stats",
    "ks_similarity",
]


@dataclass(frozen=True, slots=True)
class HeterogeneityStats:
    """The four heterogeneity measures of one sample collection.

    Attributes
    ----------
    mean:
        Sample mean.
    variance:
        Population variance (``ddof=0``; moments, not estimators — the
        Gram-Charlier expansion is parameterized by moments).
    skewness:
        Standardized third central moment.
    kurtosis:
        Standardized fourth central moment (normal = 3).
    """

    mean: float
    variance: float
    skewness: float
    kurtosis: float

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def cov(self) -> float:
        """Coefficient of variation ``σ/μ`` (requires nonzero mean)."""
        if self.mean == 0.0:
            raise DataGenerationError("coefficient of variation undefined at mean 0")
        return self.std / abs(self.mean)

    @property
    def excess_kurtosis(self) -> float:
        """Kurtosis minus the normal reference value 3."""
        return self.kurtosis - 3.0

    def as_tuple(self) -> tuple[float, float, float, float]:
        """``(mean, variance, skewness, kurtosis)``."""
        return (self.mean, self.variance, self.skewness, self.kurtosis)


def mvsk(samples: Sequence[float] | FloatArray) -> HeterogeneityStats:
    """Compute the mvsk heterogeneity measures of *samples*.

    Degenerate collections (fewer than 2 points, or zero variance) get
    skewness 0 and kurtosis 3 (the normal reference), so downstream
    Gram-Charlier construction degrades gracefully to a plain normal.
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    if x.size == 0:
        raise DataGenerationError("cannot compute statistics of an empty sample")
    if not np.all(np.isfinite(x)):
        raise DataGenerationError("samples must be finite to compute statistics")
    mean = float(x.mean())
    var = float(x.var())
    if x.size < 2 or var <= 0.0:
        return HeterogeneityStats(mean=mean, variance=max(var, 0.0),
                                  skewness=0.0, kurtosis=3.0)
    z = (x - mean) / np.sqrt(var)
    skew = float(np.mean(z**3))
    kurt = float(np.mean(z**4))
    return HeterogeneityStats(mean=mean, variance=var, skewness=skew, kurtosis=kurt)


def task_heterogeneity(matrix: FloatArray, feasible: FloatArray | None = None) -> HeterogeneityStats:
    """Heterogeneity of *tasks*: statistics of the row averages.

    This is the collection the paper samples new "row average task
    execution times" from.
    """
    values = np.asarray(matrix, dtype=np.float64)
    if feasible is None:
        feasible = np.isfinite(values)
    if np.any(~feasible.any(axis=1)):
        raise DataGenerationError("matrix has rows with no feasible entries")
    masked = np.where(feasible, values, np.nan)
    row_means = np.nanmean(masked, axis=1)
    return mvsk(row_means)


def machine_heterogeneity(
    matrix: FloatArray, machine: int, feasible: FloatArray | None = None
) -> HeterogeneityStats:
    """Heterogeneity of one *machine*: statistics of its execution-time ratios.

    The ratio of entry ``(τ, machine)`` to the row average of ``τ`` —
    the "task type execution time ratio" of Section III-D2.
    """
    values = np.asarray(matrix, dtype=np.float64)
    if feasible is None:
        feasible = np.isfinite(values)
    has_any = feasible.any(axis=1)
    masked = np.where(feasible, values, np.nan)
    row_means = np.where(has_any, np.nansum(masked, axis=1), np.nan)
    row_means = row_means / np.where(has_any, feasible.sum(axis=1), 1)
    col = values[:, machine]
    ok = feasible[:, machine] & np.isfinite(row_means) & (row_means > 0)
    if not ok.any():
        raise DataGenerationError(f"machine {machine} has no feasible entries")
    return mvsk(col[ok] / row_means[ok])


def compare_stats(
    a: HeterogeneityStats,
    b: HeterogeneityStats,
    rel_tol_mean: float = 0.25,
    rel_tol_cov: float = 0.35,
    abs_tol_skew: float = 1.0,
    abs_tol_kurt: float = 2.5,
) -> bool:
    """Whether two stat sets are "similar" in the paper's sense.

    Tolerances default to generous bands because the Gram-Charlier
    clipped-density sampler only approximately reproduces the target
    moments for strongly non-normal inputs (the same caveat applies to
    the original method).  Used by tests and the A4 benchmark.
    """
    if a.mean == 0 or b.mean == 0:
        raise DataGenerationError("similarity comparison requires nonzero means")
    if abs(a.mean - b.mean) / abs(a.mean) > rel_tol_mean:
        return False
    if abs(a.cov - b.cov) > rel_tol_cov * max(a.cov, 1e-12):
        return False
    if abs(a.skewness - b.skewness) > abs_tol_skew:
        return False
    if abs(a.kurtosis - b.kurtosis) > abs_tol_kurt:
        return False
    return True


def ks_similarity(
    a: Sequence[float] | FloatArray,
    b: Sequence[float] | FloatArray,
    alpha: float = 0.05,
) -> tuple[bool, float]:
    """Two-sample Kolmogorov-Smirnov check of distributional similarity.

    A stricter complement to :func:`compare_stats` (which only matches
    four moments): the KS test compares the entire empirical CDFs.
    Returns ``(similar, p_value)`` where ``similar`` means the test
    fails to reject identity at level *alpha*.

    Note the asymmetry of interpretation: the mvsk bands are the
    paper's own similarity notion (the method *targets* those
    moments); KS failing to reject is a bonus, and for small samples
    it is weak evidence either way.
    """
    from scipy import stats

    x = np.asarray(a, dtype=np.float64).ravel()
    y = np.asarray(b, dtype=np.float64).ravel()
    if x.size == 0 or y.size == 0:
        raise DataGenerationError("KS comparison requires non-empty samples")
    if not (0.0 < alpha < 1.0):
        raise DataGenerationError(f"alpha must be in (0, 1); got {alpha}")
    result = stats.ks_2samp(x, y)
    return bool(result.pvalue >= alpha), float(result.pvalue)
