"""Gram-Charlier Type-A expansion PDF and sampler (paper Section III-D2).

The paper creates new row-average execution times and per-machine
execution-time ratios by building a probability density function from
the mvsk measures with the Gram-Charlier expansion (Kendall, *The
Advanced Theory of Statistics*) and sampling it.

The Type-A expansion around a normal kernel with mean ``μ`` and
standard deviation ``σ`` is::

    f(x) = φ(z)/σ · [1 + (γ₁/6)·He₃(z) + (γ₂ₑ/24)·He₄(z)],   z = (x−μ)/σ

where ``γ₁`` is the skewness, ``γ₂ₑ = kurtosis − 3`` the excess
kurtosis, and ``He₃, He₄`` the probabilists' Hermite polynomials
``He₃(z) = z³ − 3z`` and ``He₄(z) = z⁴ − 6z² + 3``.

The expansion is not guaranteed non-negative for large |γ₁| or |γ₂ₑ|;
following common practice we clip negative density to zero and
renormalize on a dense grid, then sample by inverse-CDF interpolation.
A positive support floor can be imposed (execution times and ratios
must be positive).  :meth:`GramCharlierPDF.numeric_moments` exposes the
moments of the *clipped* density so callers/tests can quantify the
clipping distortion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

import numpy as np

from repro.data.heterogeneity import HeterogeneityStats, mvsk
from repro.errors import DataGenerationError
from repro.rng import SeedLike, ensure_rng
from repro.types import FloatArray

__all__ = ["GramCharlierPDF", "hermite_he3", "hermite_he4"]

_SQRT_2PI = np.sqrt(2.0 * np.pi)


def hermite_he3(z: FloatArray) -> FloatArray:
    """Probabilists' Hermite polynomial ``He₃(z) = z³ − 3z``."""
    return z**3 - 3.0 * z


def hermite_he4(z: FloatArray) -> FloatArray:
    """Probabilists' Hermite polynomial ``He₄(z) = z⁴ − 6z² + 3``."""
    return z**4 - 6.0 * z**2 + 3.0


@dataclass(frozen=True)
class GramCharlierPDF:
    """A sampleable Gram-Charlier Type-A density with prescribed mvsk.

    Parameters
    ----------
    mean, std:
        Kernel location and scale (``std > 0``).
    skewness:
        Target standardized third moment ``γ₁``.
    kurtosis:
        Target standardized fourth moment (non-excess; normal = 3).
    support_floor:
        Hard lower bound on the support (e.g. a small positive value
        for execution times).  ``None`` leaves the support unbounded
        below.
    grid_points:
        Resolution of the numeric grid used for clipping,
        normalization, and inverse-CDF sampling.
    grid_halfwidth_sigmas:
        Half-width of the grid in units of ``std``.
    """

    mean: float
    std: float
    skewness: float = 0.0
    kurtosis: float = 3.0
    support_floor: Optional[float] = None
    grid_points: int = 4097
    grid_halfwidth_sigmas: float = 8.0

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise DataGenerationError(f"std must be > 0, got {self.std}")
        if self.grid_points < 64:
            raise DataGenerationError(
                f"grid_points must be >= 64, got {self.grid_points}"
            )
        if self.grid_halfwidth_sigmas <= 1:
            raise DataGenerationError(
                "grid_halfwidth_sigmas must exceed 1 to cover the bulk of "
                f"the density; got {self.grid_halfwidth_sigmas}"
            )
        if self.support_floor is not None and (
            self.support_floor >= self.mean + self.grid_halfwidth_sigmas * self.std
        ):
            raise DataGenerationError(
                "support_floor lies above the entire density grid "
                f"(floor={self.support_floor}, mean={self.mean}, std={self.std})"
            )

    @classmethod
    def from_stats(
        cls,
        stats: HeterogeneityStats,
        support_floor: Optional[float] = None,
        **kwargs,
    ) -> "GramCharlierPDF":
        """Build the expansion directly from measured mvsk statistics."""
        std = stats.std
        if std <= 0:
            # Degenerate sample: a narrow normal around the mean keeps
            # the pipeline total without inventing heterogeneity.
            std = max(abs(stats.mean) * 1e-3, 1e-9)
        return cls(
            mean=stats.mean,
            std=std,
            skewness=stats.skewness,
            kurtosis=stats.kurtosis,
            support_floor=support_floor,
            **kwargs,
        )

    # -- raw (unclipped) expansion ---------------------------------------

    def density_raw(self, x: FloatArray) -> FloatArray:
        """The signed Type-A expansion (may be negative in the tails)."""
        x = np.asarray(x, dtype=np.float64)
        z = (x - self.mean) / self.std
        phi = np.exp(-0.5 * z**2) / (_SQRT_2PI * self.std)
        correction = (
            1.0
            + (self.skewness / 6.0) * hermite_he3(z)
            + ((self.kurtosis - 3.0) / 24.0) * hermite_he4(z)
        )
        return phi * correction

    # -- clipped, normalized grid ------------------------------------------

    @cached_property
    def _grid(self) -> tuple[FloatArray, FloatArray, FloatArray]:
        """``(x, pdf, cdf)`` of the clipped, renormalized density."""
        lo = self.mean - self.grid_halfwidth_sigmas * self.std
        hi = self.mean + self.grid_halfwidth_sigmas * self.std
        if self.support_floor is not None:
            lo = max(lo, self.support_floor)
        if lo >= hi:
            raise DataGenerationError(
                f"degenerate support [{lo}, {hi}] after applying floor"
            )
        x = np.linspace(lo, hi, self.grid_points)
        pdf = np.maximum(self.density_raw(x), 0.0)
        # Trapezoid cumulative integral.
        dx = np.diff(x)
        seg = 0.5 * (pdf[1:] + pdf[:-1]) * dx
        cdf = np.concatenate(([0.0], np.cumsum(seg)))
        total = cdf[-1]
        if total <= 0:
            raise DataGenerationError(
                "clipped Gram-Charlier density integrates to zero; the "
                "requested skewness/kurtosis are too extreme for the "
                "expansion (try CVB generation instead)"
            )
        pdf = pdf / total
        cdf = cdf / total
        return x, pdf, cdf

    def density(self, x: FloatArray) -> FloatArray:
        """Clipped, renormalized density evaluated by grid interpolation."""
        grid_x, grid_pdf, _ = self._grid
        x = np.asarray(x, dtype=np.float64)
        return np.interp(x, grid_x, grid_pdf, left=0.0, right=0.0)

    def cdf(self, x: FloatArray) -> FloatArray:
        """Cumulative distribution of the clipped density."""
        grid_x, _, grid_cdf = self._grid
        x = np.asarray(x, dtype=np.float64)
        return np.interp(x, grid_x, grid_cdf, left=0.0, right=1.0)

    def ppf(self, q: FloatArray) -> FloatArray:
        """Inverse CDF by monotone interpolation (used for sampling)."""
        grid_x, _, grid_cdf = self._grid
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0) | (q > 1)):
            raise DataGenerationError("quantiles must lie in [0, 1]")
        # np.interp requires strictly increasing xp for a true inverse;
        # flat CDF stretches (zero-density gaps) are fine for sampling
        # because they occur with probability zero.
        return np.interp(q, grid_cdf, grid_x)

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        """Draw *n* samples by inverse-CDF transform."""
        if n < 0:
            raise DataGenerationError(f"cannot draw a negative sample count: {n}")
        rng = ensure_rng(seed)
        u = rng.random(n)
        return self.ppf(u)

    # -- diagnostics -------------------------------------------------------

    def numeric_moments(self) -> HeterogeneityStats:
        """mvsk of the clipped density (trapezoid integration on the grid).

        For moderate |skewness| and kurtosis near 3 these match the
        requested parameters closely; clipping pulls extreme requests
        back toward normality — quantified by the A4 benchmark.
        """
        x, pdf, _ = self._grid
        dx = np.diff(x)

        def integral(f: FloatArray) -> float:
            return float(np.sum(0.5 * (f[1:] + f[:-1]) * dx))

        m = integral(pdf * x)
        var = integral(pdf * (x - m) ** 2)
        if var <= 0:
            return HeterogeneityStats(mean=m, variance=0.0, skewness=0.0, kurtosis=3.0)
        sd = np.sqrt(var)
        skew = integral(pdf * ((x - m) / sd) ** 3)
        kurt = integral(pdf * ((x - m) / sd) ** 4)
        return HeterogeneityStats(mean=m, variance=var, skewness=skew, kurtosis=kurt)
