"""Content-addressed per-cell result artifacts for durable grids.

The grid manifest (:mod:`repro.parallel.manifest`) records *that* a
cell finished; this store holds *what* it produced.  Results are keyed
by a content hash over ``(ExperimentConfig, algorithm, seed, dataset
fingerprint)`` — the complete set of inputs that determine a cell's
output — so:

* a resumed run recomputes the same keys, finds verified artifacts,
  and skips those cells;
* **config drift is structural, not advisory**: change any knob (one
  more generation, a different mutation probability, a regenerated
  dataset) and every cell key changes, so stale artifacts simply stop
  matching — they are invalidated by construction, never silently
  reused;
* the manifest's ``done`` records carry the artifact checksum, so a
  resumed run detects an artifact that was scribbled over *after* it
  was journaled (checksum mismatch ⇒ cell re-driven, a
  ``corrupt-result`` in the failure taxonomy).

Artifacts ride the :mod:`repro.storage` envelope (atomic same-dir
rename, SHA-256 payload checksum), and because the payload is JSON
float64 round-tripped through shortest-repr serialization, fronts read
back from the store are bit-identical to the ones that were written —
the property the chaos drill's byte-identity assertion rests on.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Hashable, Optional, Union

from repro.errors import CorruptArtifactError
from repro.storage import (
    atomic_write_json,
    payload_checksum,
    read_json_artifact,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.datasets import DatasetBundle

__all__ = [
    "RESULT_FORMAT",
    "dataset_fingerprint",
    "grid_fingerprint",
    "cell_key_hash",
    "ResultStore",
]

#: Result-document format tag; bump on incompatible payload changes.
RESULT_FORMAT = "repro.grid-result/1"


def dataset_fingerprint(bundle: "DatasetBundle") -> str:
    """BLAKE2b digest of *bundle*'s array payload and identity.

    Hashes the same arrays :func:`~repro.parallel.descriptors
    .dataset_arrays` would publish — the complete read-only input of a
    cell — plus the bundle's name and generation seed, so regenerating
    a dataset under a different seed (or editing the generator)
    produces a different fingerprint even if shapes agree.
    """
    from repro.parallel.descriptors import dataset_arrays

    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{bundle.name}|{bundle.seed}|".encode("utf-8"))
    for name in sorted(dataset_arrays(bundle)):
        array = dataset_arrays(bundle)[name]
        digest.update(
            f"{name}|{array.dtype.str}|{array.shape}|".encode("utf-8")
        )
        digest.update(array.tobytes())
    return digest.hexdigest()


def grid_fingerprint(spec: dict, dataset_fp: str) -> str:
    """Digest binding a grid's driver spec to its dataset content.

    *spec* is the driver's JSON re-drive spec (config knobs, algorithm,
    seed policy); combined with the dataset fingerprint it identifies
    everything that determines every cell's output.
    """
    text = json.dumps(spec, sort_keys=True, allow_nan=False)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(text.encode("utf-8"))
    digest.update(b"|")
    digest.update(dataset_fp.encode("utf-8"))
    return digest.hexdigest()


def cell_key_hash(fingerprint: str, key: Hashable) -> str:
    """Stable artifact basename for cell *key* under *fingerprint*."""
    digest = hashlib.blake2b(digest_size=12)
    digest.update(fingerprint.encode("utf-8"))
    digest.update(b"|")
    digest.update(repr(key).encode("utf-8"))
    return digest.hexdigest()


class ResultStore:
    """Per-cell artifacts under ``<grid dir>/results/``, content-keyed.

    ``put`` returns the checksum the manifest journals on ``done``;
    ``get`` verifies fingerprint and (optionally) that journaled
    checksum and returns ``None`` — *never a stale payload* — on any
    mismatch, missing file, or corruption, which callers treat as
    "re-drive this cell".
    """

    def __init__(self, directory: Union[str, Path], fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint

    def path_for(self, key: Hashable) -> Path:
        """The artifact path for cell *key* under this fingerprint."""
        return self.directory / f"{cell_key_hash(self.fingerprint, key)}.json"

    def put(self, key: Hashable, payload: Any) -> str:
        """Persist *payload* for cell *key*; return its checksum.

        The checksum covers the full result document (fingerprint +
        cell identity + payload), so it changes if any of them do.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": RESULT_FORMAT,
            "fingerprint": self.fingerprint,
            "cell": key,
            "payload": payload,
        }
        atomic_write_json(self.path_for(key), doc)
        return payload_checksum(json.dumps(doc, allow_nan=False))

    def checksum_of(self, key: Hashable) -> Optional[str]:
        """The stored document's checksum, or ``None`` if unusable."""
        doc = self._load(key)
        if doc is None:
            return None
        return payload_checksum(json.dumps(doc, allow_nan=False))

    def get(
        self, key: Hashable, expected_checksum: Optional[str] = None
    ) -> Optional[Any]:
        """Load cell *key*'s payload, or ``None`` when it must be re-driven.

        ``None`` — not an exception — on: missing artifact, undecodable
        or envelope-checksum-failing artifact, fingerprint mismatch
        (config drift), wrong cell identity, or a document checksum
        differing from *expected_checksum* (the value the manifest
        journaled at ``done``).
        """
        doc = self._load(key)
        if doc is None:
            return None
        if expected_checksum is not None:
            actual = payload_checksum(json.dumps(doc, allow_nan=False))
            if actual != expected_checksum:
                return None
        return doc["payload"]

    def _load(self, key: Hashable) -> Optional[dict]:
        try:
            doc = read_json_artifact(self.path_for(key))
        except (FileNotFoundError, CorruptArtifactError):
            return None
        if not isinstance(doc, dict) or doc.get("format") != RESULT_FORMAT:
            return None
        if doc.get("fingerprint") != self.fingerprint:
            return None
        if doc.get("cell") != key:
            return None
        if "payload" not in doc:
            return None
        return doc
