"""The durable grid manifest: an append-only journal of cell lifecycle.

A large scenario × algorithm grid is only as durable as its weakest
process: PR 2 made a *single cell* crash-safe (checkpoint/resume) and
the engine made the grid *fast*, but the grid as a whole lived in
coordinator memory — kill the coordinator and finished cells were
orphaned.  This module journals every cell's lifecycle to disk so any
grid run can be reconstructed, resumed, and re-driven incrementally:

* **Append-only JSONL.**  One record per line; the file is only ever
  appended to (``O_APPEND`` + fsync), never rewritten, so a crash at
  any instant loses at most the record being written.  Replay is
  **total**: a torn/truncated tail record is detected and ignored
  (:attr:`GridManifest.torn_tail`), damaged interior lines are skipped
  and counted (:attr:`GridManifest.damaged_records`), duplicate or
  out-of-order transitions are reconciled, never raised on.
* **Cell lifecycle.**  ``pending → leased → running → done | failed |
  quarantined``.  ``leased`` is written by the coordinator at
  submission (with the lease owner and expiry); ``running`` is written
  *by the worker itself* just before executing the cell body — a
  single ``O_APPEND`` write small enough to be atomic — which doubles
  as the worker's heartbeat and lets the supervisor attribute a pool
  break to the exact victim cell and pid.  ``done`` records the result
  checksum so resumed runs can verify stored artifacts before skipping
  a cell.  ``failed`` records the :data:`~repro.errors.FAILURE_KINDS`
  taxonomy kind.  ``quarantined`` parks a poison cell (one that keeps
  killing its workers) after repeated distinct-worker failures;
  quarantined cells are reported, not retried forever, and can be
  re-queued with :meth:`GridManifest.requeue` (the
  ``repro-analyze grid retry-quarantined`` verb).
* **Fingerprint binding.**  The header records a content fingerprint
  of (experiment config, algorithm, seed, dataset); a manifest whose
  fingerprint no longer matches the configuration being driven is
  *stale* — the driver rotates it aside and starts a fresh journal
  rather than silently reusing cells computed under different physics.

Nothing here imports the engine; the manifest is a passive ledger that
drivers and the engine's supervision hooks write through.  With no
manifest configured, no code in this module runs — the in-memory grid
path is byte-for-byte the pre-manifest one (the zero-overhead
contract gated by ``BENCH_parallel_grid.json``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable, Optional, Sequence, Union

from repro.errors import FAILURE_KINDS, GridManifestError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.context import RunContext

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "CELL_STATES",
    "TERMINAL_STATES",
    "CellStatus",
    "WorkerJournal",
    "GridManifest",
]

#: Manifest journal format tag; bump on incompatible record changes.
MANIFEST_FORMAT = "repro.grid/1"

#: Journal file name inside a grid directory.
MANIFEST_NAME = "manifest.jsonl"

#: The cell lifecycle states, in forward order.
CELL_STATES = ("pending", "leased", "running", "done", "failed", "quarantined")

#: States a cell never leaves on its own (``requeue`` is the only exit).
TERMINAL_STATES = ("done", "quarantined")

#: Default lease time-to-live in seconds.  A ``leased``/``running``
#: record older than this whose owner cannot be confirmed alive is
#: treated as abandoned by ``repro grid resume`` and re-driven.
DEFAULT_LEASE_TTL = 900.0


def _pid_alive(pid: Optional[int]) -> bool:
    """Best-effort liveness probe (signal 0); unknown pids count dead."""
    if not pid or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


@dataclass
class CellStatus:
    """The replayed state of one grid cell.

    ``failures`` accumulates ``{"kind", "owner", "attempt", "error"}``
    entries; :attr:`crash_owners` is the set of distinct workers that
    died holding this cell — the quarantine predicate's evidence.
    """

    key: Hashable
    state: str = "pending"
    attempt: int = 0
    owner: Optional[int] = None
    checksum: Optional[str] = None
    lease_expires_at: Optional[float] = None
    failures: list = field(default_factory=list)
    requeues: int = 0
    anomalies: int = 0
    #: Wall-clock of the newest record touching this cell, and of its
    #: terminal ``done`` record — the dashboard's throughput/ETA inputs.
    updated_at: Optional[float] = None
    done_at: Optional[float] = None

    @property
    def crash_owners(self) -> frozenset:
        """Distinct owners recorded on ``worker-death`` failures."""
        return frozenset(
            f.get("owner") for f in self.failures
            if f.get("kind") == "worker-death"
        )

    def lease_is_stale(self, now: Optional[float] = None) -> bool:
        """Whether a ``leased``/``running`` cell's holder is gone.

        A lease is stale when its expiry passed, or its owner process
        can be confirmed dead.  Terminal and pending cells are never
        stale.
        """
        if self.state not in ("leased", "running"):
            return False
        if self.owner is not None and not _pid_alive(self.owner):
            return True
        if self.lease_expires_at is not None:
            return (time.time() if now is None else now) >= self.lease_expires_at
        return self.owner is None


@dataclass(frozen=True)
class WorkerJournal:
    """The picklable worker-side appender (running records only).

    Shipped once per worker through the pool initializer.  Workers
    append one ``running`` line just before executing a cell body —
    the write is a single ``O_APPEND`` ``os.write`` of far less than
    ``PIPE_BUF`` bytes, which POSIX keeps atomic with respect to the
    coordinator's own appends.  Workers never read the journal and
    never write any other state.
    """

    path: str
    grid_id: str
    lease_ttl: float = DEFAULT_LEASE_TTL

    def running(self, key: Hashable, attempt: int) -> None:
        """Append this worker's ``running`` heartbeat for (*key*, *attempt*)."""
        now = time.time()
        record = {
            "rec": "cell",
            "cell": key,
            "state": "running",
            "attempt": attempt,
            "owner": os.getpid(),
            "src": os.getpid(),
            "t": now,
            "lease_expires_at": now + self.lease_ttl,
        }
        line = (json.dumps(record, allow_nan=False) + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)


class GridManifest:
    """One grid directory's journal: create, append, replay, poll.

    Create a fresh journal with :meth:`create` (rotating any stale one
    aside) or reconstruct state from an existing one with :meth:`load`.
    Coordinator-side transitions (:meth:`mark_leased`, :meth:`mark_done`,
    :meth:`mark_failed`, :meth:`mark_quarantined`, :meth:`requeue`) are
    applied in memory and appended durably in one step.  Worker-side
    ``running`` records arrive asynchronously in the same file;
    :meth:`poll_running` folds any new complete lines into the in-memory
    state and returns them — the supervisor's victim-attribution feed.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / MANIFEST_NAME
        self.header: dict = {}
        self.cells: dict = {}
        self.torn_tail = False
        self.damaged_records = 0
        self._read_offset = 0
        self._obs: Optional["RunContext"] = None
        #: ``pid -> {"t", "cell", "attempt"}`` from worker ``running``
        #: heartbeats — the dashboard's per-worker liveness feed.
        self.worker_heartbeats: dict = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        *,
        spec: dict,
        fingerprint: str,
        cells: Sequence[Hashable],
        grid_id: Optional[str] = None,
        obs: Optional["RunContext"] = None,
    ) -> "GridManifest":
        """Start a fresh journal for *cells* under *fingerprint*.

        An existing manifest at the same path is rotated aside to
        ``manifest.stale-<epoch>.jsonl`` first (drivers call this only
        after deciding the old journal is unusable — different
        fingerprint, damaged header).  Cell keys must be JSON scalars
        (int or str) so they round-trip the journal exactly.
        """
        manifest = cls(directory)
        manifest._obs = obs
        manifest.directory.mkdir(parents=True, exist_ok=True)
        if manifest.path.exists():
            stale = manifest.directory / f"manifest.stale-{int(time.time())}.jsonl"
            os.replace(manifest.path, stale)
            if obs is not None and obs.enabled:
                obs.event(
                    "grid.invalidated", level="warning",
                    rotated_to=stale.name,
                )
        keys = list(cells)
        for key in keys:
            if not isinstance(key, (int, str)):
                raise GridManifestError(
                    f"grid cell keys must be JSON scalars (int or str); "
                    f"got {type(key).__name__} {key!r}"
                )
        header = {
            "rec": "grid",
            "format": MANIFEST_FORMAT,
            "grid_id": grid_id or f"grid-{int(time.time())}-{os.getpid()}",
            "fingerprint": fingerprint,
            "spec": spec,
            "cells": keys,
            "src": os.getpid(),
            "t": time.time(),
        }
        manifest.header = header
        manifest.cells = {key: CellStatus(key) for key in keys}
        manifest._append(header)
        if obs is not None and obs.enabled:
            obs.event("grid.created", cells=len(keys), grid_id=header["grid_id"])
            obs.metrics.gauge(
                "grid_cells_total", help="cells enumerated in the grid manifest"
            ).set(float(len(keys)))
        return manifest

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        *,
        obs: Optional["RunContext"] = None,
    ) -> "GridManifest":
        """Replay an existing journal into a manifest (total, no raise).

        Raises :class:`~repro.errors.GridManifestError` only when there
        is nothing to load (missing file or no readable header record);
        damaged *content* is tolerated and surfaced via
        :attr:`torn_tail` / :attr:`damaged_records`.
        """
        manifest = cls(directory)
        manifest._obs = obs
        if not manifest.path.exists():
            raise GridManifestError(
                f"no grid manifest at {manifest.path} — was the grid started "
                "with a grid directory?"
            )
        data = manifest.path.read_bytes()
        complete, _, tail = data.rpartition(b"\n")
        if tail:
            manifest.torn_tail = True
        consumed = len(complete) + (1 if complete or tail else 0)
        for raw in complete.split(b"\n") if complete else []:
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                manifest.damaged_records += 1
                continue
            manifest._apply(record)
        manifest._read_offset = consumed if not tail else len(complete) + 1
        if not manifest.header:
            raise GridManifestError(
                f"manifest at {manifest.path} has no readable grid header"
            )
        if manifest.torn_tail:
            # Terminate the torn record so future appends start on a
            # fresh line; replay will count the half-record as damaged.
            with open(manifest.path, "ab") as handle:
                handle.write(b"\n")
            manifest._read_offset = manifest.path.stat().st_size
            if obs is not None and obs.enabled:
                obs.event("grid.torn_tail", level="warning")
        if obs is not None and obs.enabled:
            obs.event(
                "grid.loaded",
                cells=len(manifest.cells),
                damaged_records=manifest.damaged_records,
                torn_tail=manifest.torn_tail,
            )
        return manifest

    # -- journal IO ----------------------------------------------------------

    def _append(self, record: dict) -> None:
        """Durably append one record (own records are already applied)."""
        line = (json.dumps(record, allow_nan=False) + "\n").encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)

    def poll_running(self) -> list:
        """Fold new worker-written records in; return ``(key, attempt, pid)``.

        Reads complete lines appended since the last poll (or load),
        skipping records this process wrote itself (already applied in
        memory when they were journaled).
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:  # pragma: no cover - deleted underfoot
            return []
        if size <= self._read_offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._read_offset)
            data = handle.read(size - self._read_offset)
        complete, sep, _tail = data.rpartition(b"\n")
        if not sep:
            return []
        self._read_offset += len(complete) + 1
        started = []
        own = os.getpid()
        for raw in complete.split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.damaged_records += 1
                continue
            if record.get("src") == own:
                continue
            self._apply(record)
            if record.get("rec") == "cell" and record.get("state") == "running":
                started.append(
                    (record.get("cell"), record.get("attempt"),
                     record.get("owner"))
                )
        return started

    # -- replay (total: reconciles, never raises) ----------------------------

    def _apply(self, record: dict) -> None:
        kind = record.get("rec")
        if kind == "grid":
            if self.header:
                # A second header is anomalous; keep the first.
                self.damaged_records += 1
                return
            self.header = record
            for key in record.get("cells", []):
                self.cells.setdefault(key, CellStatus(key))
            return
        if kind == "resume":
            return
        if kind != "cell":
            self.damaged_records += 1
            return
        key = record.get("cell")
        status = self.cells.get(key)
        if status is None:
            # A cell the header never named: adopt rather than drop —
            # replay must account for every journaled observation.
            status = self.cells.setdefault(key, CellStatus(key))
        state = record.get("state")
        attempt = record.get("attempt", status.attempt)
        t = record.get("t")
        if isinstance(t, (int, float)):
            status.updated_at = float(t)
        if state == "running":
            owner = record.get("owner")
            if owner is not None:
                # A heartbeat is a liveness signal even when the cell
                # transition itself is late/duplicate — fold it first.
                self.worker_heartbeats[owner] = {
                    "t": status.updated_at,
                    "cell": key,
                    "attempt": attempt,
                }
        if state == "pending":
            # requeue: re-open a terminal or failed cell for re-driving.
            status.state = "pending"
            status.requeues += 1
            status.checksum = None
            status.owner = None
            status.lease_expires_at = None
            status.failures = []
            return
        if status.state in TERMINAL_STATES:
            # Duplicate/late transition after a terminal state: ignore
            # idempotently (first terminal record wins).
            status.anomalies += 1
            return
        if state == "leased":
            status.state = "leased"
            status.attempt = max(status.attempt, attempt)
            status.owner = record.get("owner")
            status.lease_expires_at = record.get("lease_expires_at")
        elif state == "running":
            if attempt < status.attempt:
                status.anomalies += 1  # late heartbeat of an old attempt
                return
            status.state = "running"
            status.attempt = attempt
            status.owner = record.get("owner")
            status.lease_expires_at = record.get("lease_expires_at")
        elif state == "done":
            status.state = "done"
            status.attempt = max(status.attempt, attempt)
            status.checksum = record.get("checksum")
            status.owner = None
            status.lease_expires_at = None
            status.done_at = status.updated_at
        elif state == "failed":
            status.state = "failed"
            status.attempt = max(status.attempt, attempt)
            status.failures.append(
                {
                    "kind": record.get("kind", "cell-exception"),
                    "owner": record.get("owner"),
                    "attempt": attempt,
                    "error": record.get("error", ""),
                }
            )
            status.owner = None
            status.lease_expires_at = None
        elif state == "quarantined":
            status.state = "quarantined"
            status.attempt = max(status.attempt, attempt)
            status.owner = None
            status.lease_expires_at = None
        else:
            status.anomalies += 1

    # -- coordinator transitions ---------------------------------------------

    def _transition(self, record: dict, *, level: str = "info") -> None:
        record.setdefault("rec", "cell")
        record.setdefault("src", os.getpid())
        record.setdefault("t", time.time())
        self._apply(record)
        self._append(record)
        obs = self._obs
        if obs is not None and obs.enabled:
            state = record.get("state", "?")
            obs.counter(
                f"grid_cells_{state}_total",
                help=f"manifest transitions into the {state!r} state",
            ).inc()
            obs.event(
                f"grid.cell.{state}", level=level,
                cell=record.get("cell"), attempt=record.get("attempt"),
                **(
                    {"kind": record["kind"]} if "kind" in record else {}
                ),
            )

    def mark_leased(
        self,
        key: Hashable,
        attempt: int,
        *,
        owner: Optional[int] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        """Journal a submission: *key*'s *attempt* leased to *owner*."""
        self._transition(
            {
                "cell": key,
                "state": "leased",
                "attempt": attempt,
                "owner": os.getpid() if owner is None else owner,
                "lease_expires_at": time.time() + lease_ttl,
            }
        )

    def mark_running(self, key: Hashable, attempt: int) -> None:
        """Journal an in-process (serial-path) execution start."""
        self._transition(
            {
                "cell": key,
                "state": "running",
                "attempt": attempt,
                "owner": os.getpid(),
                "lease_expires_at": time.time() + DEFAULT_LEASE_TTL,
            }
        )

    def mark_done(self, key: Hashable, attempt: int, checksum: str) -> None:
        """Journal a completed cell with its result-artifact *checksum*."""
        self._transition(
            {"cell": key, "state": "done", "attempt": attempt,
             "checksum": checksum}
        )

    def mark_failed(
        self,
        key: Hashable,
        attempt: int,
        *,
        kind: str = "cell-exception",
        error: str = "",
        owner: Optional[int] = None,
    ) -> None:
        """Journal a failed attempt with its taxonomy *kind*."""
        if kind not in FAILURE_KINDS:
            kind = "cell-exception"
        self._transition(
            {
                "cell": key,
                "state": "failed",
                "attempt": attempt,
                "kind": kind,
                "error": error[:500],
                "owner": owner,
            },
            level="warning",
        )

    def mark_quarantined(
        self, key: Hashable, attempt: int, owners: Iterable = ()
    ) -> None:
        """Park a poison cell: reported by ``grid status``, never retried."""
        self._transition(
            {
                "cell": key,
                "state": "quarantined",
                "attempt": attempt,
                "owners": sorted(str(o) for o in owners),
            },
            level="error",
        )

    def requeue(self, key: Hashable) -> None:
        """Re-open *key* (``retry-quarantined`` / corrupt-result re-drive)."""
        self._transition({"cell": key, "state": "pending"})

    def note_resumed(self) -> None:
        """Journal a new coordinator incarnation taking over this grid."""
        record = {
            "rec": "resume", "src": os.getpid(), "t": time.time(),
        }
        self._append(record)
        if self._obs is not None and self._obs.enabled:
            self._obs.event("grid.resumed", grid_id=self.grid_id)

    # -- queries -------------------------------------------------------------

    @property
    def grid_id(self) -> str:
        """The grid's journaled identity."""
        return str(self.header.get("grid_id", ""))

    @property
    def fingerprint(self) -> str:
        """The configuration fingerprint the journal was created under."""
        return str(self.header.get("fingerprint", ""))

    @property
    def spec(self) -> dict:
        """The driver-specific re-drive spec recorded in the header."""
        spec = self.header.get("spec", {})
        return spec if isinstance(spec, dict) else {}

    def cells_in(self, *states: str) -> list:
        """Cell keys currently in any of *states*, in header order."""
        wanted = set(states)
        return [k for k, c in self.cells.items() if c.state in wanted]

    def status_counts(self) -> dict:
        """``state -> cell count`` over every known state."""
        counts = {state: 0 for state in CELL_STATES}
        for status in self.cells.values():
            counts[status.state] = counts.get(status.state, 0) + 1
        return counts

    def worker_journal(
        self, lease_ttl: float = DEFAULT_LEASE_TTL
    ) -> WorkerJournal:
        """The picklable appender pool workers heartbeat through."""
        return WorkerJournal(
            path=str(self.path), grid_id=self.grid_id, lease_ttl=lease_ttl
        )
