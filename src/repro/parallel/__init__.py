"""Zero-copy shared-memory parallel execution for experiment grids.

Layered bottom-up:

* :mod:`repro.parallel.shm` — packed shared-memory segments, attach
  registries, leak detection, lifecycle hooks.
* :mod:`repro.parallel.descriptors` — publishing a
  :class:`~repro.experiments.datasets.DatasetBundle` once per
  experiment and reconstructing zero-copy evaluators worker-side from
  a tiny picklable handle (with an inline pickle fallback for
  platforms without shared memory).
* :mod:`repro.parallel.engine` — the persistent worker pool and the
  retry/collect loop (heap-scheduled backoff, per-attempt timeouts
  with cell leases, coordinator-side observability).

See ``docs/performance.md`` for the architecture discussion and
``benchmarks/test_bench_parallel_grid.py`` for the measured speedups.
"""

from repro.parallel.descriptors import (
    PublishedDataset,
    RestoredDataset,
    SharedDatasetHandle,
    dataset_arrays,
    publish_dataset,
)
from repro.parallel.engine import CellReply, ParallelEngine
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    SHARED_MEMORY_AVAILABLE,
    ArrayPackSpec,
    ArraySpec,
    SharedArrayPack,
    SharedMemoryUnavailable,
    attach,
    detach_all,
    leaked_segments,
    owned_segments,
    publish,
    unlink_segments,
)

__all__ = [
    "SHARED_MEMORY_AVAILABLE",
    "SEGMENT_PREFIX",
    "SharedMemoryUnavailable",
    "ArraySpec",
    "ArrayPackSpec",
    "SharedArrayPack",
    "publish",
    "attach",
    "detach_all",
    "owned_segments",
    "leaked_segments",
    "unlink_segments",
    "dataset_arrays",
    "publish_dataset",
    "PublishedDataset",
    "SharedDatasetHandle",
    "RestoredDataset",
    "CellReply",
    "ParallelEngine",
]
