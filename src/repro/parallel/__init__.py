"""Zero-copy shared-memory parallel execution for experiment grids.

Layered bottom-up:

* :mod:`repro.parallel.shm` — packed shared-memory segments, attach
  registries, leak detection with creator-pid liveness, the dead-
  coordinator janitor sweep, lifecycle hooks.
* :mod:`repro.parallel.descriptors` — publishing a
  :class:`~repro.experiments.datasets.DatasetBundle` once per
  experiment and reconstructing zero-copy evaluators worker-side from
  a tiny picklable handle (with an inline pickle fallback for
  platforms without shared memory).
* :mod:`repro.parallel.engine` — the persistent worker pool and the
  retry/collect loop (heap-scheduled backoff, per-attempt timeouts
  with cell leases, pool-break supervision with victim attribution and
  poison-cell quarantine, coordinator-side observability).
* :mod:`repro.parallel.manifest` — the durable grid manifest: an
  append-only JSONL journal of cell lifecycle transitions with total
  (torn-tail tolerant) replay, plus the picklable worker heartbeat
  appender.
* :mod:`repro.parallel.resultstore` — content-addressed per-cell
  result artifacts keyed by (config, algorithm, seed, dataset
  fingerprint), so resumed grids skip verified work and config drift
  invalidates instead of silently reusing.

See ``docs/performance.md`` for the architecture discussion,
``docs/fault_tolerance.md`` for the grid-level recovery model, and
``benchmarks/test_bench_parallel_grid.py`` for the measured speedups.
"""

from repro.parallel.descriptors import (
    PublishedDataset,
    RestoredDataset,
    SharedDatasetHandle,
    dataset_arrays,
    publish_dataset,
)
from repro.parallel.engine import CellReply, ParallelEngine
from repro.parallel.manifest import (
    MANIFEST_FORMAT,
    CellStatus,
    GridManifest,
    WorkerJournal,
)
from repro.parallel.resultstore import (
    RESULT_FORMAT,
    ResultStore,
    dataset_fingerprint,
    grid_fingerprint,
)
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    SHARED_MEMORY_AVAILABLE,
    ArrayPackSpec,
    ArraySpec,
    SharedArrayPack,
    SharedMemoryUnavailable,
    attach,
    detach_all,
    janitor_sweep,
    leaked_segments,
    owned_segments,
    publish,
    unlink_segments,
)

__all__ = [
    "SHARED_MEMORY_AVAILABLE",
    "SEGMENT_PREFIX",
    "SharedMemoryUnavailable",
    "ArraySpec",
    "ArrayPackSpec",
    "SharedArrayPack",
    "publish",
    "attach",
    "detach_all",
    "owned_segments",
    "leaked_segments",
    "janitor_sweep",
    "unlink_segments",
    "dataset_arrays",
    "publish_dataset",
    "PublishedDataset",
    "SharedDatasetHandle",
    "RestoredDataset",
    "CellReply",
    "ParallelEngine",
    "MANIFEST_FORMAT",
    "CellStatus",
    "GridManifest",
    "WorkerJournal",
    "RESULT_FORMAT",
    "ResultStore",
    "dataset_fingerprint",
    "grid_fingerprint",
]
