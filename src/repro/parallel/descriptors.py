"""Dataset publication and zero-copy reconstruction descriptors.

The bridge between :class:`~repro.experiments.datasets.DatasetBundle`
and the shared-memory transport of :mod:`repro.parallel.shm`:

* :func:`dataset_arrays` names the read-only array payload of an
  experiment — the per-task ETC/EEC/feasibility gathers the evaluator
  needs, the trace columns (task types, arrivals), and the stacked TUF
  parameter tables.  These are exactly the arrays the evaluator would
  compute for itself, produced by the same expressions, so shared and
  self-computed evaluators are bit-identical.
* :func:`publish_dataset` copies that payload into one shared segment
  (or, on platforms without shared memory / under
  ``transport="pickle"``, freezes it inline) and returns a
  :class:`PublishedDataset` whose :class:`SharedDatasetHandle` is the
  tiny picklable descriptor pool workers receive **once** via their
  initializer.
* :meth:`SharedDatasetHandle.restore` rebuilds, worker-side, a
  :class:`RestoredDataset`: a full ``DatasetBundle`` whose trace
  columns are views of the shared segment, plus
  :meth:`~RestoredDataset.make_evaluator`, which constructs
  :class:`~repro.sim.evaluator.ScheduleEvaluator` from the shared
  views with no array materialization.  Restores are memoized per
  process, so each worker pays the attach + structural rebuild once
  per experiment no matter how many grid cells it executes.

Only the small *structure* of the system (machine/task type metadata,
type-level matrices — a few kilobytes) rides in the handle itself; the
O(tasks × machines) arrays never cross the pipe.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from repro.errors import ParallelExecutionError
from repro.model.serialization import system_from_dict, system_to_dict
from repro.parallel import shm as shm_transport
from repro.parallel.shm import ArrayPackSpec, SharedArrayPack
from repro.sim.evaluator import EvaluatorArrays, ScheduleEvaluator
from repro.utility.vectorized import TUFTable
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.datasets import DatasetBundle
    from repro.obs.context import RunContext

__all__ = [
    "TRANSPORTS",
    "dataset_arrays",
    "publish_dataset",
    "PublishedDataset",
    "SharedDatasetHandle",
    "RestoredDataset",
    "restored_count",
]

TRANSPORTS = ("auto", "shm", "pickle")

#: TUF table fields, in constructor order (shared-segment keys get a
#: ``tuf_`` prefix).
_TUF_FIELDS = (
    "breakpoints",
    "kinds",
    "start_values",
    "rates",
    "end_times",
    "tail_values",
    "max_utilities",
)


def dataset_arrays(bundle: "DatasetBundle") -> dict[str, np.ndarray]:
    """The read-only array payload of *bundle*, keyed for the segment.

    Uses the same expressions as
    :class:`~repro.sim.evaluator.ScheduleEvaluator`'s own construction,
    so evaluators built from these arrays are bit-identical to
    self-computed ones.
    """
    system, trace = bundle.system, bundle.trace
    task_types = trace.task_types
    arrays: dict[str, np.ndarray] = {
        "trace_task_types": task_types,
        "trace_arrivals": trace.arrival_times,
        "etc_rows": system.etc_task_machine[task_types],
        "eec_rows": system.eec_task_machine[task_types],
        "feasible_rows": system.feasible_task_machine[task_types],
    }
    table = TUFTable.from_system(system)
    for name in _TUF_FIELDS:
        arrays[f"tuf_{name}"] = getattr(table, name)
    return arrays


@dataclass(frozen=True)
class SharedDatasetHandle:
    """The per-experiment descriptor shipped to pool workers (picklable).

    Exactly one of ``segment`` (shared-memory transport) or ``inline``
    (pickle fallback) is set.  Either way the handle is shipped **once
    per worker** through the pool initializer; per-cell submissions
    carry only the ``dataset_id`` string, so per-submission payload is
    O(1) in the dataset size.
    """

    dataset_id: str
    meta: dict = field(repr=False)
    segment: Optional[ArrayPackSpec] = None
    inline: Optional[dict] = field(default=None, repr=False)

    @property
    def transport(self) -> str:
        """``"shm"`` or ``"pickle"``."""
        return "pickle" if self.segment is None else "shm"

    def restore(self) -> "RestoredDataset":
        """The reconstructed dataset (memoized per process)."""
        cached = _RESTORED.get(self.dataset_id)
        if cached is not None:
            return cached
        if self.segment is not None:
            views: Mapping[str, np.ndarray] = shm_transport.attach(self.segment)
        else:
            if self.inline is None:
                raise ParallelExecutionError(
                    f"handle {self.dataset_id!r} carries neither a segment "
                    "nor inline arrays"
                )
            views = self.inline
        restored = RestoredDataset._build(self, views)
        _RESTORED[self.dataset_id] = restored
        return restored


#: Per-process memo of restored datasets (worker-side attach-once).
_RESTORED: dict[str, "RestoredDataset"] = {}


def restored_count() -> int:
    """How many distinct datasets this process has restored (tests)."""
    return len(_RESTORED)


class RestoredDataset:
    """A worker-side dataset reconstructed from a handle.

    Attributes
    ----------
    handle:
        The originating :class:`SharedDatasetHandle`.
    bundle:
        A full :class:`~repro.experiments.datasets.DatasetBundle`; its
        trace columns are zero-copy views of the shared segment (the
        small system structure is rebuilt from the handle metadata).
    evaluator_arrays:
        Zero-copy :class:`~repro.sim.evaluator.EvaluatorArrays` views.
    """

    def __init__(self, handle, bundle, evaluator_arrays) -> None:
        self.handle = handle
        self.bundle = bundle
        self.evaluator_arrays = evaluator_arrays

    @classmethod
    def _build(
        cls, handle: SharedDatasetHandle, views: Mapping[str, np.ndarray]
    ) -> "RestoredDataset":
        from repro.experiments.datasets import DatasetBundle

        meta = handle.meta
        system = system_from_dict(meta["system"])
        trace = Trace(
            task_types=views["trace_task_types"],
            arrival_times=views["trace_arrivals"],
            window=meta["window"],
        )
        bundle = DatasetBundle(
            name=meta["name"],
            system=system,
            trace=trace,
            horizon_seconds=meta["horizon_seconds"],
            seed=meta["seed"],
        )
        table = TUFTable(
            **{name: views[f"tuf_{name}"] for name in _TUF_FIELDS}
        )
        arrays = EvaluatorArrays(
            etc_rows=views["etc_rows"],
            eec_rows=views["eec_rows"],
            feasible_rows=views["feasible_rows"],
            tuf_table=table,
        )
        return cls(handle, bundle, arrays)

    def make_evaluator(self, **kwargs) -> ScheduleEvaluator:
        """A :class:`ScheduleEvaluator` over the shared views.

        Keyword arguments are forwarded (``check_feasibility``,
        ``fault_hook``, ``cache_size``, ...); the per-task gathers and
        TUF table come from the shared segment, so construction does no
        array work.
        """
        return ScheduleEvaluator(
            self.bundle.system,
            self.bundle.trace,
            precomputed=self.evaluator_arrays,
            **kwargs,
        )


class PublishedDataset:
    """Coordinator-side owner of one published dataset.

    Owns the shared segment (when using shm transport) and exposes the
    worker-facing :class:`SharedDatasetHandle`.  Context-manager
    protocol and :meth:`close` release the segment; closing is
    idempotent and safe after workers have detached.
    """

    def __init__(
        self,
        handle: SharedDatasetHandle,
        pack: Optional[SharedArrayPack],
        nbytes: int,
    ) -> None:
        self.handle = handle
        self._pack = pack
        self.nbytes = nbytes

    @property
    def transport(self) -> str:
        """``"shm"`` or ``"pickle"``."""
        return self.handle.transport

    def close(self) -> None:
        """Unlink the shared segment (no-op for pickle transport)."""
        _RESTORED.pop(self.handle.dataset_id, None)
        if self._pack is not None:
            self._pack.close()

    def __enter__(self) -> "PublishedDataset":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def publish_dataset(
    bundle: "DatasetBundle",
    transport: str = "auto",
    obs: Optional["RunContext"] = None,
) -> PublishedDataset:
    """Publish *bundle*'s arrays for zero-copy worker attachment.

    Parameters
    ----------
    bundle:
        The dataset to publish.
    transport:
        ``"auto"`` (default) — shared memory when available, else
        pickle; ``"shm"`` — require shared memory (raises
        :class:`~repro.parallel.shm.SharedMemoryUnavailable` when the
        platform cannot serve it); ``"pickle"`` — force the inline
        fallback (identical results, O(dataset) once per worker).
    obs:
        Optional :class:`~repro.obs.context.RunContext`; records the
        ``parallel_segment_bytes`` gauge and a ``parallel.published``
        event.
    """
    if transport not in TRANSPORTS:
        raise ParallelExecutionError(
            f"unknown transport {transport!r}; have {TRANSPORTS}"
        )
    arrays = dataset_arrays(bundle)
    meta = {
        "name": bundle.name,
        "horizon_seconds": bundle.horizon_seconds,
        "seed": bundle.seed,
        "window": bundle.trace.window,
        "system": system_to_dict(bundle.system),
    }
    dataset_id = f"{bundle.name}-{secrets.token_hex(4)}"
    nbytes = int(sum(a.nbytes for a in arrays.values()))

    pack: Optional[SharedArrayPack] = None
    if transport in ("auto", "shm"):
        try:
            pack = shm_transport.publish(arrays)
        except shm_transport.SharedMemoryUnavailable:
            if transport == "shm":
                raise
    if pack is not None:
        handle = SharedDatasetHandle(
            dataset_id=dataset_id, meta=meta, segment=pack.spec
        )
    else:
        inline = {}
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            arr.setflags(write=False)
            inline[key] = arr
        handle = SharedDatasetHandle(
            dataset_id=dataset_id, meta=meta, inline=inline
        )
    published = PublishedDataset(handle, pack, nbytes)
    if obs is not None and obs.enabled:
        obs.metrics.gauge(
            "parallel_segment_bytes",
            help="read-only dataset bytes published for zero-copy attach",
            unit="bytes",
        ).set(float(nbytes))
        obs.event(
            "parallel.published",
            dataset=bundle.name,
            transport=published.transport,
            bytes=nbytes,
            arrays=len(arrays),
        )
    return published
