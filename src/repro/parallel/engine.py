"""The persistent worker-pool engine for experiment-grid cells.

:class:`ParallelEngine` owns one :class:`~concurrent.futures.\
ProcessPoolExecutor` whose workers are initialized **once** with a
:class:`~repro.parallel.descriptors.SharedDatasetHandle` (attached
zero-copy on first use) plus a driver-supplied ``extra`` payload
(heuristic seed allocations, experiment config, fault hooks).  After
that, every grid-cell submission carries only ``(key, attempt,
payload)`` — a few hundred bytes regardless of dataset size.

:meth:`ParallelEngine.run` is the generic retry/collect loop shared by
the seeded-population runner and the repetition-grid driver:

* **as-completed harvesting** — results are collected the moment they
  finish, never in submission order;
* **heap-scheduled backoff** — retries waiting out their backoff sit in
  a :mod:`heapq` priority queue, popped in ready-time order (O(log n)
  per retry instead of a linear scan-and-remove);
* **cell leases for timeouts** — ``Future.cancel`` cannot stop a task
  that is already running, so a timed-out attempt becomes a *zombie*:
  it keeps both its pool slot and its **cell lease** until it actually
  finishes.  A retry of the same cell is held until the lease is
  released, so a timed-out attempt and its retry can never run
  concurrently (they would race on checkpoint files and, previously,
  silently double-consumed pool slots);
* **pool supervision** — a SIGKILL'd/OOM'd worker breaks the
  ``ProcessPoolExecutor`` (every unfinished future fails with
  ``BrokenProcessPool`` at once).  The engine rebuilds the pool — a
  *generation* counter distinguishes futures of the dead pool from the
  fresh one — and separates the break's **victim** (the cell a worker
  was actually executing, attributed via the worker's journaled
  ``running`` heartbeat) from the innocent submissions that were merely
  queued behind it.  Innocents are resubmitted on the same attempt;
  the victim's crash is charged to the cell, and a cell that keeps
  killing workers is **quarantined** after ``quarantine_after`` crashes
  on two or more distinct workers (poison input, not bad luck) instead
  of being retried forever.  Worker-death retries deliberately bypass
  ``policy.max_attempts`` — crashes are the infrastructure's fault, not
  the cell's — only the quarantine rule bounds them.  Without a journal
  there is no attribution, so repeated breaks with no completed cell in
  between fail fast rather than loop;
* **coordinator-side observability** — queue-wait histograms, attach
  counters (first reply from each worker pid), cell counters, and
  timeout/zombie/pool-break events on the driver's
  :class:`~repro.obs.context.RunContext`.  Contexts are not picklable,
  so they never cross the process boundary — instead a picklable
  :class:`~repro.obs.distributed.WorkerTelemetryConfig` ships through
  the initializer and each worker opens its own crash-safe
  :class:`~repro.obs.distributed.WorkerTelemetry` sink: one ``cell.run``
  span per executed cell (checkpointed to disk after every cell, so a
  SIGKILL loses at most the in-flight cell), per-worker cell/queue-wait
  metrics, and a ``worker_heartbeat_dropped_total`` counter with a
  once-per-worker warning event when a manifest heartbeat append fails
  (previously swallowed silently).  The cell body can reach the
  worker's context via :func:`worker_obs` to nest its own spans under
  the cell span.  With no telemetry config, workers pay one ``is
  None`` branch per cell — the zero-overhead contract, gated by the
  ``REPRO_BENCH_OBS`` parallel benchmark.

The engine is transport-agnostic: it neither publishes nor unlinks
shared memory.  Drivers publish via
:func:`repro.parallel.descriptors.publish_dataset` and pass the
resulting handle in; the pickle-fallback handle works identically.
Likewise it is manifest-agnostic: it journals nothing itself, but
accepts a :class:`~repro.parallel.manifest.WorkerJournal` for worker
heartbeats and ``on_submit``/``on_failure``/``on_quarantine``/
``poll_running`` hooks through which a driver wires the durable grid
manifest in.  With none of them set, behaviour and cost are exactly
the pre-supervision in-memory path.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Optional, Sequence

from repro.errors import (
    CellTimeoutError,
    ParallelExecutionError,
    WorkerCrashError,
)
from repro.obs.distributed import CELL_SPAN_NAME
from repro.parallel import shm as shm_transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import RunContext
    from repro.obs.distributed import WorkerTelemetry, WorkerTelemetryConfig
    from repro.parallel.descriptors import RestoredDataset, SharedDatasetHandle
    from repro.parallel.manifest import WorkerJournal

__all__ = ["CellReply", "ParallelEngine", "worker_obs"]

#: Cell wall-time buckets: sub-second unit tests through multi-minute
#: paper-scale GA cells.
_CELL_SECONDS_BUCKETS: tuple[float, ...] = (
    0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

#: Queue-wait buckets: from effectively-idle pools to badly oversubscribed.
_QUEUE_WAIT_BUCKETS: tuple[float, ...] = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 60.0,
)


# -- worker side -------------------------------------------------------------

#: Per-worker state installed by the pool initializer.
_WORKER_HANDLE: Optional["SharedDatasetHandle"] = None
_WORKER_EXTRA: object = None
_WORKER_JOURNAL: Optional["WorkerJournal"] = None
_WORKER_TELEMETRY: Optional["WorkerTelemetry"] = None

#: Heartbeat appends that failed in this worker (kept even without
#: telemetry, so the loss is at least countable in tests/debuggers).
_HEARTBEAT_DROPS = 0


def _worker_init(
    handle: Optional["SharedDatasetHandle"],
    extra: object,
    journal: Optional["WorkerJournal"] = None,
    telemetry: Optional["WorkerTelemetryConfig"] = None,
) -> None:
    """Pool initializer: install the dataset handle + driver payload.

    Runs exactly once per worker process.  Under the ``fork`` start
    method the worker may have inherited the coordinator's shared-
    memory ownership registry; that is dropped first so a worker can
    never unlink the coordinator's segments.  The dataset is restored
    (segment attached, views built) eagerly so the first cell pays no
    attach latency.  When a grid journal is configured the worker keeps
    its appender so every cell execution starts with a journaled
    ``running`` heartbeat; when a telemetry config is configured the
    worker opens its own observability sink under the run's
    ``workers/`` directory.
    """
    global _WORKER_HANDLE, _WORKER_EXTRA, _WORKER_JOURNAL, _WORKER_TELEMETRY
    shm_transport.forget_owned()
    _WORKER_HANDLE = handle
    _WORKER_EXTRA = extra
    _WORKER_JOURNAL = journal
    _WORKER_TELEMETRY = telemetry.open() if telemetry is not None else None
    if handle is not None:
        handle.restore()


def worker_obs() -> "RunContext":
    """The executing worker's observability context (for cell bodies).

    Inside a pool worker with telemetry enabled this is the worker's
    own enabled :class:`~repro.obs.context.RunContext` — spans recorded
    through it nest under the current ``cell.run`` span.  Everywhere
    else it is :data:`~repro.obs.context.NULL_CONTEXT`, so cell bodies
    can pass it unconditionally.
    """
    if _WORKER_TELEMETRY is not None:
        return _WORKER_TELEMETRY.obs
    from repro.obs.context import NULL_CONTEXT

    return NULL_CONTEXT


@dataclass(frozen=True)
class CellReply:
    """One completed grid cell, as returned to the coordinator.

    Attributes
    ----------
    key:
        The cell's identity (population label, repetition index, ...).
    attempt:
        Which attempt produced this reply (1-based).
    pid:
        The worker process id — lets the coordinator count distinct
        attaching workers.
    queue_wait:
        Seconds the submission sat in the pool queue before a worker
        picked it up (coordinator/worker monotonic-clock delta; the
        clocks are system-wide on Linux, and the value is clamped to
        ``>= 0`` elsewhere).
    elapsed:
        Seconds the cell body ran in the worker.
    result:
        Whatever the driver's cell function returned.
    """

    key: Hashable
    attempt: int
    pid: int
    queue_wait: float
    elapsed: float
    result: object


def _execute_cell(
    fn: Callable[..., object],
    key: Hashable,
    attempt: int,
    payload: object,
    submitted_at: float,
) -> CellReply:
    """Worker-side cell wrapper: heartbeat, telemetry, restore, run.

    The ``running`` heartbeat is appended *before* the cell body runs,
    so if this worker is SIGKILL'd mid-cell the coordinator can read
    exactly which cell (and which pid) went down with it.  With
    telemetry enabled the body runs inside a ``cell.run`` span and the
    worker sink is checkpointed after the cell (success *and* error
    paths) — a later SIGKILL loses at most the in-flight cell.
    """
    global _HEARTBEAT_DROPS
    started = time.monotonic()
    telem = _WORKER_TELEMETRY
    if _WORKER_JOURNAL is not None:
        try:
            _WORKER_JOURNAL.running(key, attempt)
        except OSError as exc:
            # Best-effort: never fail the cell for a heartbeat — but
            # never lose the loss either (satellite of the observability
            # PR: this used to be a bare ``pass``).
            _HEARTBEAT_DROPS += 1
            if telem is not None:
                telem.heartbeat_dropped(key, attempt, exc)
    restored: Optional["RestoredDataset"] = (
        _WORKER_HANDLE.restore() if _WORKER_HANDLE is not None else None
    )
    queue_wait = max(0.0, started - submitted_at)
    if telem is None:
        result = fn(restored, _WORKER_EXTRA, key, attempt, payload)
    else:
        ctx = telem.cell_context(key, attempt)
        try:
            with telem.obs.span(
                CELL_SPAN_NAME, queue_wait_s=queue_wait, **ctx.as_attrs()
            ):
                result = fn(restored, _WORKER_EXTRA, key, attempt, payload)
        except BaseException:
            telem.obs.metrics.counter(
                "worker_cell_errors_total",
                help="cell attempts that raised in this worker",
            ).inc()
            telem.checkpoint()
            raise
        elapsed = time.monotonic() - started
        metrics = telem.obs.metrics
        metrics.counter(
            "worker_cells_total", help="cell attempts completed by this worker"
        ).inc()
        metrics.histogram(
            "worker_cell_seconds",
            buckets=_CELL_SECONDS_BUCKETS,
            help="wall seconds per completed cell (heartbeat+restore+body)",
            unit="seconds",
        ).observe(elapsed)
        metrics.histogram(
            "worker_queue_wait_seconds",
            buckets=_QUEUE_WAIT_BUCKETS,
            help="seconds a cell sat in the pool queue before pickup",
            unit="seconds",
        ).observe(queue_wait)
        telem.checkpoint()
        return CellReply(
            key=key,
            attempt=attempt,
            pid=os.getpid(),
            queue_wait=queue_wait,
            elapsed=elapsed,
            result=result,
        )
    return CellReply(
        key=key,
        attempt=attempt,
        pid=os.getpid(),
        queue_wait=queue_wait,
        elapsed=time.monotonic() - started,
        result=result,
    )


# -- coordinator side --------------------------------------------------------


class ParallelEngine:
    """A persistent pool of dataset-attached workers plus the retry loop.

    Parameters
    ----------
    workers:
        Pool size (>= 1).
    handle:
        Optional :class:`~repro.parallel.descriptors.SharedDatasetHandle`
        shipped to each worker once via the pool initializer; cells
        receive the restored dataset as their first argument (or
        ``None`` when no handle is given).
    extra:
        Arbitrary picklable payload also shipped once per worker —
        put per-experiment constants here (seed allocations, config,
        hooks), never in per-cell payloads.
    journal:
        Optional :class:`~repro.parallel.manifest.WorkerJournal`; when
        given, every worker appends a ``running`` heartbeat before
        executing a cell body, enabling victim attribution on pool
        breaks.
    telemetry:
        Optional :class:`~repro.obs.distributed.WorkerTelemetryConfig`;
        when given, every worker opens its own crash-safe telemetry
        sink under the run's ``workers/`` directory (spans, metrics,
        events per cell).  Rebuilt pool generations open fresh sinks.
    obs:
        Optional :class:`~repro.obs.context.RunContext` for
        coordinator-side metrics and events.
    mp_context:
        Optional :mod:`multiprocessing` context (e.g.
        ``multiprocessing.get_context("spawn")``); default is the
        platform default (``fork`` on Linux).
    """

    def __init__(
        self,
        workers: int,
        *,
        handle: Optional["SharedDatasetHandle"] = None,
        extra: object = None,
        journal: Optional["WorkerJournal"] = None,
        telemetry: Optional["WorkerTelemetryConfig"] = None,
        obs: Optional["RunContext"] = None,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ParallelExecutionError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.handle = handle
        self._obs = obs
        self._mp_context = mp_context
        self._initargs = (handle, extra, journal, telemetry)
        self._pool = self._new_pool()
        self._closed = False
        #: Bumped on every pool rebuild; pending futures are tagged with
        #: the generation they were submitted under so one break is
        #: handled exactly once however many futures it shatters.
        self.pool_generation = 0
        #: Worker pids that have sent at least one reply (attach count).
        self.seen_pids: set[int] = set()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._mp_context,
            initializer=_worker_init,
            initargs=self._initargs,
        )

    def _rebuild_pool(self) -> None:
        """Replace a broken pool with a fresh generation of workers."""
        old = self._pool
        self.pool_generation += 1
        self._pool = self._new_pool()
        old.shutdown(wait=False, cancel_futures=True)
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.counter(
                "parallel_pool_breaks_total",
                help="worker-pool breaks survived by rebuilding the pool",
            ).inc()
            obs.event(
                "parallel.pool_rebuilt", level="warning",
                generation=self.pool_generation,
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, cancel: bool = False) -> None:
        """Shut the pool down (idempotent).

        ``cancel=True`` drops queued work and does not join running
        workers — the interrupt/fail-fast path.  The default joins
        workers, which waits out any still-running zombie attempts.
        """
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=not cancel, cancel_futures=cancel)

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(cancel=exc_type is not None)

    # -- the retry/collect loop --------------------------------------------

    def run(
        self,
        fn: Callable[..., object],
        keys: Sequence[Hashable],
        payload_for: Callable[[Hashable, int], object],
        *,
        policy,
        backoff_for: Callable[[Hashable, int], float],
        give_up: Callable[[Hashable, int, BaseException], None],
        on_result: Callable[[CellReply], None],
        sleep: Callable[[float], None] = time.sleep,
        on_submit: Optional[Callable[[Hashable, int], None]] = None,
        on_failure: Optional[
            Callable[[Hashable, int, BaseException, Optional[int]], None]
        ] = None,
        quarantine_after: int = 3,
        on_quarantine: Optional[
            Callable[[Hashable, int, frozenset], None]
        ] = None,
        poll_running: Optional[Callable[[], list]] = None,
    ) -> None:
        """Run every cell in *keys* under the retry *policy*.

        Parameters
        ----------
        fn:
            Module-level (picklable) cell body
            ``fn(restored, extra, key, attempt, payload) -> result``.
        keys:
            Cell identities; each is attempted until it succeeds or
            exhausts ``policy.max_attempts``.
        payload_for:
            ``(key, attempt) -> picklable per-cell payload``.  Keep it
            O(1)-sized — everything large belongs in ``extra`` or the
            shared segment.
        policy:
            A :class:`~repro.experiments.runner.RetryPolicy`-shaped
            object (``max_attempts`` and ``timeout`` are read here;
            backoff delays come from *backoff_for*).
        backoff_for:
            ``(key, failed_attempt) -> delay seconds`` — called exactly
            once per scheduled retry, so drivers can hang determinism
            and telemetry off it.
        give_up:
            Called when a cell exhausts its attempts.  May raise to
            fail fast (the pool is then shut down with queued work
            cancelled).
        on_result:
            Called with each successful :class:`CellReply`, in
            completion order.
        sleep:
            Injectable sleep for the idle branch (tests pass stubs).
        on_submit:
            Optional ``(key, attempt)`` hook called as each attempt is
            submitted — the manifest's ``leased`` transition.
        on_failure:
            Optional ``(key, attempt, exc, owner_pid)`` hook called on
            every failed attempt (timeout, cell exception, worker
            death) before any retry is scheduled — the manifest's
            ``failed`` transition.  ``owner_pid`` is only known for
            worker deaths.
        quarantine_after:
            Crash budget per cell: a cell whose execution has killed a
            worker this many times, across at least two distinct
            workers (or ``quarantine_after + 2`` times on any), is
            quarantined instead of retried.
        on_quarantine:
            Optional ``(key, attempt, owners)`` hook for the
            quarantined transition.  Without it, quarantine falls back
            to *give_up* with a :class:`~repro.errors.WorkerCrashError`.
        poll_running:
            Optional zero-argument callable returning newly observed
            worker heartbeats as ``(key, attempt, pid)`` triples —
            normally :meth:`~repro.parallel.manifest.GridManifest.\
poll_running`.  Without it, pool breaks cannot be attributed to a
            victim cell, so every broken submission is resubmitted
            as-is and repeated breaks with no completed cell in
            between raise :class:`~repro.errors.WorkerCrashError`
            instead of looping forever.
        """
        obs = self._obs
        if self._closed:
            raise ParallelExecutionError("engine is closed")
        #: Future → (key, attempt, deadline | None, pool generation)
        pending: dict[
            Future, tuple[Hashable, int, Optional[float], int]
        ] = {}
        #: Timed-out futures still running — each holds its cell lease.
        zombies: dict[Future, Hashable] = {}
        leased: set[Hashable] = set()
        #: key → attempt for retries whose backoff expired while the
        #: cell lease was still held by a zombie.
        held: dict[Hashable, int] = {}
        #: (ready time, seq, key, attempt) min-heap of pending retries.
        heap: list[tuple[float, int, Hashable, int]] = []
        seq = itertools.count()
        #: (key, attempt) → worker pid, from journaled heartbeats.
        started: dict[tuple[Hashable, int], int] = {}
        #: key → [owner pid, ...] crash charges (quarantine evidence).
        crashes: dict[Hashable, list] = {}
        #: Pool breaks since the last reply or victim attribution —
        #: bounds the unattributed-break resubmission loop.
        blind_breaks = 0

        def submit(key: Hashable, attempt: int) -> None:
            submitted_at = time.monotonic()
            payload = payload_for(key, attempt)
            if on_submit is not None:
                on_submit(key, attempt)
            try:
                future = self._pool.submit(
                    _execute_cell, fn, key, attempt, payload, submitted_at
                )
            except BrokenExecutor:
                # The pool died between harvests; rebuild once and
                # resubmit — the broken futures are handled as they
                # surface from wait().
                self._rebuild_pool()
                future = self._pool.submit(
                    _execute_cell, fn, key, attempt, payload, submitted_at
                )
            deadline = (
                None if policy.timeout is None
                else submitted_at + policy.timeout
            )
            pending[future] = (key, attempt, deadline, self.pool_generation)

        def poll_started() -> None:
            if poll_running is None:
                return
            for key, attempt, pid in poll_running():
                if pid is not None:
                    started[(key, attempt)] = pid

        def handle_failure(
            key: Hashable, attempt: int, exc: BaseException
        ) -> None:
            if on_failure is not None:
                on_failure(key, attempt, exc, None)
            if attempt >= policy.max_attempts:
                give_up(key, attempt, exc)
            else:
                ready = time.monotonic() + backoff_for(key, attempt)
                heapq.heappush(heap, (ready, next(seq), key, attempt + 1))

        def handle_broken(
            key: Hashable, attempt: int, generation: int
        ) -> None:
            """One broken future: attribute, charge or resubmit."""
            nonlocal blind_breaks
            if generation == self.pool_generation:
                # First future of this break to surface: learn which
                # cells had actually started, then turn the pool over.
                poll_started()
                blind_breaks += 1
                self._rebuild_pool()
            owner = started.get((key, attempt))
            if owner is None and poll_running is not None:
                # Journaled grid, no heartbeat for this attempt: the
                # submission was queued, never started — an innocent
                # casualty of someone else's crash.  Same attempt again.
                submit(key, attempt)
                return
            if poll_running is None:
                # No attribution possible.  Resubmit as-is, but a pool
                # that keeps dying with no completed cell in between
                # would loop forever — fail fast past the budget.
                if blind_breaks > quarantine_after:
                    raise WorkerCrashError(
                        f"worker pool broke {blind_breaks} times with no "
                        "completed cell in between and no grid journal to "
                        "attribute a victim; enable a grid directory for "
                        "supervised execution",
                        cell=key, attempt=attempt,
                    )
                submit(key, attempt)
                return
            # Attributed victim: charge the crash to the cell.
            blind_breaks = 0
            owners = crashes.setdefault(key, [])
            owners.append(owner)
            crash = WorkerCrashError(
                f"worker {owner} died executing cell {key!r} "
                f"(attempt {attempt}, crash {len(owners)} for this cell)",
                cell=key, attempt=attempt,
            )
            if obs is not None and obs.enabled:
                obs.counter(
                    "parallel_worker_deaths_total",
                    help="pool workers that died while executing a cell",
                ).inc()
                obs.event(
                    "parallel.worker_death", level="error",
                    key=str(key), attempt=attempt, owner=owner,
                )
            if on_failure is not None:
                on_failure(key, attempt, crash, owner)
            distinct = len(set(owners))
            if len(owners) >= quarantine_after and (
                distinct >= 2 or len(owners) >= quarantine_after + 2
            ):
                if obs is not None and obs.enabled:
                    obs.event(
                        "parallel.quarantine", level="error",
                        key=str(key), crashes=len(owners),
                        distinct_workers=distinct,
                    )
                if on_quarantine is not None:
                    on_quarantine(key, attempt, frozenset(owners))
                else:
                    give_up(key, attempt, crash)
                return
            # Crashes are charged against the quarantine budget, not
            # the cell's retry budget — the input did not fail, the
            # infrastructure did.
            ready = time.monotonic() + backoff_for(key, attempt)
            heapq.heappush(heap, (ready, next(seq), key, attempt + 1))

        def record_reply(reply: CellReply) -> None:
            nonlocal blind_breaks
            blind_breaks = 0
            new_pid = reply.pid not in self.seen_pids
            self.seen_pids.add(reply.pid)
            if obs is None or not obs.enabled:
                return
            if new_pid and self.handle is not None:
                obs.counter(
                    "parallel_attach_total",
                    help="worker processes that attached the published dataset",
                ).inc()
            obs.counter(
                "parallel_cells_total", help="grid cells completed"
            ).inc()
            obs.metrics.histogram(
                "parallel_queue_wait_seconds",
                help="pool queue wait per cell submission",
                unit="seconds",
            ).observe(reply.queue_wait)

        try:
            for key in keys:
                submit(key, 1)
            while pending or zombies or heap or held:
                now = time.monotonic()
                while heap and heap[0][0] <= now:
                    _, _, key, attempt = heapq.heappop(heap)
                    if key in leased:
                        held[key] = attempt
                    else:
                        submit(key, attempt)
                if not pending and not zombies:
                    # Only backoff timers remain; idle until the next one.
                    sleep(max(0.0, heap[0][0] - now))
                    continue
                waits = []
                if heap:
                    waits.append(heap[0][0] - now)
                waits += [
                    d - now
                    for (_, _, d, _) in pending.values()
                    if d is not None
                ]
                wait_for = max(0.0, min(waits)) if waits else None
                done, _ = wait(
                    set(pending) | set(zombies),
                    timeout=wait_for, return_when=FIRST_COMPLETED,
                )
                for future in done:
                    if future in zombies:
                        key = zombies.pop(future)
                        leased.discard(key)
                        future.exception()  # reap; result is discarded
                        if obs is not None and obs.enabled:
                            obs.event(
                                "parallel.zombie_reaped", level="warning",
                                key=str(key),
                            )
                        if key in held:
                            heapq.heappush(
                                heap,
                                (time.monotonic(), next(seq), key,
                                 held.pop(key)),
                            )
                        continue
                    key, attempt, _, generation = pending.pop(future)
                    try:
                        reply = future.result()
                    except BrokenExecutor:
                        handle_broken(key, attempt, generation)
                    except Exception as exc:
                        handle_failure(key, attempt, exc)
                    else:
                        record_reply(reply)
                        on_result(reply)
                now = time.monotonic()
                for future, (key, attempt, deadline, _gen) in list(
                    pending.items()
                ):
                    if deadline is not None and now >= deadline:
                        del pending[future]
                        if not future.cancel():
                            # Already running: cannot be pre-empted.  It
                            # keeps its pool slot and its cell lease
                            # until it finishes, so the retry below can
                            # never run concurrently with it.
                            zombies[future] = key
                            leased.add(key)
                            if obs is not None and obs.enabled:
                                obs.event(
                                    "parallel.timeout", level="warning",
                                    key=str(key), attempt=attempt,
                                    timeout_seconds=policy.timeout,
                                )
                        handle_failure(
                            key, attempt,
                            CellTimeoutError(
                                f"attempt {attempt} exceeded the per-attempt "
                                f"timeout of {policy.timeout}s",
                                cell=key, attempt=attempt,
                            ),
                        )
        except BaseException:
            # Fail-fast exit (strict mode) or KeyboardInterrupt: drop
            # queued work immediately; running workers are abandoned.
            self.close(cancel=True)
            raise
