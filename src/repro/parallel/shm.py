"""Zero-copy array transport over ``multiprocessing.shared_memory``.

The experiment grid is embarrassingly parallel, but every cell of the
grid reads the *same* few hundred kilobytes of read-only arrays (per-
task ETC/EEC gathers, arrivals, TUF parameter tables).  Re-pickling
those into every process-pool submission makes the per-cell cost
O(dataset); this module publishes them **once per experiment** into a
single named shared-memory segment and hands workers an
:class:`ArrayPackSpec` — a few hundred bytes of metadata — from which
they attach zero-copy NumPy views.

Design points:

* **One segment per pack.**  All arrays are packed back-to-back (64-
  byte aligned) into one segment, so the whole data set costs one
  ``shm_open`` + one ``mmap`` per worker, not one per array.
* **Attach-once registry.**  :func:`attach` memoizes attachments by
  segment name in a module-level registry, so a pool worker that
  receives many cells for the same experiment maps the segment exactly
  once.  Attached views are read-only.
* **Deterministic lifecycle.**  The publishing process owns the
  segment: :class:`SharedArrayPack` is a context manager, registers an
  ``atexit`` unlink, and :func:`owned_segments` / :func:`leaked_segments`
  make leak detection testable.  Workers only ever *close* their
  mapping — they never unlink.
* **Graceful degradation.**  :data:`SHARED_MEMORY_AVAILABLE` is probed
  at import; :func:`publish` raises :class:`SharedMemoryUnavailable`
  when the platform cannot serve segments so callers can fall back to
  pickle transport (see :mod:`repro.parallel.descriptors`).
"""

from __future__ import annotations

import atexit
import os
import secrets
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.errors import ParallelExecutionError

__all__ = [
    "SHARED_MEMORY_AVAILABLE",
    "SEGMENT_PREFIX",
    "SharedMemoryUnavailable",
    "ArraySpec",
    "ArrayPackSpec",
    "SharedArrayPack",
    "publish",
    "attach",
    "detach_all",
    "forget_owned",
    "owned_segments",
    "leaked_segments",
    "janitor_sweep",
    "unlink_segments",
]

try:  # pragma: no cover - import probe
    from multiprocessing import shared_memory as _shm_module

    SHARED_MEMORY_AVAILABLE = True
except ImportError:  # pragma: no cover - exotic platforms only
    _shm_module = None  # type: ignore[assignment]
    SHARED_MEMORY_AVAILABLE = False

#: Prefix of every segment this module creates — the handle for leak
#: detection (``/dev/shm/<prefix>*`` on Linux).
SEGMENT_PREFIX = "repro-shm-"

#: Byte alignment of each packed array (cache-line friendly; keeps
#: every view's base aligned for vectorized loads).
_ALIGN = 64


class SharedMemoryUnavailable(ParallelExecutionError):
    """Shared-memory segments cannot be served on this platform."""


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a packed segment (picklable)."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class ArrayPackSpec:
    """Everything a worker needs to attach a pack (picklable, tiny).

    The spec is a few hundred bytes no matter how large the arrays are
    — this is the object that rides in every pool submission instead of
    the arrays themselves.
    """

    segment: str
    total_bytes: int
    arrays: tuple[ArraySpec, ...]

    def keys(self) -> tuple[str, ...]:
        """The packed array names, in pack order."""
        return tuple(spec.key for spec in self.arrays)


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


#: Packs created (and therefore owned) by this process, by segment name.
_OWNED: dict[str, "SharedArrayPack"] = {}

#: Segments attached (not owned) by this process: name → (shm, views).
_ATTACHED: dict[str, tuple[object, dict[str, np.ndarray]]] = {}


class SharedArrayPack:
    """Owner handle of one published segment (publishing process only).

    Create via :func:`publish`.  The owner must eventually call
    :meth:`close` (or use the pack as a context manager); an ``atexit``
    hook unlinks anything still owned at interpreter exit so crashed
    coordinators do not strand segments.
    """

    def __init__(self, shm, spec: ArrayPackSpec) -> None:
        self._shm = shm
        self.spec = spec
        self.closed = False
        _OWNED[spec.segment] = self

    @property
    def nbytes(self) -> int:
        """Published payload size (sum of aligned array extents)."""
        return self.spec.total_bytes

    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        _OWNED.pop(self.spec.segment, None)
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked externally
                pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def publish(arrays: Mapping[str, np.ndarray]) -> SharedArrayPack:
    """Copy *arrays* into one fresh shared-memory segment.

    Returns the owning :class:`SharedArrayPack`; its ``spec`` attribute
    is the picklable attachment descriptor.  Raises
    :class:`SharedMemoryUnavailable` when segments cannot be created,
    so callers can fall back to pickle transport.
    """
    if not arrays:
        raise ParallelExecutionError("cannot publish an empty array pack")
    if not SHARED_MEMORY_AVAILABLE:
        raise SharedMemoryUnavailable(
            "multiprocessing.shared_memory is not importable on this platform"
        )
    specs: list[ArraySpec] = []
    offset = 0
    prepared: list[np.ndarray] = []
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        specs.append(
            ArraySpec(
                key=key,
                dtype=arr.dtype.str,
                shape=tuple(arr.shape),
                offset=offset,
                nbytes=arr.nbytes,
            )
        )
        prepared.append(arr)
        offset += _align(arr.nbytes)
    total = max(offset, 1)
    name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
    try:
        shm = _shm_module.SharedMemory(name=name, create=True, size=total)
    except (OSError, ValueError) as exc:
        raise SharedMemoryUnavailable(
            f"cannot create a {total}-byte shared-memory segment: {exc}"
        ) from exc
    for spec, arr in zip(specs, prepared):
        dst = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf,
            offset=spec.offset,
        )
        dst[...] = arr
    return SharedArrayPack(
        shm, ArrayPackSpec(segment=name, total_bytes=total, arrays=tuple(specs))
    )


def attach(spec: ArrayPackSpec) -> Mapping[str, np.ndarray]:
    """Map *spec*'s segment and return read-only zero-copy views.

    Memoized by segment name: a process attaches each segment once, no
    matter how many cells reference it.  The returned views alias the
    shared mapping directly — no bytes are copied.

    Attaching registers the segment with the :mod:`multiprocessing`
    resource tracker, which pool workers (fork or spawn) share with
    the coordinator: the registration set is idempotent, the owner's
    ``unlink`` unregisters exactly once, and the tracker still reclaims
    the segment if the whole process tree dies uncleanly.  (Only a
    process with a *separate* tracker could destroy the segment at
    exit; the engine never attaches from one.)
    """
    cached = _ATTACHED.get(spec.segment)
    if cached is not None:
        return cached[1]
    owned = _OWNED.get(spec.segment)
    if owned is not None:
        # The publishing process can "attach" its own pack without a
        # second mapping (used by in-process fallbacks and tests).
        views = _views_over(owned._shm, spec)
        _ATTACHED[spec.segment] = (None, views)
        return views
    if not SHARED_MEMORY_AVAILABLE:
        raise SharedMemoryUnavailable(
            "multiprocessing.shared_memory is not importable on this platform"
        )
    try:
        shm = _shm_module.SharedMemory(name=spec.segment, create=False)
    except FileNotFoundError as exc:
        raise ParallelExecutionError(
            f"shared segment {spec.segment!r} does not exist (published "
            "pack closed too early, or leaked-segment cleanup ran?)"
        ) from exc
    views = _views_over(shm, spec)
    _ATTACHED[spec.segment] = (shm, views)
    return views


def _views_over(shm, spec: ArrayPackSpec) -> dict[str, np.ndarray]:
    views: dict[str, np.ndarray] = {}
    for aspec in spec.arrays:
        view = np.ndarray(
            aspec.shape, dtype=np.dtype(aspec.dtype), buffer=shm.buf,
            offset=aspec.offset,
        )
        view.setflags(write=False)
        views[aspec.key] = view
    return views


def detach_all() -> None:
    """Drop every attachment held by this process (worker cleanup).

    Views handed out earlier keep the underlying ``mmap`` alive through
    their buffer reference, so closing here is safe even if stale views
    linger; the OS reclaims the mapping when the last reference dies.
    """
    while _ATTACHED:
        _, (shm, views) = _ATTACHED.popitem()
        views.clear()
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still exported
                pass


def forget_owned() -> None:
    """Drop ownership records without closing or unlinking anything.

    Called from pool-worker initializers: under the ``fork`` start
    method a worker inherits the coordinator's ``_OWNED`` registry, and
    must never treat those segments as its own to unlink.
    """
    _OWNED.clear()


def owned_segments() -> tuple[str, ...]:
    """Names of the packs this process has published and not yet closed."""
    return tuple(sorted(_OWNED))


def _creator_pid(name: str, prefix: str = SEGMENT_PREFIX) -> Optional[int]:
    """The pid baked into a segment name, or ``None`` if unparseable.

    Segment names are ``<prefix><creator pid>-<random hex>`` (see
    :func:`publish`), which makes ownership auditable system-wide: any
    process can ask whether a segment's creator is still alive.
    """
    rest = name[len(prefix):] if name.startswith(prefix) else name
    pid_part, _, _ = rest.partition("-")
    try:
        return int(pid_part)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe via signal 0."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> tuple[str, ...]:
    """Repro-owned segment files present system-wide (Linux: /dev/shm).

    A segment is *leaked* when it exists on disk, is not owned by this
    process, and its creating process is gone — e.g. a coordinator
    SIGKILLed between publish and unlink.  A segment whose (foreign)
    creator is still alive is **not** leaked: it is live infrastructure
    of another coordinator, and counting it would let an audit-and-
    cleanup pass unlink a segment that a worker — possibly one that
    will outlive a SIGKILL'd sibling — is still reading.  Unowned
    segments created by *this* process do count as leaked (the owner
    dropped its handle without closing: a genuine bug, and the one this
    detector exists to catch in tests).  On platforms without a
    ``/dev/shm`` view this returns the empty tuple (detection
    unavailable, not an error).
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return ()
    own_pid = os.getpid()
    names = []
    for entry in sorted(os.listdir(shm_dir)):
        if not entry.startswith(prefix) or entry in _OWNED:
            continue
        creator = _creator_pid(entry, prefix)
        if creator is not None and creator != own_pid and _pid_alive(creator):
            continue  # live foreign coordinator: in use, not leaked
        names.append(entry)
    return tuple(names)


def janitor_sweep(prefix: str = SEGMENT_PREFIX) -> tuple[str, ...]:
    """Unlink segments stranded by dead creators; return their names.

    The recovery-path janitor (``repro-analyze grid resume`` calls this
    before republishing): a coordinator SIGKILLed mid-sweep leaves its
    segment behind, and the resuming process reclaims it here.  Only
    segments whose creator pid is parseable **and confirmed dead** are
    touched — live foreign coordinators, this process's own segments,
    and unattributable names are all left alone, so a sweep can never
    unlink a segment still mapped by someone's workers.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return ()
    doomed = []
    for entry in sorted(os.listdir(shm_dir)):
        if not entry.startswith(prefix) or entry in _OWNED:
            continue
        creator = _creator_pid(entry, prefix)
        if creator is None or creator == os.getpid() or _pid_alive(creator):
            continue
        doomed.append(entry)
    unlink_segments(doomed)
    return tuple(doomed)


def unlink_segments(names: Iterable[str]) -> int:
    """Unlink the named segments (leaked-segment cleanup); returns count."""
    removed = 0
    if not SHARED_MEMORY_AVAILABLE:  # pragma: no cover - exotic platforms
        return removed
    for name in names:
        try:
            shm = _shm_module.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            continue
        shm.close()
        try:
            shm.unlink()
            removed += 1
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass
    return removed


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    """Unlink everything still owned; close every attachment."""
    for pack in list(_OWNED.values()):
        try:
            pack.close()
        except Exception:
            pass
    try:
        detach_all()
    except Exception:
        pass
