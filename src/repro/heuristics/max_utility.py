"""Max Utility seeding heuristic (paper Section V-B2).

"Similar to the min energy heuristic except that it maps tasks to the
machines that maximizes utility earned.  This heuristic must consider
the completion time of the machine queues when making mapping
decisions.  There is no guarantee this heuristic will create a
solution with the maximum obtainable utility."

For each task (in arrival order) the would-be completion time on every
machine — including queueing behind previously mapped tasks — is pushed
through the task's time-utility function; the task goes to the machine
earning the most utility.  Ties break toward earlier completion, then
lower machine index.
"""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import SeedingHeuristic
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.utility.vectorized import TUFTable
from repro.workload.trace import Trace

__all__ = ["MaxUtility"]


class MaxUtility(SeedingHeuristic):
    """Greedy maximum-utility mapping in arrival order."""

    name = "max-utility"

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Map every task to the machine maximizing its utility earned."""
        task_types, arrivals, _, _ = self._prepare(system, trace)
        table = TUFTable.from_system(system)
        M = system.num_machines

        def score(t: int, completion, available) -> int:
            elapsed = completion - arrivals[t]
            feasible = np.isfinite(completion)
            # Evaluate the TUF on every feasible machine's completion.
            utilities = np.full(M, -np.inf)
            idx = np.flatnonzero(feasible)
            utilities[idx] = table.evaluate(
                np.full(idx.size, task_types[t], dtype=np.int64), elapsed[idx]
            )
            best = utilities.max()
            candidates = np.flatnonzero(utilities == best)
            return int(candidates[np.argmin(completion[candidates])])

        return self._greedy_by_arrival(system, trace, score)
