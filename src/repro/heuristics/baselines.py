"""Baseline mappers beyond the paper's four seeds.

Used by tests (independent fixtures the seeds must beat) and the
ablation benchmarks — not part of the paper's experiment set:

* :class:`RandomMapper` — uniform feasible machine per task; arrival
  order.  The "no intelligence" floor.
* :class:`RoundRobinMapper` — cycles machines (skipping infeasible
  ones); arrival order.  A load-balancing floor.
* :class:`SufferageCompletionTime` — Maheswaran et al.'s Sufferage:
  map first the task that would *suffer* most (largest gap between its
  best and second-best completion time).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScheduleError
from repro.heuristics.base import SeedingHeuristic
from repro.model.system import SystemModel
from repro.rng import SeedLike, ensure_rng
from repro.sim.schedule import ResourceAllocation
from repro.workload.trace import Trace

__all__ = ["RandomMapper", "RoundRobinMapper", "SufferageCompletionTime"]


class RandomMapper(SeedingHeuristic):
    """Uniformly random feasible machine per task, arrival order."""

    name = "random"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = ensure_rng(seed)

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Draw one feasible machine per task."""
        task_types, _, etc, _ = self._prepare(system, trace)
        T = trace.num_tasks
        assignment = np.empty(T, dtype=np.int64)
        for t in range(T):
            feasible = np.flatnonzero(np.isfinite(etc[t]))
            assignment[t] = int(self._rng.choice(feasible))
        return ResourceAllocation(
            machine_assignment=assignment,
            scheduling_order=np.arange(T, dtype=np.int64),
        )


class RoundRobinMapper(SeedingHeuristic):
    """Cycle machines in index order, skipping infeasible placements."""

    name = "round-robin"

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Assign machine ``(cursor++) mod M``, skipping infeasible ones."""
        _, _, etc, _ = self._prepare(system, trace)
        T = trace.num_tasks
        M = system.num_machines
        assignment = np.empty(T, dtype=np.int64)
        cursor = 0
        for t in range(T):
            for probe in range(M):
                m = (cursor + probe) % M
                if np.isfinite(etc[t, m]):
                    assignment[t] = m
                    cursor = (m + 1) % M
                    break
            else:
                raise ScheduleError(f"task {t} has no feasible machine")
        return ResourceAllocation(
            machine_assignment=assignment,
            scheduling_order=np.arange(T, dtype=np.int64),
        )


class SufferageCompletionTime(SeedingHeuristic):
    """Sufferage on completion time (Maheswaran et al. 1999)."""

    name = "sufferage"

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Repeatedly map the task with the largest best/second-best gap."""
        _, arrivals, etc, _ = self._prepare(system, trace)
        T = trace.num_tasks
        M = system.num_machines
        available = np.zeros(M, dtype=np.float64)
        assignment = np.empty(T, dtype=np.int64)
        order = np.empty(T, dtype=np.int64)
        unmapped = np.ones(T, dtype=bool)

        for k in range(T):
            rows = np.flatnonzero(unmapped)
            comp = np.maximum(available[None, :], arrivals[rows, None]) + etc[rows]
            # Best and second-best completion per task.
            part = np.partition(comp, 1, axis=1) if M > 1 else comp
            best = part[:, 0]
            second = part[:, 1] if M > 1 else np.full(rows.size, np.inf)
            sufferage = np.where(np.isfinite(second), second - best, np.inf)
            pick = int(np.argmax(sufferage))
            t = int(rows[pick])
            m = int(np.argmin(comp[pick]))
            assignment[t] = m
            order[t] = k
            unmapped[t] = False
            available[m] = comp[pick, m]

        return ResourceAllocation(machine_assignment=assignment, scheduling_order=order)
