"""Classic immediate-mode mapping heuristics (Braun et al. 2001).

The paper's reference [24] compares eleven static heuristics for
mapping independent tasks onto heterogeneous systems; the three
simplest immediate-mode members are implemented here as additional
baselines (the paper's four seeds are the smarter end of this family):

* :class:`OLB` — Opportunistic Load Balancing: assign each task (in
  arrival order) to the machine that becomes *available* soonest,
  ignoring how long the task runs there.  The classic "keep everything
  busy" strawman.
* :class:`MET` — Minimum Execution Time: assign each task to the
  machine with its smallest ETC, ignoring availability.  Overloads the
  fastest machines.
* :class:`MCT` — Minimum Completion Time: assign each task to the
  machine minimizing ``max(available, arrival) + ETC`` — the
  single-stage version of Min-Min.

All three queue tasks in arrival order (scheduling key = task index),
matching the framework's other single-stage heuristics.
"""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import SeedingHeuristic
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.workload.trace import Trace

__all__ = ["OLB", "MET", "MCT"]


class OLB(SeedingHeuristic):
    """Opportunistic Load Balancing: earliest-available machine."""

    name = "olb"

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Assign each task to the machine free soonest (feasible only)."""
        def score(t: int, completion, available) -> int:
            feasible = np.isfinite(completion)
            masked = np.where(feasible, available, np.inf)
            return int(np.argmin(masked))

        return self._greedy_by_arrival(system, trace, score)


class MET(SeedingHeuristic):
    """Minimum Execution Time: fastest machine regardless of queue."""

    name = "met"

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Assign each task to its minimum-ETC machine."""
        _, _, etc, _ = self._prepare(system, trace)

        def score(t: int, completion, available) -> int:
            return int(np.argmin(etc[t]))

        return self._greedy_by_arrival(system, trace, score)


class MCT(SeedingHeuristic):
    """Minimum Completion Time: queue-aware fastest finish."""

    name = "mct"

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Assign each task to the machine finishing it earliest."""
        def score(t: int, completion, available) -> int:
            return int(np.argmin(completion))

        return self._greedy_by_arrival(system, trace, score)
