"""Min Energy seeding heuristic (paper Section V-B1).

"A single stage greedy heuristic that maps tasks to machines that
minimize energy consumption ... maps tasks according to their arrival
time ... to the machine that consumes the least amount of energy to
execute the task.  This heuristic will create a solution with the
minimum possible energy consumption."

Because each task's energy ``EEC(τ, Ω(m))`` is independent of queueing,
the per-task argmin is globally optimal in energy — the property test
in ``tests/test_heuristics.py`` verifies no allocation can consume
less.  Ties are broken toward the machine with the earlier completion
time (earning utility for free), then by machine index for determinism.
"""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import SeedingHeuristic
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.workload.trace import Trace

__all__ = ["MinEnergy"]


class MinEnergy(SeedingHeuristic):
    """Greedy minimum-EEC mapping in arrival order."""

    name = "min-energy"

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Map every task to its minimum-energy machine."""
        _, _, _, eec = self._prepare(system, trace)

        def score(t: int, completion, available) -> int:
            row = eec[t]
            best = row.min()
            # Tie-break among minimum-energy machines by completion time.
            candidates = np.flatnonzero(row == best)
            return int(candidates[np.argmin(completion[candidates])])

        return self._greedy_by_arrival(system, trace, score)
