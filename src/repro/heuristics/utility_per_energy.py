"""Max Utility-per-Energy seeding heuristic (paper Section V-B3).

"Tries to combine aspects of the previous two heuristics.  Instead of
making mapping decisions based on either energy consumption or utility
earned independently, this heuristic maps a given task to the machine
that will provide the most utility earned per unit of energy
consumed."

The score for machine *m* is ``Υ_τ(completion_m − arrival) / EEC(τ, Ω(m))``;
queueing is accounted for exactly as in Max Utility.  Ties break toward
lower energy, then earlier completion.
"""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import SeedingHeuristic
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.utility.vectorized import TUFTable
from repro.workload.trace import Trace

__all__ = ["MaxUtilityPerEnergy"]


class MaxUtilityPerEnergy(SeedingHeuristic):
    """Greedy maximum utility-per-joule mapping in arrival order."""

    name = "max-utility-per-energy"

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Map every task to the machine with the best utility/energy ratio."""
        task_types, arrivals, _, eec = self._prepare(system, trace)
        table = TUFTable.from_system(system)
        M = system.num_machines

        def score(t: int, completion, available) -> int:
            elapsed = completion - arrivals[t]
            feasible = np.isfinite(completion)
            ratio = np.full(M, -np.inf)
            idx = np.flatnonzero(feasible)
            utilities = table.evaluate(
                np.full(idx.size, task_types[t], dtype=np.int64), elapsed[idx]
            )
            ratio[idx] = utilities / eec[t, idx]
            best = ratio.max()
            candidates = np.flatnonzero(ratio == best)
            # Tie-break: lower energy, then earlier completion.
            sub = np.lexsort((completion[candidates], eec[t, candidates]))
            return int(candidates[sub[0]])

        return self._greedy_by_arrival(system, trace, score)
