"""Greedy seeding heuristics (paper Section V-B).

Four heuristics seed the NSGA-II initial populations:

* :class:`MinEnergy` — single-stage greedy, minimum-EEC machine per
  task in arrival order; provably minimum-energy (tested).
* :class:`MaxUtility` — single-stage greedy, maximum-utility machine
  per task in arrival order, accounting for machine queue completion
  times.
* :class:`MaxUtilityPerEnergy` — single-stage greedy on the ratio of
  utility earned to energy consumed.
* :class:`MinMinCompletionTime` — the classic two-stage Min-Min
  (Ibarra & Kim 1977; Braun et al. 2001).

:data:`SEEDING_HEURISTICS` is the registry used by the experiment
runner; :mod:`repro.heuristics.baselines` adds non-paper baseline
mappers used in tests and ablations.
"""

from repro.heuristics.base import SeedingHeuristic
from repro.heuristics.baselines import RandomMapper, RoundRobinMapper, SufferageCompletionTime
from repro.heuristics.classic import MCT, MET, OLB
from repro.heuristics.max_utility import MaxUtility
from repro.heuristics.min_energy import MinEnergy
from repro.heuristics.min_min import MinMinCompletionTime
from repro.heuristics.utility_per_energy import MaxUtilityPerEnergy

__all__ = [
    "SeedingHeuristic",
    "MinEnergy",
    "MaxUtility",
    "MaxUtilityPerEnergy",
    "MinMinCompletionTime",
    "RandomMapper",
    "RoundRobinMapper",
    "SufferageCompletionTime",
    "OLB",
    "MET",
    "MCT",
    "SEEDING_HEURISTICS",
]

#: Registry of the paper's four seeding heuristics, keyed by report name.
SEEDING_HEURISTICS = {
    "min-energy": MinEnergy,
    "max-utility": MaxUtility,
    "max-utility-per-energy": MaxUtilityPerEnergy,
    "min-min-completion-time": MinMinCompletionTime,
}
