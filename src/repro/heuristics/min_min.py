"""Min-Min Completion Time seeding heuristic (paper Section V-B4).

The classic two-stage greedy (Ibarra & Kim 1977; Braun et al. 2001;
Maheswaran et al. 1999): repeatedly (1) find, for every unmapped task,
the machine minimizing that task's completion time; (2) among those
(task, machine) pairs, map the pair with the overall minimum completion
time; update the machine's availability; repeat until all tasks are
mapped.

Completion accounts for arrivals: ``max(available_m, arrival_t) + ETC``.

Complexity note: the naive loop is O(T²·M).  Here the per-task best
machine is cached and only invalidated for tasks whose cached best is
the machine just updated — availabilities only grow, so other tasks'
minima cannot change (their other columns are untouched and the
updated column only worsened).  This makes the 4000-task data set
build in well under a second.

Scheduling-order keys follow the *mapping sequence*: the k-th task
mapped gets key k, reproducing Min-Min's queue order on each machine.
"""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import SeedingHeuristic
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.workload.trace import Trace

__all__ = ["MinMinCompletionTime"]


class MinMinCompletionTime(SeedingHeuristic):
    """Two-stage greedy minimum-completion-time mapping.

    After :meth:`build`, :attr:`last_stats` reports how much stage-1
    cache work the run actually did — the scaling regression test pins
    the invalidation cost to O(T·M + K·M) on the 4000-task data set,
    where K (total cache rows recomputed) is empirically under a tenth
    of the ~T²/2 rescans the naive loop performs.
    """

    name = "min-min-completion-time"

    #: Cache-work counters of the most recent :meth:`build`:
    #: ``tasks``/``machines``, ``recomputed_rows`` (stage-1 cache rows
    #: recomputed over the whole run), ``invalidation_rounds`` (mapping
    #: steps that invalidated at least one row).
    last_stats: dict[str, int]

    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Run Min-Min over the whole trace."""
        _, arrivals, etc, _ = self._prepare(system, trace)
        T = trace.num_tasks
        M = system.num_machines
        recomputed_rows = 0
        invalidation_rounds = 0

        available = np.zeros(M, dtype=np.float64)
        assignment = np.empty(T, dtype=np.int64)
        order = np.empty(T, dtype=np.int64)
        unmapped = np.ones(T, dtype=bool)

        # Stage-1 cache: best machine and completion per task.
        completion = np.maximum(available[None, :], arrivals[:, None]) + etc
        best_m = np.argmin(completion, axis=1)
        best_c = completion[np.arange(T), best_m]

        for k in range(T):
            # Stage 2: the overall minimum completion among unmapped tasks.
            masked = np.where(unmapped, best_c, np.inf)
            t = int(np.argmin(masked))
            m = int(best_m[t])
            assignment[t] = m
            order[t] = k
            unmapped[t] = False
            available[m] = best_c[t]

            # Invalidate only tasks whose cached best is the updated
            # machine: availabilities never decrease, so other caches
            # stay exact (see module docstring).
            stale = unmapped & (best_m == m)
            if np.any(stale):
                rows = np.flatnonzero(stale)
                recomputed_rows += rows.size
                invalidation_rounds += 1
                comp = np.maximum(available[None, :], arrivals[rows, None]) + etc[rows]
                best_m[rows] = np.argmin(comp, axis=1)
                best_c[rows] = comp[np.arange(rows.size), best_m[rows]]

        self.last_stats = {
            "tasks": T,
            "machines": M,
            "recomputed_rows": recomputed_rows,
            "invalidation_rounds": invalidation_rounds,
        }
        return ResourceAllocation(machine_assignment=assignment, scheduling_order=order)
