"""Shared machinery for greedy mapping heuristics.

Every heuristic consumes a (system, trace) pair and produces a
:class:`~repro.sim.schedule.ResourceAllocation` whose scheduling-order
keys reproduce the heuristic's intended per-machine queue order under
the simulator's semantics (queue by key, idle until arrival).

The single-stage heuristics share one structure: walk tasks in arrival
order, score every feasible machine with a heuristic-specific metric,
pick the best, update that machine's availability.  That walk is
implemented once in :meth:`SeedingHeuristic._greedy_by_arrival`;
subclasses supply the scoring rule.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray
from repro.workload.trace import Trace

__all__ = ["SeedingHeuristic"]


class SeedingHeuristic(abc.ABC):
    """Base class: deterministic greedy mapper for seeding populations."""

    #: Report name; subclasses override.
    name: str = "heuristic"

    @abc.abstractmethod
    def build(self, system: SystemModel, trace: Trace) -> ResourceAllocation:
        """Construct the heuristic's allocation for (system, trace)."""

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _prepare(system: SystemModel, trace: Trace):
        """Common precomputation: per-task matrices and TUF table."""
        trace.validate_against(system.num_task_types)
        task_types = trace.task_types
        etc = system.etc_task_machine[task_types]  # (T, M); inf = infeasible
        eec = system.eec_task_machine[task_types]
        return task_types, trace.arrival_times, etc, eec

    def _greedy_by_arrival(
        self,
        system: SystemModel,
        trace: Trace,
        score: Callable[[int, FloatArray, FloatArray], int],
    ) -> ResourceAllocation:
        """Single-stage greedy walk over tasks in arrival order.

        Parameters
        ----------
        score:
            ``score(task, completion_times, available) -> machine`` —
            given the task index, its would-be completion time on every
            machine (``inf`` where infeasible), and the current machine
            availability vector, returns the chosen machine index.

        Scheduling-order keys are the task indices themselves: tasks
        are queued per machine in arrival order, exactly the order the
        greedy walk assumed when updating availabilities.
        """
        task_types, arrivals, etc, _ = self._prepare(system, trace)
        T = trace.num_tasks
        M = system.num_machines
        available = np.zeros(M, dtype=np.float64)
        assignment = np.empty(T, dtype=np.int64)
        for t in range(T):  # greedy walk: inherently sequential
            start = np.maximum(available, arrivals[t])
            completion = start + etc[t]  # inf on infeasible machines
            m = score(t, completion, available)
            if not np.isfinite(etc[t, m]):
                raise ScheduleError(
                    f"{self.name}: scored an infeasible machine {m} for task {t}"
                )
            assignment[t] = m
            available[m] = completion[m]
        return ResourceAllocation(
            machine_assignment=assignment,
            scheduling_order=np.arange(T, dtype=np.int64),
        )
