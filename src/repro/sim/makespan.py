"""Makespan-energy bi-objective evaluation (the paper's predecessor).

The paper builds on Friese et al., *"Analyzing the trade-offs between
minimizing makespan and minimizing energy consumption in a
heterogeneous resource allocation problem"* (INFOCOMP 2012) — the same
NSGA-II machinery with **makespan** instead of utility as the
performance objective, and a bag-of-tasks model ("they do not consider
arrival times or the specific ordering of tasks").

:class:`MakespanEnergyEvaluator` implements that predecessor as a
baseline: it exposes the batch-evaluation interface the NSGA-II engine
consumes, returning ``(energy, -makespan)`` pairs so the engine's
fixed (minimize, maximize) senses minimize makespan without touching
the core.  ``bag_of_tasks=True`` reproduces the predecessor exactly
(all arrivals treated as 0); ``False`` keeps the trace's arrivals.

The A9 benchmark uses it to quantify the paper's motivation: a
makespan-optimal allocation is generally *not* utility-optimal,
because utility decays per task (early small victories matter) while
makespan only counts the last finisher.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.sim.evaluator import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_KERNEL_METHOD,
    _segmented_finish_times,
)
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray, IntArray
from repro.workload.trace import Trace

__all__ = ["MakespanEnergyEvaluator"]


class _ZeroUtility:
    """TUF stand-in for makespan mode: utility is identically zero.

    The batch kernel folds a utility value per queue element; makespan
    optimization has none, and an all-zero table keeps every fold (and
    every cached queue state) exact without touching the kernel.
    """

    @staticmethod
    def evaluate(task_types: IntArray, elapsed: FloatArray) -> FloatArray:
        return np.zeros(np.asarray(elapsed).shape)


class MakespanEnergyEvaluator:
    """Drop-in evaluator optimizing (min energy, min makespan).

    Exposes the same attributes/methods the NSGA-II engine uses
    (``system``, ``trace``, ``evaluate_batch``), plus scalar helpers.
    The second objective returned is ``-makespan`` so the engine's
    maximize-second-axis convention minimizes makespan; analysis code
    should negate it back for reporting (:meth:`to_report_points`).
    """

    def __init__(
        self,
        system: SystemModel,
        trace: Trace,
        bag_of_tasks: bool = True,
        check_feasibility: bool = False,
        kernel_method: str = DEFAULT_KERNEL_METHOD,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        trace.validate_against(system.num_task_types)
        if kernel_method not in ("fast", "batch"):
            raise ScheduleError(
                "MakespanEnergyEvaluator kernel_method must be 'fast' or "
                f"'batch'; got {kernel_method!r}"
            )
        self.system = system
        self.trace = trace
        self.bag_of_tasks = bag_of_tasks
        self.check_feasibility = check_feasibility
        self.kernel_method = kernel_method
        self.num_tasks = trace.num_tasks
        self.num_machines = system.num_machines
        self._task_types = trace.task_types
        self._arrivals = (
            np.zeros(trace.num_tasks)
            if bag_of_tasks
            else trace.arrival_times
        )
        self._etc_rows = system.etc_task_machine[self._task_types]
        self._eec_rows = system.eec_task_machine[self._task_types]
        self._feasible_rows = system.feasible_task_machine[self._task_types]
        self._row_index = np.arange(self.num_tasks)
        self._batch_kernel = None
        if kernel_method == "batch":
            from repro.sim.batchkernel import BatchQueueKernel

            # Duck-typed kernel bindings (it reads these attributes);
            # makespan uses per-row maxima of the cached final-finish
            # values, and energy comes from the same queue folds.
            self._etc_flat = np.ascontiguousarray(self._etc_rows).reshape(-1)
            self._eec_flat = np.ascontiguousarray(self._eec_rows).reshape(-1)
            self._tuf_table = _ZeroUtility()
            self._queue_groups = np.arange(self.num_machines, dtype=np.int64)
            self._num_queues = self.num_machines
            slots_log2 = (
                max(8, (2 * cache_size - 1).bit_length())
                if cache_size else 8
            )
            self._batch_kernel = BatchQueueKernel(
                self,
                use_cache=cache_size > 0,
                queue_slots_log2=min(28, slots_log2),
                prefix_slots_log2=min(28, slots_log2 + 1),
            )

    # -- engine interface ---------------------------------------------------

    def evaluate_batch(
        self, assignments: IntArray, orders: IntArray
    ) -> tuple[FloatArray, FloatArray]:
        """``(energy, -makespan)`` for each chromosome row."""
        assignments = np.asarray(assignments, dtype=np.int64)
        orders = np.asarray(orders, dtype=np.int64)
        if assignments.ndim != 2 or assignments.shape != orders.shape:
            raise ScheduleError(
                f"batch arrays must be equal-shape 2-D; got "
                f"{assignments.shape} and {orders.shape}"
            )
        N, T = assignments.shape
        if T != self.num_tasks:
            raise ScheduleError(
                f"batch covers {T} tasks; trace has {self.num_tasks}"
            )
        if N == 0:
            return (np.empty(0), np.empty(0))
        if self.check_feasibility:
            ok = self._feasible_rows[
                np.broadcast_to(self._row_index, (N, T)), assignments
            ]
            if not np.all(ok):
                raise ScheduleError("batch contains infeasible placements")
        if self._batch_kernel is not None:
            energies, _, finish = (
                self._batch_kernel.evaluate_population_with_finish(
                    assignments, orders
                )
            )
            return energies, -finish
        flat_assign = assignments.ravel()
        flat_rows = np.tile(self._row_index, N)
        exec_times = self._etc_rows[flat_rows, flat_assign]
        arrivals = np.tile(self._arrivals, N)
        chrom_offset = np.repeat(
            np.arange(N, dtype=np.int64) * self.num_machines, T
        )
        finish = _segmented_finish_times(
            flat_assign + chrom_offset, orders.ravel(), arrivals, exec_times
        ).reshape(N, T)
        energies = self._eec_rows[flat_rows, flat_assign].reshape(N, T)
        return energies.sum(axis=1), -finish.max(axis=1)

    # -- scalar helpers -------------------------------------------------------

    def makespan(self, allocation: ResourceAllocation) -> float:
        """Makespan of one allocation (positive seconds)."""
        _, neg = self.evaluate_batch(
            allocation.machine_assignment[None, :],
            allocation.scheduling_order[None, :],
        )
        return float(-neg[0])

    def objectives(self, allocation: ResourceAllocation) -> tuple[float, float]:
        """``(energy, makespan)`` of one allocation (report units)."""
        e, neg = self.evaluate_batch(
            allocation.machine_assignment[None, :],
            allocation.scheduling_order[None, :],
        )
        return float(e[0]), float(-neg[0])

    @staticmethod
    def to_report_points(front_points: FloatArray) -> FloatArray:
        """Convert engine-space ``(energy, -makespan)`` points to
        ``(energy, makespan)`` for reporting."""
        pts = np.asarray(front_points, dtype=np.float64).copy()
        pts[:, 1] = -pts[:, 1]
        return pts
