"""Auxiliary schedule metrics beyond the two paper objectives.

The bi-objective analysis optimizes (energy, utility) only, but makespan,
flow time, waiting time, and machine utilization are what related work
optimizes (Friese et al. 2012 minimized makespan) and what system
administrators inspect; they are also used by the Min-Min heuristic
tests and the extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.model.system import SystemModel
from repro.sim.evaluator import EvaluationResult
from repro.sim.schedule import ResourceAllocation
from repro.types import FloatArray
from repro.workload.trace import Trace

__all__ = ["ScheduleMetrics", "compute_metrics"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary statistics of one simulated schedule.

    Attributes
    ----------
    makespan:
        Latest completion time (seconds).
    total_flow_time:
        Sum over tasks of ``completion − arrival``.
    mean_waiting_time:
        Mean of ``start − arrival``.
    max_waiting_time:
        Maximum of ``start − arrival``.
    machine_busy_time:
        ``(num_machines,)`` seconds of execution per machine.
    machine_utilization:
        ``(num_machines,)`` busy time divided by makespan.
    machine_energy:
        ``(num_machines,)`` joules consumed per machine (Eq. 3's inner
        sum).
    utility_fraction:
        Utility earned as a fraction of the sum of task priorities
        (1.0 = every task completed instantly).
    """

    makespan: float
    total_flow_time: float
    mean_waiting_time: float
    max_waiting_time: float
    machine_busy_time: FloatArray
    machine_utilization: FloatArray
    machine_energy: FloatArray
    utility_fraction: float


def compute_metrics(
    system: SystemModel,
    trace: Trace,
    allocation: ResourceAllocation,
    result: EvaluationResult,
) -> ScheduleMetrics:
    """Derive :class:`ScheduleMetrics` from an evaluation result."""
    if result.start_times.shape[0] != trace.num_tasks:
        raise ScheduleError("result does not match the trace size")
    waiting = result.start_times - trace.arrival_times
    flow = result.completion_times - trace.arrival_times
    exec_times = result.completion_times - result.start_times

    busy = np.bincount(
        allocation.machine_assignment,
        weights=exec_times,
        minlength=system.num_machines,
    )
    energy_per_machine = np.bincount(
        allocation.machine_assignment,
        weights=result.task_energies,
        minlength=system.num_machines,
    )
    makespan = float(result.completion_times.max())
    utilization = busy / makespan if makespan > 0 else np.zeros_like(busy)

    # Upper bound on utility: every task completes the instant it arrives.
    max_utilities = np.array(
        [
            system.task_types[tt].utility_function.max_utility
            for tt in trace.task_types
        ]
    )
    bound = float(max_utilities.sum())
    return ScheduleMetrics(
        makespan=makespan,
        total_flow_time=float(flow.sum()),
        mean_waiting_time=float(waiting.mean()),
        max_waiting_time=float(waiting.max()),
        machine_busy_time=busy,
        machine_utilization=utilization,
        machine_energy=energy_per_machine,
        utility_fraction=result.utility / bound if bound > 0 else 0.0,
    )
