"""The :class:`ResourceAllocation` — a complete mapping of tasks to machines.

The paper (Section IV-D): each *gene* holds the machine a task executes
on, the task's arrival time, and its **global scheduling order** — an
integer key controlling execution order on the machines, *independent*
of arrival times (a machine sits idle if its next task has not yet
arrived).  A *chromosome* is the full vector of genes; this class is
that chromosome's phenotype, decoupled from the GA machinery so greedy
heuristics and the simulator share it.

The scheduling order is an integer *priority key*: lower runs earlier.
After the paper's crossover (which swaps order values between two
chromosomes) keys may repeat; ties are broken by task index (stable),
as documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ScheduleError
from repro.types import IntArray

__all__ = ["ResourceAllocation"]


@dataclass(frozen=True)
class ResourceAllocation:
    """Per-task machine assignment and global scheduling order.

    Attributes
    ----------
    machine_assignment:
        ``(T,)`` int array; ``machine_assignment[i]`` is the machine
        *instance* index executing task *i*.
    scheduling_order:
        ``(T,)`` int array of priority keys; lower keys execute earlier
        on their machine (ties broken by task index).
    """

    machine_assignment: IntArray
    scheduling_order: IntArray

    def __post_init__(self) -> None:
        assignment = np.asarray(self.machine_assignment, dtype=np.int64)
        order = np.asarray(self.scheduling_order, dtype=np.int64)
        if assignment.ndim != 1 or order.ndim != 1:
            raise ScheduleError("allocation columns must be 1-D")
        if assignment.shape != order.shape:
            raise ScheduleError(
                f"assignment length {assignment.shape[0]} does not match "
                f"order length {order.shape[0]}"
            )
        if assignment.size == 0:
            raise ScheduleError("allocation must cover at least one task")
        if np.any(assignment < 0):
            raise ScheduleError("machine indices must be >= 0")
        assignment = assignment.copy()
        order = order.copy()
        assignment.setflags(write=False)
        order.setflags(write=False)
        object.__setattr__(self, "machine_assignment", assignment)
        object.__setattr__(self, "scheduling_order", order)

    @property
    def num_tasks(self) -> int:
        """Number of tasks the allocation covers."""
        return int(self.machine_assignment.shape[0])

    def validate_against(self, num_machines: int, feasible_task_machine=None,
                         task_types: Optional[IntArray] = None) -> None:
        """Raise :class:`ScheduleError` on out-of-range or infeasible placement.

        Parameters
        ----------
        num_machines:
            Machine-instance count of the system.
        feasible_task_machine:
            Optional ``(num_task_types, num_machines)`` bool mask; when
            given together with *task_types*, placements are checked
            against it.
        task_types:
            ``(T,)`` task-type indices of the trace.
        """
        if int(self.machine_assignment.max()) >= num_machines:
            raise ScheduleError(
                f"allocation references machine {int(self.machine_assignment.max())} "
                f"but the system has only {num_machines} machines"
            )
        if feasible_task_machine is not None:
            if task_types is None:
                raise ScheduleError(
                    "task_types required to check placement feasibility"
                )
            ok = feasible_task_machine[task_types, self.machine_assignment]
            if not np.all(ok):
                bad = int(np.flatnonzero(~ok)[0])
                raise ScheduleError(
                    f"task {bad} (type {int(task_types[bad])}) is assigned to "
                    f"machine {int(self.machine_assignment[bad])}, which cannot "
                    "execute that task type"
                )

    def is_order_permutation(self) -> bool:
        """Whether the scheduling order is a permutation of ``0..T-1``."""
        return bool(
            np.array_equal(np.sort(self.scheduling_order), np.arange(self.num_tasks))
        )

    def normalized_order(self) -> "ResourceAllocation":
        """Copy with the order keys renormalized to a permutation.

        Stable: relative order (ties broken by task index) is preserved.
        """
        ranks = np.empty(self.num_tasks, dtype=np.int64)
        # argsort of (order, index) — np.argsort is stable for kind='stable'.
        perm = np.argsort(self.scheduling_order, kind="stable")
        ranks[perm] = np.arange(self.num_tasks)
        return ResourceAllocation(
            machine_assignment=self.machine_assignment,
            scheduling_order=ranks,
        )

    def machine_queue(self, machine: int) -> IntArray:
        """Task indices queued on *machine*, in execution order."""
        tasks = np.flatnonzero(self.machine_assignment == machine)
        if tasks.size == 0:
            return tasks
        keys = self.scheduling_order[tasks]
        return tasks[np.argsort(keys, kind="stable")]
