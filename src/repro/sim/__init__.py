"""Schedule simulation and evaluation (paper Sections IV-B and V).

Given a system, a trace, and a resource allocation (per-task machine
assignment + global scheduling order), this package computes the two
objective values of the paper — total utility earned ``U`` (Eq. 1) and
total energy consumed ``E`` (Eq. 3) — plus auxiliary schedule metrics.

Two implementations with identical semantics:

* :mod:`repro.sim.evaluator` — the fast path.  The per-machine queue
  recurrence ``f_i = max(f_{i-1}, a_i) + e_i`` is solved in closed form
  with segmented cumulative sums and a segmented running maximum, so
  evaluating a chromosome is pure vectorized NumPy (no Python loop
  over tasks), and whole populations evaluate in one shot.
* :mod:`repro.sim.events` — a plain sequential reference simulator
  used to validate the fast path (property-tested to bit-equality).
"""

from repro.sim.evaluator import EvaluationResult, ScheduleEvaluator
from repro.sim.events import simulate_reference
from repro.sim.gantt import machine_timeline, render_gantt
from repro.sim.metrics import ScheduleMetrics, compute_metrics
from repro.sim.schedule import ResourceAllocation

__all__ = [
    "ResourceAllocation",
    "ScheduleEvaluator",
    "EvaluationResult",
    "simulate_reference",
    "ScheduleMetrics",
    "compute_metrics",
    "render_gantt",
    "machine_timeline",
]
